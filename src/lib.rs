//! # fosm — A First-Order Superscalar Processor Model
//!
//! A production-quality Rust reproduction of **Karkhanis & Smith,
//! "A First-Order Superscalar Processor Model", ISCA 2004**.
//!
//! The library has three layers:
//!
//! 1. **Trace substrate** — a RISC-like ISA ([`isa`]), trace
//!    abstractions ([`trace`]), and synthetic SPECint2000-like workload
//!    generators ([`workloads`]).
//! 2. **Functional simulators** — set-associative caches ([`cache`]),
//!    branch predictors ([`branch`]), and the idealized
//!    instruction-window (IW) dependence analysis ([`depgraph`]). These
//!    are the *only* simulations the analytical model needs.
//! 3. **The model and its validation** — the first-order analytical
//!    model itself ([`model`], re-exported from `fosm-core`), a detailed
//!    cycle-level out-of-order simulator used as ground truth ([`sim`]),
//!    the differential validation harness that gates model-vs-simulator
//!    accuracy per CPI component ([`validate`]), and the paper's
//!    microarchitecture trend studies ([`trends`]).
//!
//! Beyond the paper's evaluation, every §7 extension is implemented
//! and validated: limited functional units ([`isa::FuPool`]),
//! instruction fetch buffers ([`sim::FetchBufferConfig`]), clustered
//! issue windows ([`sim::ClusterConfig`]), data-TLB misses
//! ([`cache::TlbConfig`]), program phases
//! ([`workloads::PhasedGenerator`]), measured misprediction bursts,
//! a measured-points IW characteristic, and a dependence-aware
//! refinement of the long-miss overlap model (ablatable back to the
//! paper-exact recipe via `FirstOrderModel::with_paper_simplifications`).
//! The §1.2 statistical-simulation baseline lives in [`statsim`], and
//! sampled profiling with functional warm-up in
//! [`profile::SamplingPlan`].
//!
//! # Quickstart
//!
//! Estimate the performance of the paper's baseline 4-wide machine on a
//! synthetic `gzip`-like workload, using only functional-level analysis:
//!
//! ```
//! use fosm::model::{FirstOrderModel, ProcessorParams};
//! use fosm::profile::ProfileCollector;
//! use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = BenchmarkSpec::gzip();
//! let mut trace = WorkloadGenerator::new(&spec, 42);
//! let params = ProcessorParams::baseline();
//! let profile = ProfileCollector::new(&params).collect(&mut trace, 200_000)?;
//!
//! let estimate = FirstOrderModel::new(params).evaluate(&profile)?;
//! assert!(estimate.total_cpi() > 0.0);
//! println!("steady-state IPC = {:.2}", 1.0 / estimate.steady_state_cpi);
//! println!("total CPI        = {:.2}", estimate.total_cpi());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use fosm_branch as branch;
pub use fosm_cache as cache;
pub use fosm_depgraph as depgraph;
pub use fosm_isa as isa;
pub use fosm_obs as obs;
pub use fosm_sim as sim;
pub use fosm_statsim as statsim;
pub use fosm_trace as trace;
pub use fosm_trends as trends;
pub use fosm_workloads as workloads;

/// The first-order analytical model (re-export of `fosm-core`'s model layer).
pub mod model {
    pub use fosm_core::model::*;
    pub use fosm_core::params::ProcessorParams;
}

/// Program-profile collection via functional-level trace analysis.
pub mod profile {
    pub use fosm_core::profile::*;
}

pub use fosm_core as core;
pub use fosm_explore as explore;
pub use fosm_validate as validate;
