//! Vendored, API-compatible subset of `serde`.
//!
//! The build environment has no crates-registry access, so the
//! workspace vendors the slice of serde it uses: the `Serialize` and
//! `Deserialize` traits, their derive macros, and the `#[serde(default)]`
//! field attribute. The data model is deliberately simple — a JSON-shaped
//! [`Value`] tree — because the only serde consumer in this workspace is
//! the vendored `serde_json`.
//!
//! Derived formats match real serde's external conventions closely
//! enough for archival use: structs become maps, newtype structs are
//! transparent, unit enum variants become strings, and data-carrying
//! variants become single-key maps.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped generic value tree (the shim's serde data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A number, kept as its literal text so integer/float precision
    /// survives round trips without committing to a representation.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in a map value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// A deserialization failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

impl DeError {
    /// Builds an error describing an unexpected value shape.
    pub fn expected(what: &str, got: &Value) -> Self {
        let shape = match got {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Num(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        };
        DeError(format!("expected {what}, found {shape}"))
    }
}

/// Serialization into the shim's [`Value`] data model.
pub trait Serialize {
    /// Converts `self` to a generic value tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the shim's [`Value`] data model.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a generic value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the value's shape or contents do not
    /// match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(self.to_string())
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(text) => text
                        .parse::<$t>()
                        .or_else(|_| {
                            // Accept float-typed literals holding exact
                            // integers (e.g. "3.0").
                            text.parse::<f64>()
                                .map_err(|e| DeError(format!("bad number {text:?}: {e}")))
                                .and_then(|f| {
                                    let i = f as $t;
                                    if i as f64 == f {
                                        Ok(i)
                                    } else {
                                        Err(DeError(format!(
                                            "number {text:?} is not a valid {}",
                                            stringify!($t)
                                        )))
                                    }
                                })
                        }),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if self.is_finite() {
                    Value::Num(self.to_string())
                } else {
                    // Real serde_json maps non-finite floats to null.
                    Value::Null
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Num(text) => text
                        .parse::<$t>()
                        .map_err(|e| DeError(format!("bad number {text:?}: {e}"))),
                    Value::Null => Ok(<$t>::NAN),
                    other => Err(DeError::expected(stringify!($t), other)),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::expected("bool", other)),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(DeError::expected("single-character string", other)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::expected("array", other)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Seq(items) if items.len() == N => {
                let parsed: Result<Vec<T>, DeError> = items.iter().map(T::from_value).collect();
                parsed?
                    .try_into()
                    .map_err(|_| DeError(format!("expected array of length {N}")))
            }
            Value::Seq(items) => Err(DeError(format!(
                "expected array of length {N}, found length {}",
                items.len()
            ))),
            other => Err(DeError::expected("array", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Seq(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(DeError::expected("tuple array", other)),
                }
            }
        }
    )*};
}
impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        let s = "hi".to_string();
        assert_eq!(String::from_value(&s.to_value()).unwrap(), s);
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(Vec::<u32>::from_value(&v.to_value()).unwrap(), v);
        let a: [u64; 3] = [4, 5, 6];
        assert_eq!(<[u64; 3]>::from_value(&a.to_value()).unwrap(), a);
        let o: Option<u8> = None;
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
        let o = Some(9u8);
        assert_eq!(Option::<u8>::from_value(&o.to_value()).unwrap(), o);
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.1, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0, 123456.789] {
            let v = x.to_value();
            let back = f64::from_value(&v).unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn shape_mismatches_error() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::Num("1".into())).is_err());
        assert!(<[u64; 2]>::from_value(&vec![1u64].to_value()).is_err());
    }
}
