//! Vendored, API-compatible subset of `criterion`.
//!
//! Implements the benchmarking surface this workspace uses —
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `Throughput`, `BenchmarkId`, `criterion_group!`/`criterion_main!` —
//! with simple wall-clock measurement (median of N samples, each an
//! adaptively sized batch of iterations).
//!
//! Behavior matches criterion's cargo integration: a full measurement
//! pass runs only under `cargo bench` (cargo passes `--bench`);
//! any other invocation (e.g. `cargo test` compiling/running bench
//! targets) runs each benchmark once as a smoke test.
//!
//! Each finished group appends its results to `BENCH_<group>.json` in
//! the directory named by `FOSM_BENCH_OUT_DIR` (default: the current
//! working directory), giving the repo a machine-readable perf
//! trajectory across PRs.
//!
//! Passing `--check <baseline.json>` after `--` turns the run into a
//! regression gate: results are measured as usual but compared against
//! the named baseline instead of overwriting it, and the process exits
//! non-zero if any benchmark is more than [`REGRESSION_LIMIT_PCT`]
//! slower than its baseline entry.

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier with a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{parameter}", name.into()),
        }
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// The measurement engine handed to benchmark closures.
pub struct Bencher<'a> {
    mode: Mode,
    sample_size: usize,
    /// Measured median nanoseconds per iteration, filled by `iter`.
    result_ns: &'a mut f64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Full measurement (`cargo bench`).
    Measure,
    /// One iteration, no timing (`cargo test` smoke pass).
    Smoke,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly and records its median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.mode == Mode::Smoke {
            black_box(f());
            *self.result_ns = 0.0;
            return;
        }
        // Warm up and size the batch so one sample spans >= ~5ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 20 {
                break;
            }
            let scale = (Duration::from_millis(8).as_nanos() as u64)
                .checked_div(elapsed.as_nanos().max(1) as u64)
                .unwrap_or(8)
                .clamp(2, 1000);
            batch = batch.saturating_mul(scale);
        }
        let mut samples: Vec<f64> = (0..self.sample_size.max(3))
            .map(|_| {
                let start = Instant::now();
                for _ in 0..batch {
                    black_box(f());
                }
                start.elapsed().as_nanos() as f64 / batch as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        *self.result_ns = samples[samples.len() / 2];
    }
}

/// One finished measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    ns_per_iter: f64,
    throughput: Option<Throughput>,
}

/// A named group of benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    records: Vec<Record>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used to derive rate figures.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Overrides the measurement time (accepted for API parity; the
    /// shim sizes batches adaptively instead).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into().id;
        let mut ns = f64::NAN;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.criterion.sample_size,
            result_ns: &mut ns,
        };
        f(&mut bencher);
        self.finish_one(id, ns);
        self
    }

    /// Benchmarks `f` with an explicit input under `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into().id;
        let mut ns = f64::NAN;
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.criterion.sample_size,
            result_ns: &mut ns,
        };
        f(&mut bencher, input);
        self.finish_one(id, ns);
        self
    }

    fn finish_one(&mut self, id: String, ns: f64) {
        let full = format!("{}/{}", self.name, id);
        if self.criterion.mode == Mode::Measure {
            let rate = match self.throughput {
                Some(Throughput::Elements(n)) => {
                    format!("  thrpt: {:>12} elem/s", format_rate(n, ns))
                }
                Some(Throughput::Bytes(n)) => {
                    format!("  thrpt: {:>12} B/s", format_rate(n, ns))
                }
                None => String::new(),
            };
            println!("{full:<48} time: {:>12}/iter{rate}", format_ns(ns));
        } else {
            println!("{full}: ok (smoke)");
        }
        self.records.push(Record {
            id,
            ns_per_iter: ns,
            throughput: self.throughput,
        });
    }

    /// Finishes the group: in check mode, compares against the chosen
    /// baseline; otherwise flushes a fresh JSON baseline.
    pub fn finish(self) {
        if self.criterion.mode != Mode::Measure {
            return;
        }
        if let Some(baseline) = self.criterion.check_against.clone() {
            let body = match std::fs::read_to_string(&baseline) {
                Ok(body) => body,
                Err(e) => {
                    eprintln!("check: cannot read {}: {e}", baseline.display());
                    CHECK_FAILED.store(true, Ordering::Relaxed);
                    return;
                }
            };
            let mut ok = true;
            for line in check_report(&self.records, &body) {
                if line.starts_with("REGRESSION") {
                    ok = false;
                }
                println!("{}: {line}", self.name);
            }
            if ok {
                println!(
                    "{}: check passed (within {REGRESSION_LIMIT_PCT:.0}% of {})",
                    self.name,
                    baseline.display()
                );
            } else {
                CHECK_FAILED.store(true, Ordering::Relaxed);
            }
            return;
        }
        let dir = std::env::var("FOSM_BENCH_OUT_DIR").unwrap_or_else(|_| ".".to_string());
        let path = std::path::Path::new(&dir).join(format!("BENCH_{}.json", self.name));
        let mut body = String::from("{\n");
        body.push_str(&format!("  \"group\": \"{}\",\n", self.name));
        body.push_str("  \"benchmarks\": {\n");
        for (i, r) in self.records.iter().enumerate() {
            let sep = if i + 1 == self.records.len() { "" } else { "," };
            let thrpt = match r.throughput {
                Some(Throughput::Elements(n)) | Some(Throughput::Bytes(n)) => {
                    format!(", \"per_iter\": {n}")
                }
                None => String::new(),
            };
            body.push_str(&format!(
                "    \"{}\": {{\"ns_per_iter\": {:.1}{thrpt}}}{sep}\n",
                r.id, r.ns_per_iter
            ));
        }
        body.push_str("  }\n}\n");
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("(baseline written to {})", path.display());
        }
    }
}

/// Allowed slowdown versus the baseline before `--check` fails.
pub const REGRESSION_LIMIT_PCT: f64 = 25.0;

/// Set when any group's `--check` comparison finds a regression.
static CHECK_FAILED: AtomicBool = AtomicBool::new(false);

/// Whether any `--check` comparison failed so far (used by
/// `criterion_main!` to derive the process exit code).
pub fn check_failed() -> bool {
    CHECK_FAILED.load(Ordering::Relaxed)
}

/// Compares measured records against a baseline file body (the format
/// written by [`BenchmarkGroup::finish`]) and renders one verdict line
/// per benchmark. Entries absent on either side are reported but are
/// not regressions — a benchmark suite is allowed to grow.
fn check_report(records: &[Record], baseline_body: &str) -> Vec<String> {
    let baseline = parse_baseline(baseline_body);
    let mut lines = Vec::new();
    for r in records {
        match baseline.iter().find(|(id, _)| id == &r.id) {
            None => lines.push(format!("{}: new benchmark, no baseline entry", r.id)),
            Some((_, base_ns)) => {
                let delta_pct = 100.0 * (r.ns_per_iter - base_ns) / base_ns;
                if delta_pct > REGRESSION_LIMIT_PCT {
                    lines.push(format!(
                        "REGRESSION {}: {} vs baseline {} ({delta_pct:+.1}%, limit +{REGRESSION_LIMIT_PCT:.0}%)",
                        r.id,
                        format_ns(r.ns_per_iter),
                        format_ns(*base_ns)
                    ));
                } else {
                    lines.push(format!(
                        "{}: {} vs baseline {} ({delta_pct:+.1}%)",
                        r.id,
                        format_ns(r.ns_per_iter),
                        format_ns(*base_ns)
                    ));
                }
            }
        }
    }
    for (id, _) in &baseline {
        if !records.iter().any(|r| &r.id == id) {
            lines.push(format!("{id}: in baseline but not measured this run"));
        }
    }
    lines
}

/// Extracts `(id, ns_per_iter)` pairs from a baseline file. The format
/// is the shim's own output — one benchmark per line, e.g.
/// `    "record/gzip": {"ns_per_iter": 1234.5, "per_iter": 50000},` —
/// so a line-oriented scan is exact.
fn parse_baseline(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(rest) = line.trim_start().strip_prefix('"') else {
            continue;
        };
        let Some((id, rest)) = rest.split_once('"') else {
            continue;
        };
        if id == "group" {
            continue;
        }
        let Some(rest) = rest.split_once("\"ns_per_iter\":").map(|(_, v)| v) else {
            continue;
        };
        let number: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(ns) = number.parse() {
            out.push((id.to_string(), ns));
        }
    }
    out
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn format_rate(per_iter: u64, ns: f64) -> String {
    let rate = per_iter as f64 / (ns / 1e9);
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1}")
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    mode: Mode,
    sample_size: usize,
    /// Baseline to compare against (`--check <path>`) instead of
    /// writing a new one.
    check_against: Option<std::path::PathBuf>,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes `--bench` to the target binary; anything
        // else (notably `cargo test`, which also builds and runs
        // harness=false bench targets) gets a fast smoke pass.
        let mut measure = false;
        let mut check_against = None;
        let mut args = std::env::args();
        while let Some(arg) = args.next() {
            if arg == "--bench" {
                measure = true;
            } else if let Some(path) = arg.strip_prefix("--check=") {
                check_against = Some(path.into());
            } else if arg == "--check" {
                check_against = args.next().map(Into::into);
            }
        }
        // A check run must measure, whatever the harness passed.
        if check_against.is_some() {
            measure = true;
        }
        Criterion {
            mode: if measure { Mode::Measure } else { Mode::Smoke },
            sample_size: 10,
            check_against,
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Accepts a measurement-time hint (API parity; ignored).
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Accepts CLI configuration (API parity; mode is derived from
    /// `--bench` in [`Criterion::default`]).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
            records: Vec::new(),
        }
    }

    /// Benchmarks a standalone function (no group).
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("standalone");
        group.bench_function(id, f);
        // Standalone results are printed but not written as a baseline.
        self
    }

    /// Runs registered target functions (called by `criterion_main!`).
    pub fn final_summary(&self) {}
}

/// Declares a benchmark group in the style of criterion.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            if $crate::check_failed() {
                std::process::exit(1);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smoke_criterion() -> Criterion {
        Criterion {
            mode: Mode::Smoke,
            sample_size: 3,
            check_against: None,
        }
    }

    #[test]
    fn smoke_mode_runs_each_bench_once() {
        let mut c = smoke_criterion();
        let mut calls = 0u32;
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 1);
    }

    #[test]
    fn measure_mode_times_iterations() {
        let mut c = Criterion {
            mode: Mode::Measure,
            sample_size: 3,
            check_against: None,
        };
        std::env::set_var("FOSM_BENCH_OUT_DIR", std::env::temp_dir());
        let mut acc = 0u64;
        {
            let mut group = c.benchmark_group("shimtest");
            group.bench_function("busy", |b| {
                b.iter(|| {
                    for i in 0..100u64 {
                        acc = acc.wrapping_add(black_box(i));
                    }
                })
            });
            group.finish();
        }
        let path = std::env::temp_dir().join("BENCH_shimtest.json");
        let body = std::fs::read_to_string(&path).expect("baseline written");
        assert!(body.contains("\"busy\""));
        let _ = std::fs::remove_file(path);
        assert!(acc > 0);
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("baseline", "gzip").id, "baseline/gzip");
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
    }

    const BASELINE: &str = r#"{
  "group": "functional",
  "benchmarks": {
    "record/gzip": {"ns_per_iter": 1000.0, "per_iter": 50000},
    "simulate/gzip": {"ns_per_iter": 2000.0}
  }
}
"#;

    #[test]
    fn baseline_parsing_extracts_all_entries() {
        let parsed = parse_baseline(BASELINE);
        assert_eq!(
            parsed,
            vec![
                ("record/gzip".to_string(), 1000.0),
                ("simulate/gzip".to_string(), 2000.0),
            ]
        );
    }

    fn record(id: &str, ns: f64) -> Record {
        Record {
            id: id.to_string(),
            ns_per_iter: ns,
            throughput: None,
        }
    }

    #[test]
    fn check_flags_only_regressions_beyond_limit() {
        let records = [
            record("record/gzip", 1200.0),   // +20%: within the limit
            record("simulate/gzip", 2600.0), // +30%: regression
            record("profile/gzip", 99.0),    // not in the baseline
        ];
        let report = check_report(&records, BASELINE);
        assert_eq!(report.len(), 3);
        assert!(!report[0].starts_with("REGRESSION"), "{}", report[0]);
        assert!(report[1].starts_with("REGRESSION"), "{}", report[1]);
        assert!(report[2].contains("no baseline entry"), "{}", report[2]);
    }

    #[test]
    fn check_reports_baseline_entries_that_were_not_measured() {
        let report = check_report(&[record("record/gzip", 900.0)], BASELINE);
        assert!(report.iter().all(|l| !l.starts_with("REGRESSION")));
        assert!(report
            .iter()
            .any(|l| l.contains("simulate/gzip") && l.contains("not measured")));
    }
}
