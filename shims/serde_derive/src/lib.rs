//! Derive macros for the vendored `serde` shim.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the subset of shapes this workspace uses, without `syn`/`quote`
//! (neither is available offline): non-generic structs with named
//! fields, tuple structs, unit structs, and enums whose variants are
//! unit, struct-like, or tuple-like. The only recognized field
//! attribute is `#[serde(default)]`.
//!
//! Generated formats follow real serde's externally-tagged JSON
//! conventions: named structs → maps, newtype structs → transparent,
//! unit variants → strings, data variants → single-key maps.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

struct Field {
    name: String,
    default: bool,
}

enum Fields {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (shim data model) for a type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

/// Derives `serde::Deserialize` (shim data model) for a type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Item) -> String) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen(&item).parse().expect("generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});")
            .parse()
            .expect("error parses"),
    }
}

// ---------------------------------------------------------------- parsing

fn is_ident(t: &TokenTree, s: &str) -> bool {
    matches!(t, TokenTree::Ident(id) if id.to_string() == s)
}

fn is_punct(t: &TokenTree, c: char) -> bool {
    matches!(t, TokenTree::Punct(p) if p.as_char() == c)
}

/// Returns true for an attribute group carrying `serde(... default ...)`.
fn attr_is_serde_default(attr: &Group) -> bool {
    let toks: Vec<TokenTree> = attr.stream().into_iter().collect();
    if toks.first().is_none_or(|t| !is_ident(t, "serde")) {
        return false;
    }
    toks.iter().any(|t| match t {
        TokenTree::Group(inner) => inner.stream().into_iter().any(|t| is_ident(&t, "default")),
        _ => false,
    })
}

/// Skips attributes at `i`, reporting whether `#[serde(default)]` was seen.
fn skip_attrs(toks: &[TokenTree], i: &mut usize) -> bool {
    let mut default = false;
    while *i + 1 < toks.len() && is_punct(&toks[*i], '#') {
        if let TokenTree::Group(g) = &toks[*i + 1] {
            if g.delimiter() == Delimiter::Bracket && attr_is_serde_default(g) {
                default = true;
            }
        }
        *i += 2;
    }
    default
}

/// Skips `pub`, `pub(...)` at `i`.
fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if *i < toks.len() && is_ident(&toks[*i], "pub") {
        *i += 1;
        if let Some(TokenTree::Group(g)) = toks.get(*i) {
            if g.delimiter() == Delimiter::Parenthesis {
                *i += 1;
            }
        }
    }
}

/// Skips one type (or expression) ending at a top-level comma.
fn skip_to_top_level_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0i32;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth <= 0 => return,
            _ => {}
        }
        *i += 1;
    }
}

fn parse_named_fields(g: &Group) -> Result<Vec<Field>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        let default = skip_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        if toks.get(i).is_none_or(|t| !is_punct(t, ':')) {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_to_top_level_comma(&toks, &mut i);
        i += 1; // past the comma (or one past the end)
        out.push(Field { name, default });
    }
    Ok(out)
}

fn count_tuple_fields(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut n = 0;
    while i < toks.len() {
        skip_to_top_level_comma(&toks, &mut i);
        n += 1;
        i += 1;
    }
    n
}

fn parse_variants(g: &Group) -> Result<Vec<Variant>, String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(g)?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(g))
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant, then the trailing comma.
        skip_to_top_level_comma(&toks, &mut i);
        i += 1;
        out.push(Variant { name, fields });
    }
    Ok(out)
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let is_enum = match toks.get(i) {
        Some(t) if is_ident(t, "struct") => false,
        Some(t) if is_ident(t, "enum") => true,
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if toks.get(i).is_some_and(|t| is_punct(t, '<')) {
        return Err(format!(
            "serde shim derive does not support generic type `{name}`"
        ));
    }
    if is_enum {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(g)?,
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        }
    } else {
        match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g)?),
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::Struct {
                    name,
                    fields: Fields::Tuple(count_tuple_fields(g)),
                })
            }
            Some(t) if is_punct(t, ';') => Ok(Item::Struct {
                name,
                fields: Fields::Unit,
            }),
            other => Err(format!("expected struct body, found {other:?}")),
        }
    }
}

// ------------------------------------------------------------- generation

/// `Value::Map(vec![(name, to_value(&EXPR)), ...])` for named fields.
fn named_to_map(fields: &[Field], access_prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({:?}.to_string(), ::serde::Serialize::to_value(&{}{}))",
                f.name, access_prefix, f.name
            )
        })
        .collect();
    format!("::serde::Value::Map(vec![{}])", entries.join(", "))
}

/// Field initializers `name: <lookup from map `src`>` for named fields.
fn named_from_map(fields: &[Field], src: &str, ty_name: &str) -> String {
    fields
        .iter()
        .map(|f| {
            let missing = if f.default {
                "::std::default::Default::default()".to_string()
            } else {
                format!(
                    "return ::std::result::Result::Err(::serde::DeError(format!(\
                     \"missing field `{}` in {}\")))",
                    f.name, ty_name
                )
            };
            format!(
                "{name}: match {src}.get({name:?}) {{ \
                 ::std::option::Option::Some(__v) => ::serde::Deserialize::from_value(__v)?, \
                 ::std::option::Option::None => {missing} }}",
                name = f.name,
                src = src,
                missing = missing
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Named(fs) => named_to_map(fs, "self."),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Unit => "::serde::Value::Null".to_string(),
            };
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match &v.fields {
                    Fields::Unit => format!(
                        "{name}::{v} => ::serde::Value::Str({v:?}.to_string())",
                        name = name,
                        v = v.name
                    ),
                    Fields::Named(fs) => {
                        let binds: Vec<String> = fs.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = fs
                            .iter()
                            .map(|f| {
                                format!(
                                    "({:?}.to_string(), ::serde::Serialize::to_value({}))",
                                    f.name, f.name
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Map(vec![\
                             ({v:?}.to_string(), ::serde::Value::Map(vec![{entries}]))])",
                            name = name,
                            v = v.name,
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        )
                    }
                    Fields::Tuple(1) => format!(
                        "{name}::{v}(__f0) => ::serde::Value::Map(vec![({v:?}.to_string(), \
                         ::serde::Serialize::to_value(__f0))])",
                        name = name,
                        v = v.name
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({binds}) => ::serde::Value::Map(vec![\
                             ({v:?}.to_string(), ::serde::Value::Seq(vec![{items}]))])",
                            name = name,
                            v = v.name,
                            binds = binds.join(", "),
                            items = items.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{ \
                 fn to_value(&self) -> ::serde::Value {{ match self {{ {arms} }} }} }}",
                arms = arms.join(", ")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Named(fs) => format!(
                "match __value {{ \
                 ::serde::Value::Map(_) => ::std::result::Result::Ok({name} {{ {inits} }}), \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"struct {name}\", __other)) }}",
                inits = named_from_map(fs, "__value", name)
            ),
            Fields::Tuple(1) => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__value)?))"
            ),
            Fields::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "match __value {{ \
                     ::serde::Value::Seq(__items) if __items.len() == {n} => \
                     ::std::result::Result::Ok({name}({inits})), \
                     __other => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"tuple struct {name}\", __other)) }}",
                    inits = inits.join(", ")
                )
            }
            Fields::Unit => format!("::std::result::Result::Ok({name})"),
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.fields, Fields::Unit))
                .map(|v| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v})",
                        name = name,
                        v = v.name
                    )
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| match &v.fields {
                    Fields::Unit => None,
                    Fields::Named(fs) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v} {{ {inits} }})",
                        name = name,
                        v = v.name,
                        inits = named_from_map(fs, "__inner", &format!("{}::{}", name, v.name))
                    )),
                    Fields::Tuple(1) => Some(format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(__inner)?))",
                        name = name,
                        v = v.name
                    )),
                    Fields::Tuple(n) => {
                        let inits: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                            .collect();
                        Some(format!(
                            "{v:?} => match __inner {{ \
                             ::serde::Value::Seq(__items) if __items.len() == {n} => \
                             ::std::result::Result::Ok({name}::{v}({inits})), \
                             __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"tuple variant {name}::{v}\", __other)) }}",
                            name = name,
                            v = v.name,
                            inits = inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __value {{ \
                 ::serde::Value::Str(__s) => match __s.as_str() {{ \
                 {unit_arms}{unit_sep} \
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))) }}, \
                 ::serde::Value::Map(__entries) if __entries.len() == 1 => {{ \
                 let (__tag, __inner) = &__entries[0]; \
                 match __tag.as_str() {{ \
                 {data_arms}{data_sep} \
                 __other => ::std::result::Result::Err(::serde::DeError(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))) }} }}, \
                 __other => ::std::result::Result::Err(\
                 ::serde::DeError::expected(\"enum {name}\", __other)) }}",
                unit_arms = unit_arms.join(", "),
                unit_sep = if unit_arms.is_empty() { "" } else { ", " },
                data_arms = data_arms.join(", "),
                data_sep = if data_arms.is_empty() { "" } else { ", " },
                name = name
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{ \
         fn from_value(__value: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{ {body} }} }}"
    )
}
