//! Vendored, API-compatible subset of `serde_json`.
//!
//! Serializes the shim serde data model ([`serde::Value`]) to JSON text
//! and parses JSON text back. Numbers are carried as their literal
//! text, so `u64` and `f64` round-trip exactly (floats print via Rust's
//! shortest round-trip formatting — the behavior `serde_json`'s
//! `float_roundtrip` feature guarantees).

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// A serialization or deserialization failure.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model; the `Result` mirrors the real
/// `serde_json` signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to a pretty-printed JSON string.
///
/// # Errors
///
/// Infallible for the shim's data model (signature parity).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn to_writer_pretty<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string_pretty(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Serializes `value` as compact JSON into `writer`.
///
/// # Errors
///
/// Propagates I/O errors from `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<(), Error> {
    let text = to_string(value)?;
    writer.write_all(text.as_bytes())?;
    Ok(())
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

/// Parses a value from a reader.
///
/// # Errors
///
/// Propagates I/O errors, then behaves as [`from_str`].
pub fn from_reader<R: std::io::Read, T: Deserialize>(mut reader: R) -> Result<T, Error> {
    let mut text = String::new();
    reader.read_to_string(&mut text)?;
    from_str(&text)
}

// --------------------------------------------------------------- writing

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(text) => out.push_str(text),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_block(out, indent, depth, '[', ']', items.len(), |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Map(entries) => {
            write_block(out, indent, depth, '{', '}', entries.len(), |out, i| {
                let (k, val) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            })
        }
    }
}

fn write_block(
    out: &mut String,
    indent: Option<&str>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(pad) = indent {
            out.push('\n');
            for _ in 0..=depth {
                out.push_str(pad);
            }
        }
        item(out, i);
    }
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn fail(&self, what: &str) -> Error {
        Error(format!("{what} at offset {}", self.pos))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.fail(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.bytes.get(self.pos) {
            None => Err(self.fail("unexpected end of input")),
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(self.fail("expected `,` or `]`")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.bytes.get(self.pos) == Some(&b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let value = self.parse_value()?;
                    entries.push((key, value));
                    self.skip_ws();
                    match self.bytes.get(self.pos) {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(self.fail("expected `,` or `}`")),
                    }
                }
            }
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.parse_number(),
            Some(_) => Err(self.fail("unexpected character")),
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("numeric bytes are ASCII")
            .to_string();
        // Validate now so shape errors surface as parse errors.
        if text.parse::<f64>().is_err() {
            return Err(Error(format!("invalid number `{text}` at offset {start}")));
        }
        Ok(Value::Num(text))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.fail("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.fail("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.fail("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.fail("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(self.fail("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte sequences are
                    // copied verbatim).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.fail("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert!(!from_str::<bool>("false").unwrap());
        assert_eq!(to_string(&"a\"b").unwrap(), "\"a\\\"b\"");
        assert_eq!(from_str::<String>("\"a\\\"b\"").unwrap(), "a\"b");
        let x = 0.30000000000000004f64;
        let back: f64 = from_str(&to_string(&x).unwrap()).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![1u32, 2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&json).unwrap(), v);
        let opt: Vec<Option<u8>> = vec![Some(1), None];
        let json = to_string(&opt).unwrap();
        assert_eq!(json, "[1,null]");
        assert_eq!(from_str::<Vec<Option<u8>>>(&json).unwrap(), opt);
    }

    #[test]
    fn pretty_output_is_indented_and_parseable() {
        let v = vec![vec![1u8], vec![2, 3]];
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<u64>("").is_err());
        assert!(from_str::<u64>("12 34").is_err());
        assert!(from_str::<Vec<u32>>("[1,").is_err());
        assert!(from_str::<bool>("frue").is_err());
        assert!(from_str::<String>("\"abc").is_err());
    }

    #[test]
    fn writer_interfaces() {
        let mut buf = Vec::new();
        to_writer_pretty(&mut buf, &vec![1u8, 2]).unwrap();
        let parsed: Vec<u8> = from_reader(&buf[..]).unwrap();
        assert_eq!(parsed, vec![1, 2]);
    }
}
