//! Vendored, API-compatible subset of the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the small slice of `rand` 0.8 it actually uses:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`], [`Rng::gen_range`],
//! [`Rng::gen_bool`], and [`rngs::SmallRng`]/[`rngs::StdRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! well distributed, and fully deterministic for a given seed. Streams
//! differ from upstream `rand`, which is fine: every consumer in this
//! workspace treats the stream as an arbitrary deterministic function
//! of the seed.

#![forbid(unsafe_code)]

/// A source of random 64-bit words.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Produces 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset: `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanded via SplitMix64.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from their full domain (the
/// `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u16 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with a uniform sampler over a half-open or inclusive range.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`; caller guarantees `lo < hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// Uniform sample from `[lo, hi]`; caller guarantees `lo <= hi`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Lemire's multiply-shift: unbiased enough for modeling
                // workloads, and branch-free.
                let hi_bits = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hi_bits) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if hi as i128 - lo as i128 == u64::MAX as i128 {
                    return rng.next_u64() as $t;
                }
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let hi_bits = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + hi_bits) as $t
            }
        }
    )*};
}
impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let u = <f64 as Standard>::sample(rng) as $t;
                lo + u * (hi - lo)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_range(rng, lo, hi)
            }
        }
    )*};
}
impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples a value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range called with empty range");
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range called with empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling interface (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        <f64 as Standard>::sample(self) < p
    }
}

impl<T: RngCore> Rng for T {}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ core shared by [`rngs::SmallRng`] and [`rngs::StdRng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = splitmix64(&mut sm);
        }
        // An all-zero state would be a fixed point; SplitMix64 cannot
        // produce four zero words from any seed, but belt and braces:
        if s == [0; 4] {
            s[0] = 0x1;
        }
        Xoshiro256 { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The concrete generators (`rand::rngs` subset).
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// Small, fast generator (xoshiro256++ here).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng(Xoshiro256);

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// The "standard" generator; identical core in this shim.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng(Xoshiro256);

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(Xoshiro256::from_u64(seed))
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn unit_interval_and_ranges() {
        let mut r = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
            let x = r.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = r.gen_range(2u32..=6);
            assert!((2..=6).contains(&y));
            let z = r.gen_range(0.004f64..0.04);
            assert!((0.004..0.04).contains(&z));
            let w = r.gen_range(0usize..3);
            assert!(w < 3);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut r = SmallRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "hits {hits}");
    }

    #[test]
    fn mean_of_unit_samples_is_centered() {
        let mut r = SmallRng::seed_from_u64(5);
        let total: f64 = (0..100_000).map(|_| r.gen::<f64>()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
