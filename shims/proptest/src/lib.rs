//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no crates-registry access, so this shim
//! reimplements the slice of proptest the workspace's property tests
//! use: the [`proptest!`] macro, `prop_assert*` macros, range/tuple
//! strategies, `prop::collection::vec`, `prop::option::of`,
//! `prop::sample::select`, [`prop_oneof!`], `any::<T>()`, `Just`,
//! `.prop_map(..)`, and [`ProptestConfig::with_cases`].
//!
//! Semantics: each test runs `cases` deterministic pseudo-random cases
//! (seeded from the test's module path and name, so runs are stable
//! across processes). There is **no shrinking** — on failure the full
//! case's assertion message is reported with the case index, which is
//! reproducible because the stream is deterministic.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Deterministic test RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Builds the RNG for one test case, keyed by test identity.
    pub fn for_case(test_id: &str, case: u64) -> Self {
        // FNV-1a over the test id, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1_0000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, bound)`; `bound > 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A failed property-test case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (subset: case count).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Discards generated values failing `f`, re-sampling (bounded).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 consecutive samples");
    }
}

/// A strategy producing a constant.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Samples a value from the type's canonical distribution.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Uniform in `[0, 1)` (finite by construction; the real crate's
    /// bit-pattern distribution is not reproduced).
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

/// Strategy wrapper returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<u64>()`, `any::<bool>()`, …).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}
impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10)
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9, K: 10, L: 11)
}

/// Strategy namespaces (`prop::collection`, `prop::option`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::{Range, RangeInclusive};

        /// A size specification for [`vec`].
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi_inclusive: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange {
                    lo: n,
                    hi_inclusive: n,
                }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi_inclusive: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi_inclusive: *r.end(),
                }
            }
        }

        /// A strategy for `Vec<T>` with element strategy `S`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
                let len = self.size.lo + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Generates vectors of `element` with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// A strategy for `Option<T>`.
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                // Match real proptest's default: Some three times in four.
                if rng.next_u64() & 3 == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        /// Generates `None` or `Some(inner)`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }

    /// Sampling from explicit collections.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// A strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Chooses uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select requires at least one option");
            Select(options)
        }
    }
}

/// A union of boxed strategies (what [`prop_oneof!`] builds).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.0.len() as u64) as usize;
        self.0[idx].sample(rng)
    }
}

/// Everything a property test file needs (`use proptest::prelude::*`).
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Chooses among several strategies with equal probability.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Skips the current case when the precondition does not hold. The
/// shim treats a skipped case as a (vacuous) pass rather than drawing
/// a replacement, so heavy filtering reduces the effective case count.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            let _ = format!($($fmt)*);
            return ::std::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a property, failing the case (not the
/// process) so the harness can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}

/// Declares property tests. Mirrors proptest's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(32))]
///
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<bool>(), 1..9)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config); $($rest)*);
    };
    (@impl ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __test_id = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::TestRng::for_case(__test_id, __case);
                $(let $arg = $crate::Strategy::sample(&($strategy), &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest case {}/{} for `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        e
                    );
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::for_case("x", 0);
        let mut b = crate::TestRng::for_case("x", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("x", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 2u64..=6, f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((2..=6).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn collections_and_composites(
            v in prop::collection::vec(0u8..10, 2..5),
            o in prop::option::of(1u32..4),
            pick in prop::sample::select(vec!["a", "b"]),
            anyb in any::<bool>(),
            mapped in (0u32..5).prop_map(|x| x * 2),
            choice in prop_oneof![Just(1u32), 10u32..20],
        ) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
            if let Some(x) = o { prop_assert!((1..4).contains(&x)); }
            prop_assert!(pick == "a" || pick == "b");
            let _: bool = anyb; // any::<bool>() type-checks as a bool strategy
            prop_assert_eq!(mapped % 2, 0);
            prop_assert!(choice == 1 || (10..20).contains(&choice));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failures_report_case_index() {
        proptest! {
            @impl (ProptestConfig::with_cases(4));
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
