#!/usr/bin/env bash
# corpus-smoke: prove the FOSMTRC1 out-of-core corpus plane end to end.
# Five legs against one FOSM_CACHE_DIR:
#
#   1. build   — `fosm corpus build` writes gzip/gcc corpora;
#                `corpus info` and `corpus verify` accept them;
#   2. corrupt — flipping one data byte makes `corpus verify` fail
#                (section checksums cover every payload byte);
#   3. cold    — profiling straight from the corpus file pages the
#                trace (nonzero corpus.pages) and builds the
#                pre-decoded sidecar (corpus.sidecar_build);
#   4. warm    — a second process re-profiles byte-identically from
#                the disk cache, and a new machine config replays the
#                memoized sidecar (nonzero corpus.sidecar_hit)
#                instead of re-decoding the corpus;
#   5. sweep   — `fosm validate --corpus` shards both files across
#                workers and passes the tuned tolerance bands.
#
# Usage: scripts/corpus-smoke.sh   (FOSM overrides the binary path)
set -euo pipefail

FOSM="${FOSM:-./target/release/fosm}"
WORK="$(mktemp -d)"
cleanup() {
  rm -rf "$WORK"
}
trap cleanup EXIT
export FOSM_CACHE_DIR="$WORK/cache"

# The tuned tolerance bands in validate are calibrated at 120000-inst
# workloads; corpora must match for the --check leg to be meaningful.
INSTS=120000

require_counter() {  # $1: counter name, $2: manifest file, $3: failure text
  grep -Eq "\"$1\":[1-9]" "$2" || {
    echo "$3" >&2
    cat "$2" >&2
    exit 1
  }
}

# --- leg 1: build, info, verify -------------------------------------
"$FOSM" corpus build --bench gzip --insts "$INSTS" --seed 42 -o "$WORK/gzip.fct"
"$FOSM" corpus build --bench gcc --insts "$INSTS" --seed 42 -o "$WORK/gcc.fct"
"$FOSM" corpus info "$WORK/gzip.fct" | grep -q " $INSTS instructions" || {
  echo "corpus info did not report $INSTS instructions" >&2
  exit 1
}
"$FOSM" corpus verify "$WORK/gzip.fct"
"$FOSM" corpus verify "$WORK/gcc.fct"

# --- leg 2: any-byte corruption is detected -------------------------
cp "$WORK/gzip.fct" "$WORK/bad.fct"
# Flip one byte in the middle of the payload, past the 208-byte header.
printf '\xff' | dd of="$WORK/bad.fct" bs=1 seek=4096 count=1 conv=notrunc status=none
if "$FOSM" corpus verify "$WORK/bad.fct" 2>/dev/null; then
  echo "corpus verify accepted a corrupted file" >&2
  exit 1
fi

# --- leg 3: cold profile from the corpus file -----------------------
"$FOSM" profile "$WORK/gzip.fct" -o "$WORK/p-cold.json" \
  --metrics "$WORK/m-cold.json"
require_counter "corpus\.pages" "$WORK/m-cold.json" \
  "cold corpus profile never paged the trace"
require_counter "corpus\.sidecar_build" "$WORK/m-cold.json" \
  "cold corpus profile never built the pre-decoded sidecar"

# --- leg 4: warm re-profile through the disk cache ------------------
"$FOSM" profile "$WORK/gzip.fct" -o "$WORK/p-warm.json" \
  --metrics "$WORK/m-warm.json"
cmp "$WORK/p-cold.json" "$WORK/p-warm.json"
require_counter "store\.disk_hit" "$WORK/m-warm.json" \
  "warm corpus re-profile never hit the disk cache"

# A new machine config misses the memoized profile but must replay the
# persisted sidecar rather than re-decode the corpus from scratch.
"$FOSM" profile "$WORK/gzip.fct" --width 8 -o "$WORK/p-w8.json" \
  --metrics "$WORK/m-w8.json"
require_counter "corpus\.sidecar_hit" "$WORK/m-w8.json" \
  "re-profile under a new config never hit the memoized sidecar"

# --- leg 5: validation sweep sharded over corpus files --------------
"$FOSM" validate --corpus "$WORK/gzip.fct,$WORK/gcc.fct" --threads 2 --check

echo "corpus-smoke OK"
