#!/usr/bin/env bash
# serve-smoke: start the `fosm serve` daemon, fire 32 concurrent mixed
# profile/model requests with byte-identity verification against
# in-process execution, spot-check wire vs one-shot CLI bytes, assert
# the telemetry snapshot (`fosm top --once --json`) is populated under
# load, then shut down cleanly — the daemon must join every thread and
# exit 0.
#
# Usage: scripts/serve-smoke.sh
#        FOSM overrides the binary path; TELEMETRY_OUT overrides where
#        the telemetry snapshot is copied for artifact upload
#        (default ./telemetry-snapshot.json).
set -euo pipefail

FOSM="${FOSM:-./target/release/fosm}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$FOSM" serve --addr 127.0.0.1:0 --workers 4 --port-file "$WORK/port" &
SERVE_PID=$!
for _ in $(seq 1 150); do
  [ -s "$WORK/port" ] && break
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "daemon never published its port" >&2; exit 1; }
ADDR="$(cat "$WORK/port")"
echo "daemon listening on $ADDR (pid $SERVE_PID)"

# 32 concurrent mixed profile/model requests across 8 connections;
# --verify byte-compares every daemon response against in-process
# one-shot execution of the same request.
timeout 300 "$FOSM" loadgen --addr "$ADDR" \
  --clients 8 --requests 4 --insts 20000 --verify

# Spot-check: the same request over the wire and as a one-shot
# `--local` invocation must print identical bytes.
for action in model profile; do
  "$FOSM" client "$action" --bench gzip --insts 20000 \
    --addr "$ADDR" > "$WORK/wire.txt"
  "$FOSM" client "$action" --bench gzip --insts 20000 \
    --local > "$WORK/local.txt"
  cmp "$WORK/wire.txt" "$WORK/local.txt"
done

echo "--- daemon stats ---"
"$FOSM" client stats --addr "$ADDR"

# Telemetry snapshot under load: one schema-versioned JSON body. The
# phase histograms must be populated for the kinds loadgen sent, and
# the flight recorder must hold those request kinds.
SNAPSHOT="${TELEMETRY_OUT:-$PWD/telemetry-snapshot.json}"
"$FOSM" top --addr "$ADDR" --once --json > "$WORK/telemetry.json"
cp "$WORK/telemetry.json" "$SNAPSHOT"
for needle in '"fosm_telemetry":1' \
              '"serve.queue_us.profile"' \
              '"serve.exec_us.model"' \
              '"serve.total_us.profile"' \
              '"kind":"profile"' \
              '"kind":"model"'; do
  grep -qF "$needle" "$WORK/telemetry.json" || {
    echo "telemetry snapshot is missing $needle" >&2
    cat "$WORK/telemetry.json" >&2
    exit 1
  }
done
echo "--- fosm top (one frame) ---"
"$FOSM" top --addr "$ADDR" --once
echo "telemetry snapshot saved to $SNAPSHOT"

# Clean shutdown: the daemon must exit 0 (it joins the accept loop,
# every connection thread, and the worker pool before returning).
"$FOSM" client shutdown --addr "$ADDR"
for _ in $(seq 1 300); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "daemon still running after shutdown request" >&2
  exit 1
fi
wait "$SERVE_PID"
SERVE_PID=""
echo "serve-smoke OK"
