#!/usr/bin/env bash
# cache-reuse: prove the on-disk artifact cache survives daemon
# restarts and never serves corrupt data. Three legs against one
# FOSM_CACHE_DIR:
#
#   1. cold   — a fresh daemon computes and inserts every artifact;
#   2. warm   — a restarted daemon answers byte-identically with a
#               nonzero store.disk_hit counter;
#   3. corrupt — every cache entry is truncated; the next daemon must
#               detect the bad checksums (store.disk_corrupt), evict,
#               recompute, and still answer byte-identically.
#
# Usage: scripts/cache-reuse.sh   (FOSM overrides the binary path)
set -euo pipefail

FOSM="${FOSM:-./target/release/fosm}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT
export FOSM_CACHE_DIR="$WORK/cache"

# Starts a daemon, runs a fixed request mix into $1, dumps stats into
# $2, and shuts the daemon down (must exit 0).
run_leg() {
  rm -f "$WORK/port"
  "$FOSM" serve --addr 127.0.0.1:0 --workers 2 --port-file "$WORK/port" &
  SERVE_PID=$!
  for _ in $(seq 1 150); do
    [ -s "$WORK/port" ] && break
    sleep 0.1
  done
  [ -s "$WORK/port" ] || { echo "daemon never published its port" >&2; exit 1; }
  local addr
  addr="$(cat "$WORK/port")"
  timeout 300 "$FOSM" client profile --bench gzip --insts 20000 \
    --probe full --addr "$addr" > "$1"
  timeout 300 "$FOSM" client model --bench gcc --insts 20000 \
    --probe branch --addr "$addr" >> "$1"
  "$FOSM" client stats --addr "$addr" > "$2"
  "$FOSM" client shutdown --addr "$addr" > /dev/null
  wait "$SERVE_PID"
  SERVE_PID=""
}

require_nonzero() {  # $1: stats key, $2: stats file, $3: failure text
  grep -Eq "^$1 [1-9]" "$2" || {
    echo "$3" >&2
    cat "$2" >&2
    exit 1
  }
}

run_leg "$WORK/cold.txt" "$WORK/stats-cold.txt"
require_nonzero "store\.disk_insert" "$WORK/stats-cold.txt" \
  "cold run inserted nothing into $FOSM_CACHE_DIR"

run_leg "$WORK/warm.txt" "$WORK/stats-warm.txt"
cmp "$WORK/cold.txt" "$WORK/warm.txt"
require_nonzero "store\.disk_hit" "$WORK/stats-warm.txt" \
  "warm restart never hit the disk cache"

entries=$(find "$FOSM_CACHE_DIR" -name '*.art' -type f)
[ -n "$entries" ] || { echo "no cache entries found under $FOSM_CACHE_DIR" >&2; exit 1; }
echo "$entries" | while read -r entry; do
  truncate -s 8 "$entry"
done

run_leg "$WORK/repaired.txt" "$WORK/stats-corrupt.txt"
cmp "$WORK/cold.txt" "$WORK/repaired.txt"
require_nonzero "store\.disk_corrupt" "$WORK/stats-corrupt.txt" \
  "truncated entries were not detected as corrupt"

echo "cache-reuse OK"
