#!/usr/bin/env bash
# serve-bench: the daemon's advisory perf gate. Drives 8 concurrent
# clients, times the identical request stream as sequential one-shot
# CLI subprocesses, and requires the daemon to win by >= 3x wall-clock
# throughput. p50/p99/throughput are then compared against the
# committed BENCH_serve.json with the criterion shim's --check
# semantics (> 25% regression fails).
#
# Usage: scripts/serve-bench.sh [baseline.json]
#        scripts/serve-bench.sh --record [baseline.json]   # (re)write it
set -euo pipefail

FOSM="${FOSM:-./target/release/fosm}"
MODE="check"
if [ "${1:-}" = "--record" ]; then
  MODE="record"
  shift
fi
BASELINE="${1:-BENCH_serve.json}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$FOSM" serve --addr 127.0.0.1:0 --workers 4 --port-file "$WORK/port" &
SERVE_PID=$!
for _ in $(seq 1 150); do
  [ -s "$WORK/port" ] && break
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "daemon never published its port" >&2; exit 1; }
ADDR="$(cat "$WORK/port")"

if [ "$MODE" = "record" ]; then
  timeout 600 "$FOSM" loadgen --addr "$ADDR" \
    --clients 8 --requests 8 --insts 20000 \
    --seq --min-speedup 3 -o "$BASELINE"
else
  timeout 600 "$FOSM" loadgen --addr "$ADDR" \
    --clients 8 --requests 8 --insts 20000 \
    --seq --min-speedup 3 --baseline "$BASELINE" --check
fi

"$FOSM" client shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""
echo "serve-bench OK"
