#!/usr/bin/env bash
# serve-bench: the daemon's advisory perf gate. Drives 8 concurrent
# clients, times the identical request stream as sequential one-shot
# CLI subprocesses, and requires the daemon to win by >= 3x wall-clock
# throughput. p50/p99/throughput are then compared against the
# committed BENCH_serve.json with the criterion shim's --check
# semantics (> 25% regression fails). A second leg re-runs the same
# load against a `--no-telemetry` daemon and requires the instrumented
# p99 to stay within 5% of the uninstrumented one.
#
# Usage: scripts/serve-bench.sh [baseline.json]
#        scripts/serve-bench.sh --record [baseline.json]   # (re)write it
set -euo pipefail

FOSM="${FOSM:-./target/release/fosm}"
MODE="check"
if [ "${1:-}" = "--record" ]; then
  MODE="record"
  shift
fi
BASELINE="${1:-BENCH_serve.json}"
WORK="$(mktemp -d)"
SERVE_PID=""
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

"$FOSM" serve --addr 127.0.0.1:0 --workers 4 --port-file "$WORK/port" &
SERVE_PID=$!
for _ in $(seq 1 150); do
  [ -s "$WORK/port" ] && break
  sleep 0.1
done
[ -s "$WORK/port" ] || { echo "daemon never published its port" >&2; exit 1; }
ADDR="$(cat "$WORK/port")"

if [ "$MODE" = "record" ]; then
  timeout 600 "$FOSM" loadgen --addr "$ADDR" \
    --clients 8 --requests 8 --insts 20000 \
    --seq --min-speedup 3 -o "$BASELINE"
else
  timeout 600 "$FOSM" loadgen --addr "$ADDR" \
    --clients 8 --requests 8 --insts 20000 \
    --seq --min-speedup 3 --baseline "$BASELINE" --check
fi

"$FOSM" client shutdown --addr "$ADDR" > /dev/null
wait "$SERVE_PID"
SERVE_PID=""

# Telemetry overhead gate: the identical load against a fresh daemon
# with telemetry on vs one started --no-telemetry. Instrumented p99
# must stay within 5% of the uninstrumented leg (the per-request cost
# is a handful of relaxed atomic increments plus one ring push). Each
# leg warms the artifact store first so p99 measures steady-state
# request latency, not the one-time cold profile computation.
overhead_leg() { # overhead_leg <tag> [extra serve flags...]
  tag="$1"; shift
  "$FOSM" serve --addr 127.0.0.1:0 --workers 4 "$@" \
    --port-file "$WORK/port-$tag" &
  SERVE_PID=$!
  for _ in $(seq 1 150); do
    [ -s "$WORK/port-$tag" ] && break
    sleep 0.1
  done
  [ -s "$WORK/port-$tag" ] || { echo "$tag daemon never published its port" >&2; exit 1; }
  leg_addr="$(cat "$WORK/port-$tag")"
  timeout 600 "$FOSM" loadgen --addr "$leg_addr" \
    --clients 8 --requests 4 --insts 20000 > /dev/null   # store warmup
  for pass in 1 2 3; do
    timeout 600 "$FOSM" loadgen --addr "$leg_addr" \
      --clients 8 --requests 16 --insts 20000 -o "$WORK/$tag-$pass.json"
  done
  "$FOSM" client shutdown --addr "$leg_addr" > /dev/null
  wait "$SERVE_PID"
  SERVE_PID=""
}
overhead_leg on
overhead_leg off --no-telemetry

# Min across the three passes: robust to one-off scheduler/GC-style
# interference, which dominates p99 on shared runners.
p99_of() {
  awk -F'"ns_per_iter": ' '/"serve\/p99"/ { v = $2 + 0;
    if (best == 0 || v < best) best = v } END { if (best) print best }' "$@"
}
ON_P99="$(p99_of "$WORK"/on-*.json)"
OFF_P99="$(p99_of "$WORK"/off-*.json)"
[ -n "$ON_P99" ] && [ -n "$OFF_P99" ] || {
  echo "could not extract serve/p99 from loadgen output" >&2; exit 1;
}
awk -v on="$ON_P99" -v off="$OFF_P99" 'BEGIN {
  pct = (on - off) / off * 100.0;
  printf "telemetry p99 overhead: on %.0f ns vs off %.0f ns (%+.1f%%, limit +5%%)\n",
         on, off, pct;
  exit (pct > 5.0) ? 1 : 0
}' || { echo "telemetry overhead above 5% of p99" >&2; exit 1; }

echo "serve-bench OK"
