//! The paper's §7 clustered-window extension: partitioned issue windows
//! with inter-cluster forwarding delays.

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{ClusterConfig, Machine, MachineConfig, Steering};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 100_000;

fn run(cfg: MachineConfig, trace: &VecTrace) -> f64 {
    Machine::new(cfg).run(&mut trace.clone()).cpi()
}

#[test]
fn clustering_costs_performance() {
    // vpr is dependence-chain-bound: cross-cluster forwarding hurts it.
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::vpr(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);

    let monolithic = run(MachineConfig::ideal(), &trace);
    let clustered = run(
        MachineConfig::ideal().with_clusters(ClusterConfig {
            clusters: 2,
            forward_delay: 2,
            steering: Steering::RoundRobin,
        }),
        &trace,
    );
    assert!(
        clustered > 1.02 * monolithic,
        "2-cycle forwarding must cost CPI: {clustered:.3} vs {monolithic:.3}"
    );
}

#[test]
fn dependence_steering_beats_round_robin() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::vpr(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let cfg = |steering| {
        MachineConfig::ideal().with_clusters(ClusterConfig {
            clusters: 2,
            forward_delay: 2,
            steering,
        })
    };
    let rr = run(cfg(Steering::RoundRobin), &trace);
    let dep = run(cfg(Steering::Dependence), &trace);
    assert!(
        dep <= rr * 1.01,
        "dependence steering ({dep:.3}) should not lose to round-robin ({rr:.3})"
    );
}

#[test]
fn zero_delay_clustering_is_nearly_free() {
    // With no forwarding delay, clustering costs only port/capacity
    // fragmentation — small on a saturated machine.
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let mono = run(MachineConfig::ideal(), &trace);
    let clustered = run(
        MachineConfig::ideal().with_clusters(ClusterConfig {
            clusters: 4,
            forward_delay: 0,
            steering: Steering::Dependence,
        }),
        &trace,
    );
    assert!(
        clustered < 1.15 * mono,
        "fragmentation alone should be small: {clustered:.3} vs {mono:.3}"
    );
}

#[test]
fn model_tracks_the_clustered_machine() {
    let spec = BenchmarkSpec::vpr();
    let mut generator = WorkloadGenerator::new(&spec, 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let cluster = ClusterConfig {
        clusters: 2,
        forward_delay: 2,
        steering: Steering::RoundRobin,
    };
    let sim =
        Machine::new(MachineConfig::baseline().with_clusters(cluster)).run(&mut trace.clone());

    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");
    // Round-robin over 2 clusters: ~half of all dependence edges cross.
    let est = FirstOrderModel::new(params)
        .with_clusters(cluster.forward_delay, 0.5)
        .evaluate(&profile)
        .expect("estimate");
    let err = (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    assert!(
        err < 0.25,
        "model {:.3} vs sim {:.3} ({:.1}% error)",
        est.total_cpi(),
        sim.cpi(),
        err * 100.0
    );

    // And the clustered estimate exceeds the monolithic one.
    let mono = FirstOrderModel::new(ProcessorParams::baseline())
        .evaluate(&profile)
        .expect("estimate");
    assert!(est.total_cpi() > mono.total_cpi());
}

#[test]
fn invalid_cluster_geometry_is_rejected() {
    let bad = ClusterConfig {
        clusters: 3, // does not divide width 4
        forward_delay: 1,
        steering: Steering::RoundRobin,
    };
    assert!(MachineConfig::baseline()
        .with_clusters(bad)
        .validate()
        .is_err());
    let one = ClusterConfig {
        clusters: 1,
        forward_delay: 1,
        steering: Steering::RoundRobin,
    };
    assert!(MachineConfig::baseline()
        .with_clusters(one)
        .validate()
        .is_err());
    assert!(MachineConfig::baseline()
        .with_clusters(ClusterConfig::two_cluster())
        .validate()
        .is_ok());
}
