//! End-to-end accuracy: the Fig. 15 experiment as a regression test,
//! driven through the differential validation harness so the assertions
//! are per *CPI component*, not just the aggregate.
//!
//! The paper's accuracy claims are per component (base, branch,
//! I-cache, long D-cache — Figs. 9–13); an aggregate-only check lets
//! two components cancel each other's bugs. Each benchmark here is
//! validated against the committed gate bands (`ToleranceSpec::gate`),
//! the same bands the CI accuracy gate enforces over all 12 workloads
//! via `fosm validate --check`.

use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::validate::{ArtifactStore, CaseSpec, ToleranceSpec};
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 120_000;
const SEED: u64 = 42;

fn case_for(spec: BenchmarkSpec) -> CaseSpec {
    CaseSpec {
        config: MachineConfig::baseline(),
        bench: spec,
        trace_len: TRACE_LEN,
        seed: SEED,
    }
}

#[test]
fn components_stay_within_the_gate_bands_per_benchmark() {
    // One benchmark per dominant bottleneck: branch-bound (gzip),
    // memory-bound (mcf), icache-bound (gcc), low-ILP (vpr). The full
    // 12-workload sweep runs in CI through `fosm validate --check`.
    let store = ArtifactStore::new();
    let tol = ToleranceSpec::gate();
    for spec in [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::gcc(),
        BenchmarkSpec::vpr(),
    ] {
        let name = spec.name.clone();
        let result = fosm::validate::differential::run_case(&store, &case_for(spec), &tol)
            .expect("validation case runs on a recorded trace");
        for row in &result.components {
            assert!(
                row.within,
                "{name}/{}: model {:.4} vs sim {:.4} ({:+.1}%), allowed ±{:.4}",
                row.component.name(),
                row.model,
                row.sim,
                row.error_pct(),
                row.allowed
            );
        }
    }
}

#[test]
fn model_ranks_benchmarks_like_the_simulator() {
    // The model must get the *ordering* right: mcf (memory-bound) is
    // the slowest, gzip (small/branchy) among the fastest.
    let store = ArtifactStore::new();
    let tol = ToleranceSpec::gate();
    let gzip =
        fosm::validate::differential::run_case(&store, &case_for(BenchmarkSpec::gzip()), &tol)
            .expect("gzip case runs");
    let mcf = fosm::validate::differential::run_case(&store, &case_for(BenchmarkSpec::mcf()), &tol)
        .expect("mcf case runs");
    let total = fosm::validate::Component::Total;
    let (gzip_m, gzip_s) = (gzip.row(total).model, gzip.row(total).sim);
    let (mcf_m, mcf_s) = (mcf.row(total).model, mcf.row(total).sim);
    assert!(mcf_s > 1.5 * gzip_s, "sim: mcf {mcf_s} vs gzip {gzip_s}");
    assert!(mcf_m > 1.5 * gzip_m, "model: mcf {mcf_m} vs gzip {gzip_m}");
}

#[test]
fn steady_state_matches_ideal_simulation() {
    // With every miss-event source idealized, the simulator should run
    // at the model's steady-state IPC (the IW-characteristic part of
    // the model in isolation). Kept independent of the harness as a
    // cross-check on its Base component.
    use fosm::model::{FirstOrderModel, ProcessorParams};
    use fosm::profile::ProfileCollector;

    for spec in [BenchmarkSpec::gzip(), BenchmarkSpec::vortex()] {
        let mut generator = WorkloadGenerator::new(&spec, SEED);
        let trace = VecTrace::record(&mut generator, TRACE_LEN);
        let params = ProcessorParams::baseline();
        let profile = ProfileCollector::new(&params)
            .collect(&mut trace.clone(), u64::MAX)
            .expect("profile");
        let est = FirstOrderModel::new(params)
            .evaluate(&profile)
            .expect("estimate");
        let ideal = Machine::new(MachineConfig::ideal()).run(&mut trace.clone());
        let model_ipc = 1.0 / est.steady_state_cpi;
        let err = (model_ipc - ideal.ipc()).abs() / ideal.ipc();
        assert!(
            err < 0.2,
            "{}: steady-state {model_ipc:.2} vs ideal sim {:.2}",
            spec.name,
            ideal.ipc()
        );
    }
}
