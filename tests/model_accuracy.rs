//! End-to-end accuracy: the Fig. 15 experiment as a regression test.
//!
//! The first-order model's CPI estimate must track the detailed
//! simulator across workloads with very different bottlenecks. The
//! paper reports 5.8% average error with 13% worst-case; we enforce a
//! looser band here because the traces are short for test speed.

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 120_000;

fn model_and_sim_cpi(spec: &BenchmarkSpec) -> (f64, f64) {
    let mut generator = WorkloadGenerator::new(spec, 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");
    let est = FirstOrderModel::new(params)
        .evaluate(&profile)
        .expect("estimate");
    let sim = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());
    (est.total_cpi(), sim.cpi())
}

#[test]
fn model_tracks_simulation_across_bottleneck_regimes() {
    // One benchmark per dominant bottleneck: branch-bound (gzip),
    // memory-bound (mcf), icache-bound (gcc), low-ILP (vpr).
    let mut total_err = 0.0;
    let specs = [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::gcc(),
        BenchmarkSpec::vpr(),
    ];
    for spec in &specs {
        let (model, sim) = model_and_sim_cpi(spec);
        let err = (model - sim).abs() / sim;
        assert!(
            err < 0.25,
            "{}: model {model:.3} vs sim {sim:.3} ({:.1}% error)",
            spec.name,
            err * 100.0
        );
        total_err += err;
    }
    let avg = total_err / specs.len() as f64;
    assert!(avg < 0.15, "average error {:.1}% too high", avg * 100.0);
}

#[test]
fn model_ranks_benchmarks_like_the_simulator() {
    // The model must get the *ordering* right: mcf (memory-bound) is
    // the slowest, gzip (small/branchy) among the fastest.
    let (gzip_m, gzip_s) = model_and_sim_cpi(&BenchmarkSpec::gzip());
    let (mcf_m, mcf_s) = model_and_sim_cpi(&BenchmarkSpec::mcf());
    assert!(mcf_s > 1.5 * gzip_s, "sim: mcf {mcf_s} vs gzip {gzip_s}");
    assert!(mcf_m > 1.5 * gzip_m, "model: mcf {mcf_m} vs gzip {gzip_m}");
}

#[test]
fn steady_state_matches_ideal_simulation() {
    // With every miss-event source idealized, the simulator should run
    // at the model's steady-state IPC (the IW-characteristic part of
    // the model in isolation).
    for spec in [BenchmarkSpec::gzip(), BenchmarkSpec::vortex()] {
        let mut generator = WorkloadGenerator::new(&spec, 42);
        let trace = VecTrace::record(&mut generator, TRACE_LEN);
        let params = ProcessorParams::baseline();
        let profile = ProfileCollector::new(&params)
            .collect(&mut trace.clone(), u64::MAX)
            .expect("profile");
        let est = FirstOrderModel::new(params)
            .evaluate(&profile)
            .expect("estimate");
        let ideal = Machine::new(MachineConfig::ideal()).run(&mut trace.clone());
        let model_ipc = 1.0 / est.steady_state_cpi;
        let err = (model_ipc - ideal.ipc()).abs() / ideal.ipc();
        assert!(
            err < 0.12,
            "{}: steady-state {model_ipc:.2} vs ideal sim {:.2}",
            spec.name,
            ideal.ipc()
        );
    }
}
