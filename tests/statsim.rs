//! The paper's §1.2 claim against the statistical-simulation baseline:
//! "In effect, our model performs statistical simulation, without the
//! simulation, and overall accuracy is similar."

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::statsim::{CollectorConfig, StatMachine, StatProfile, SynthesizedTrace};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 100_000;

#[test]
fn statistical_simulation_and_model_agree_with_detailed_simulation() {
    let mut stat_err = 0.0;
    let mut model_err = 0.0;
    let specs = [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::gcc(),
        BenchmarkSpec::eon(),
    ];
    for spec in &specs {
        let mut generator = WorkloadGenerator::new(spec, 42);
        let trace = VecTrace::record(&mut generator, TRACE_LEN);
        let sim = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());

        let stat_profile = StatProfile::from_trace(trace.insts(), CollectorConfig::default());
        let stat =
            StatMachine::baseline().run(&mut SynthesizedTrace::new(&stat_profile, 42), TRACE_LEN);

        let params = ProcessorParams::baseline();
        let profile = ProfileCollector::new(&params)
            .collect(&mut trace.clone(), u64::MAX)
            .expect("profile");
        let est = FirstOrderModel::new(params)
            .evaluate(&profile)
            .expect("estimate");

        stat_err += (stat.cpi() - sim.cpi()).abs() / sim.cpi();
        model_err += (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    }
    stat_err /= specs.len() as f64;
    model_err /= specs.len() as f64;
    // Both methods land in the same accuracy class.
    assert!(
        stat_err < 0.2,
        "statistical simulation error {:.1}%",
        stat_err * 100.0
    );
    assert!(model_err < 0.2, "model error {:.1}%", model_err * 100.0);
}

#[test]
fn synthetic_traces_preserve_throughput_character() {
    // A synthesized mcf must still be much slower than a synthesized
    // gzip on the same machine — the statistics carry the bottleneck.
    let run = |spec: &BenchmarkSpec| {
        let mut generator = WorkloadGenerator::new(spec, 42);
        let trace = VecTrace::record(&mut generator, TRACE_LEN);
        let p = StatProfile::from_trace(trace.insts(), CollectorConfig::default());
        StatMachine::baseline()
            .run(&mut SynthesizedTrace::new(&p, 1), 50_000)
            .cpi()
    };
    let mcf = run(&BenchmarkSpec::mcf());
    let gzip = run(&BenchmarkSpec::gzip());
    assert!(mcf > 1.5 * gzip, "mcf {mcf:.2} vs gzip {gzip:.2}");
}
