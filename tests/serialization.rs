//! Serde round-trips for the data-structure types: profiles, estimates,
//! and configurations survive serialization unchanged, so experiment
//! inputs and outputs can be archived and replayed.

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::MachineConfig;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

#[test]
fn profile_round_trips_through_json() {
    let params = ProcessorParams::baseline();
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
    let profile = ProfileCollector::new(&params)
        .with_name("gzip")
        .collect(&mut generator, 30_000)
        .expect("profile");

    let json = serde_json::to_string(&profile).expect("serialize");
    let back: fosm::profile::ProgramProfile = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, profile);

    // The deserialized profile evaluates identically.
    let a = FirstOrderModel::new(params.clone())
        .evaluate(&profile)
        .unwrap();
    let b = FirstOrderModel::new(params).evaluate(&back).unwrap();
    assert_eq!(a, b);
}

#[test]
fn estimate_and_configs_round_trip() {
    let params = ProcessorParams::baseline();
    let json = serde_json::to_string(&params).unwrap();
    let back: ProcessorParams = serde_json::from_str(&json).unwrap();
    assert_eq!(back, params);

    let cfg = MachineConfig::baseline();
    let json = serde_json::to_string(&cfg).unwrap();
    let back: MachineConfig = serde_json::from_str(&json).unwrap();
    assert_eq!(back.width, cfg.width);
    assert_eq!(back.hierarchy, cfg.hierarchy);
    assert_eq!(back.predictor, cfg.predictor);
}

#[test]
fn benchmark_specs_round_trip() {
    for spec in BenchmarkSpec::all() {
        let json = serde_json::to_string(&spec).unwrap();
        let back: BenchmarkSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, spec);
        // A round-tripped spec generates the identical stream.
        use fosm::trace::TraceSource;
        let a: Vec<_> = WorkloadGenerator::new(&spec, 5).take(200).iter().collect();
        let b: Vec<_> = WorkloadGenerator::new(&back, 5).take(200).iter().collect();
        assert_eq!(a, b);
    }
}
