//! The paper's §6 trend conclusions, as end-to-end tests over the
//! public trend-study API.

use fosm::depgraph::{IwCharacteristic, PowerLaw};
use fosm::trends::issue_width::IssueWidthStudy;
use fosm::trends::pipeline::PipelineStudy;

#[test]
fn optimal_pipeline_depth_reproduces_sprangle_carmean() {
    // Paper §6.1: "for the issue width 3 curve we get the same result
    // as reported in [4], the optimal pipeline depth is around 55".
    let study = PipelineStudy::paper();
    let best = study.optimal_depth(3, 1..=120).expect("non-empty sweep");
    assert!(
        (45..=70).contains(&best),
        "optimal depth {best}, expected ≈55"
    );
}

#[test]
fn wider_issue_prefers_shorter_pipelines() {
    // Paper §6.1 / Hartstein & Puzak: the optimum moves toward shorter
    // front ends as the machine widens.
    let study = PipelineStudy::paper();
    let mut previous = u32::MAX;
    for width in [2u32, 3, 4, 8] {
        let best = study
            .optimal_depth(width, 1..=140)
            .expect("non-empty sweep");
        assert!(
            best <= previous,
            "width {width}: optimum {best} should not exceed the narrower machine's {previous}"
        );
        previous = best;
    }
}

#[test]
fn branch_prediction_must_improve_quadratically_with_width() {
    // Paper §6.2: doubling the issue width requires ~4x the distance
    // between mispredictions for the same time-at-peak fraction.
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).expect("valid law");
    let study = IssueWidthStudy::paper(iw);
    let d4 = study.distance_for_fraction(4, 0.3).expect("reachable");
    let d8 = study.distance_for_fraction(8, 0.3).expect("reachable");
    let d16 = study.distance_for_fraction(16, 0.3).expect("reachable");
    for (ratio, label) in [(d8 / d4, "8/4"), (d16 / d8, "16/8")] {
        assert!(
            (3.0..=5.5).contains(&ratio),
            "{label} distance ratio {ratio:.2}, expected ≈4"
        );
    }
}

#[test]
fn deep_pipelines_erode_wide_issue_ipc() {
    // Paper Fig. 17a: as the front end deepens, the IPC advantage of
    // width 8 over width 2 shrinks.
    let study = PipelineStudy::paper();
    let shallow = study.ipc(8, 2).unwrap() / study.ipc(2, 2).unwrap();
    let deep = study.ipc(8, 90).unwrap() / study.ipc(2, 90).unwrap();
    assert!(
        deep < 0.8 * shallow,
        "advantage should erode: shallow {shallow:.2}, deep {deep:.2}"
    );
}
