//! The paper's three summary observations (§7), verified end-to-end
//! against the detailed simulator on synthetic workloads.

use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 100_000;

fn record(spec: &BenchmarkSpec) -> VecTrace {
    let mut generator = WorkloadGenerator::new(spec, 42);
    VecTrace::record(&mut generator, TRACE_LEN)
}

fn run(cfg: MachineConfig, trace: &VecTrace) -> fosm::sim::SimReport {
    Machine::new(cfg).run(&mut trace.clone())
}

/// Observation 1: "The branch misprediction penalty is often
/// significantly larger than the front-end pipeline depth."
#[test]
fn branch_penalty_exceeds_pipeline_depth() {
    let trace = record(&BenchmarkSpec::gzip());
    let real = run(MachineConfig::only_real_branch_predictor(), &trace);
    let ideal = run(MachineConfig::ideal(), &trace);
    let penalty = (real.cycles - ideal.cycles) as f64 / real.mispredicts as f64;
    assert!(real.mispredicts > 100, "need a meaningful sample");
    assert!(
        penalty > 5.0,
        "penalty {penalty:.1} must exceed the 5-stage front end"
    );
    assert!(
        penalty < 15.0,
        "penalty {penalty:.1} should stay first-order"
    );
}

/// Observation 2: "Instruction cache penalty is independent of the
/// front-end pipeline; it depends largely on the miss delay."
#[test]
fn icache_penalty_tracks_miss_delay_not_depth() {
    let trace = record(&BenchmarkSpec::gcc());
    let mut penalties = Vec::new();
    for depth in [5u32, 9] {
        let real = run(
            MachineConfig::only_real_icache().with_pipe_depth(depth),
            &trace,
        );
        let ideal = run(MachineConfig::ideal().with_pipe_depth(depth), &trace);
        assert!(real.icache_short_misses > 300, "need a meaningful sample");
        let adjusted = (real.cycles as i64 - ideal.cycles as i64) as f64
            - real.icache_long_misses as f64 * 200.0;
        penalties.push(adjusted / real.icache_short_misses as f64);
    }
    assert!(
        (penalties[0] - penalties[1]).abs() < 1.0,
        "depth changed the penalty: {penalties:?}"
    );
    assert!(
        (penalties[0] - 8.0).abs() < 2.0,
        "penalty {:.1} should approximate the 8-cycle L2 delay",
        penalties[0]
    );
}

/// Observation 3: "The data cache penalty for an isolated long miss is
/// essentially the miss delay. For multiple misses that occur within a
/// number of instructions equal to the ROB size, the combined miss
/// penalty is the same as an isolated miss."
#[test]
fn overlapped_long_misses_share_one_penalty() {
    use fosm::isa::{Inst, Op, Reg};

    // Hand-built traces: independent filler with (a) one long-miss
    // load, (b) two independent long-miss loads 40 instructions apart
    // (well within the 128-entry ROB).
    let filler = |n: usize, base_pc: u64| -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    base_pc + i as u64 * 4,
                    Op::IntAlu,
                    Reg::new((i % 24) as u8),
                    None,
                    None,
                )
            })
            .collect()
    };
    let build = |miss_addrs: &[(usize, u64)]| -> VecTrace {
        let mut insts = filler(800, 0);
        for &(at, addr) in miss_addrs {
            insts[at] = Inst::load(at as u64 * 4, Reg::new(30), None, addr);
        }
        VecTrace::new(insts)
    };
    // Baseline caches: distinct far-apart addresses are cold misses to
    // memory (4 KB L1, 512 KB L2, first touch).
    let none = build(&[]);
    let one = build(&[(100, 0x40_0000_0000)]);
    let two = build(&[(100, 0x40_0000_0000), (140, 0x50_0000_0000)]);

    let cfg = MachineConfig::only_real_dcache();
    let t_none = run(cfg.clone(), &none).cycles as i64;
    let t_one = run(cfg.clone(), &one).cycles as i64;
    let t_two = run(cfg, &two).cycles as i64;

    let isolated = t_one - t_none;
    let combined = t_two - t_none;
    assert!(
        isolated > 150,
        "an isolated long miss must cost most of the 200-cycle delay, got {isolated}"
    );
    // The second overlapped miss adds almost nothing.
    assert!(
        combined - isolated < 30,
        "overlapped misses should share one penalty: isolated {isolated}, combined {combined}"
    );
}
