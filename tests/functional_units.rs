//! The paper's §7 limited-functional-units extension: instruction-mix
//! statistics determine a lower saturation level, validated against the
//! detailed simulator's per-class issue limits.

use fosm::isa::{FuClass, FuPool, Inst, Op, Reg};
use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

#[test]
fn single_memory_port_bounds_load_throughput() {
    // A pure-load trace on a 4-wide machine with one memory port can
    // retire at most 1 IPC.
    let insts: Vec<Inst> = (0..2000u64)
        .map(|i| Inst::load(i * 4, Reg::new((i % 24) as u8), None, (i % 32) * 8))
        .collect();
    let pool = FuPool {
        mem_ports: 1,
        ..FuPool::alpha_like()
    };
    let limited = Machine::new(MachineConfig::ideal().with_fu_limits(pool))
        .run(&mut VecTrace::new(insts.clone()));
    let unlimited = Machine::new(MachineConfig::ideal()).run(&mut VecTrace::new(insts));
    assert!(limited.ipc() <= 1.0 + 1e-9, "ipc {}", limited.ipc());
    assert!(unlimited.ipc() > 3.0, "ipc {}", unlimited.ipc());
}

#[test]
fn generous_pools_change_nothing() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
    let trace = VecTrace::record(&mut generator, 60_000);
    let huge = FuPool {
        int_alu: 64,
        int_mul_div: 64,
        fp_add: 64,
        fp_mul_div: 64,
        mem_ports: 64,
    };
    let a = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());
    let b = Machine::new(MachineConfig::baseline().with_fu_limits(huge)).run(&mut trace.clone());
    assert_eq!(a.cycles, b.cycles);
}

#[test]
fn model_predicts_the_fu_saturation_level() {
    // eon is FP-heavy; a single shared memory port is its limiter.
    let spec = BenchmarkSpec::eon();
    let mut generator = WorkloadGenerator::new(&spec, 42);
    let trace = VecTrace::record(&mut generator, 100_000);
    let pool = FuPool {
        mem_ports: 1,
        ..FuPool::alpha_like()
    };

    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");
    // The profile knows the mix: eon has a meaningful FP share.
    assert!(profile.fu_fraction(FuClass::FpAdd) > 0.03);
    assert!(profile.fu_fraction(FuClass::Mem) > 0.15);

    let est = FirstOrderModel::new(params.clone())
        .with_fu_limits(pool)
        .evaluate(&profile)
        .expect("estimate");
    // Effective width = min over classes of units/fraction, below the
    // machine width with one memory port at ~25% memory ops.
    assert!(est.effective_width < 4.0 + 1e-12);
    let expected = 1.0 / profile.fu_fraction(FuClass::Mem);
    assert!(
        (est.effective_width - expected.min(4.0)).abs() < 0.5,
        "effective width {} vs expected {expected:.2}",
        est.effective_width
    );

    // Model total tracks the FU-limited simulator.
    let sim = Machine::new(MachineConfig::baseline().with_fu_limits(pool)).run(&mut trace.clone());
    let err = (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    assert!(
        err < 0.25,
        "model {:.3} vs sim {:.3} ({:.1}% error)",
        est.total_cpi(),
        sim.cpi(),
        err * 100.0
    );

    // And the unlimited model underestimates the limited machine.
    let unlimited = FirstOrderModel::new(params)
        .evaluate(&profile)
        .expect("estimate");
    assert!(unlimited.total_cpi() < est.total_cpi());
    assert_eq!(unlimited.effective_width, 4.0);
}

#[test]
fn fu_class_mapping_is_exhaustive_in_profiles() {
    let params = ProcessorParams::baseline();
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::vpr(), 1);
    let profile = ProfileCollector::new(&params)
        .collect(&mut generator, 30_000)
        .expect("profile");
    let total: u64 = profile.fu_mix.iter().sum();
    assert_eq!(total, profile.instructions);
    // vpr is FP-flavoured: both FP classes appear.
    assert!(profile.fu_fraction(FuClass::FpMulDiv) > 0.05);
    let _ = Op::FpMul.fu_class(); // public mapping stays available
}
