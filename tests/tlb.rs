//! The paper's §7 TLB extension: data-TLB misses behave like long
//! data-cache misses. Model-vs-simulator agreement for the extension.

use fosm::cache::TlbConfig;
use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 100_000;

/// A TLB small enough that mcf's pointer-chasing blows it regularly.
fn tiny_tlb() -> TlbConfig {
    TlbConfig {
        entries: 16,
        page_bytes: 4096,
        walk_latency: 120,
    }
}

#[test]
fn tlb_misses_cost_time_in_the_simulator() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::mcf(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);

    let without = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());
    let with =
        Machine::new(MachineConfig::baseline().with_dtlb(tiny_tlb())).run(&mut trace.clone());
    assert!(with.dtlb_misses > 1_000, "mcf must thrash a 16-entry TLB");
    assert_eq!(without.dtlb_misses, 0);
    assert!(
        with.cycles > without.cycles,
        "page walks must cost cycles: {} vs {}",
        with.cycles,
        without.cycles
    );
}

#[test]
fn model_tracks_the_tlb_extension() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::mcf(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let params = ProcessorParams::baseline();

    let profile = ProfileCollector::new(&params)
        .with_dtlb(tiny_tlb())
        .with_name("mcf+tlb")
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");
    assert!(profile.dtlb_miss_distribution.misses() > 1_000);
    assert_eq!(profile.dtlb_walk_latency, 120);

    let est = FirstOrderModel::new(params)
        .evaluate(&profile)
        .expect("estimate");
    assert!(est.dtlb_cpi > 0.0, "TLB component must be charged");

    let sim = Machine::new(MachineConfig::baseline().with_dtlb(tiny_tlb())).run(&mut trace.clone());
    let err = (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    assert!(
        err < 0.25,
        "model {:.3} vs sim {:.3} with TLB ({:.1}% error)",
        est.total_cpi(),
        sim.cpi(),
        err * 100.0
    );
}

#[test]
fn without_a_tlb_the_component_is_zero() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .collect(&mut generator, 30_000)
        .expect("profile");
    assert_eq!(profile.dtlb_miss_distribution.misses(), 0);
    let est = FirstOrderModel::new(params)
        .evaluate(&profile)
        .expect("estimate");
    assert_eq!(est.dtlb_cpi, 0.0);
}
