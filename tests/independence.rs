//! The paper's founding observation (Fig. 2): miss-event penalties add
//! near-independently. Adding each independently-measured penalty to
//! the ideal time reproduces the fully-real run within a small error.

use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn cycles(cfg: MachineConfig, trace: &VecTrace) -> u64 {
    Machine::new(cfg).run(&mut trace.clone()).cycles
}

#[test]
fn miss_event_penalties_add_independently() {
    for spec in [BenchmarkSpec::gzip(), BenchmarkSpec::twolf()] {
        let mut generator = WorkloadGenerator::new(&spec, 42);
        let trace = VecTrace::record(&mut generator, 120_000);

        let ideal = cycles(MachineConfig::ideal(), &trace);
        let real = cycles(MachineConfig::baseline(), &trace);
        let bp = cycles(MachineConfig::only_real_branch_predictor(), &trace);
        let ic = cycles(MachineConfig::only_real_icache(), &trace);
        let dc = cycles(MachineConfig::only_real_dcache(), &trace);

        let independent = ideal + (bp - ideal) + (ic - ideal) + (dc - ideal);
        let err = (independent as f64 - real as f64).abs() / real as f64;
        assert!(
            err < 0.12,
            "{}: independent {independent} vs combined {real} ({:.1}% error; paper: ≤16%)",
            spec.name,
            err * 100.0
        );

        // Each individual penalty is positive: every miss-event source
        // actually costs time on these workloads.
        assert!(bp > ideal);
        assert!(dc > ideal);
    }
}
