//! All §7 extensions stacked at once: a clustered, FU-limited machine
//! with a fetch buffer and a data TLB must still simulate sanely, and
//! the fully-extended model must still track it.

use fosm::cache::TlbConfig;
use fosm::isa::FuPool;
use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{ClusterConfig, FetchBufferConfig, Machine, MachineConfig, Steering};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn extended_config() -> MachineConfig {
    MachineConfig::baseline()
        .with_clusters(ClusterConfig {
            clusters: 2,
            forward_delay: 1,
            steering: Steering::Dependence,
        })
        .with_fu_limits(FuPool::alpha_like())
        .with_fetch_buffer(FetchBufferConfig {
            entries: 32,
            bandwidth: 8,
        })
        .with_dtlb(TlbConfig::baseline())
}

#[test]
fn fully_extended_machine_simulates_sanely() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gcc(), 42);
    let trace = VecTrace::record(&mut generator, 80_000);

    let cfg = extended_config();
    cfg.validate().expect("stacked extensions are consistent");
    let extended = Machine::new(cfg).run(&mut trace.clone());
    let baseline = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());

    assert_eq!(extended.instructions, 80_000);
    assert!(extended.ipc() > 0.2 && extended.ipc() <= 4.0);
    // Every extension stat is alive.
    assert!(extended.dtlb_misses > 0, "TLB must see misses on gcc");
    // Extensions cost something relative to the unconstrained baseline,
    // minus what the fetch buffer gives back; stay within a sane band.
    let ratio = extended.cpi() / baseline.cpi();
    assert!(
        (0.7..=1.6).contains(&ratio),
        "extended/baseline CPI ratio {ratio:.2}"
    );
}

#[test]
fn fully_extended_model_tracks_the_machine() {
    let spec = BenchmarkSpec::gcc();
    let mut generator = WorkloadGenerator::new(&spec, 42);
    let trace = VecTrace::record(&mut generator, 80_000);

    let sim = Machine::new(extended_config()).run(&mut trace.clone());

    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_dtlb(TlbConfig::baseline())
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");
    let est = FirstOrderModel::new(params)
        .with_fu_limits(FuPool::alpha_like())
        .with_clusters(1, 0.5 / 3.0) // dependence steering, 2 clusters
        .with_fetch_buffer(32)
        .evaluate(&profile)
        .expect("estimate");

    let err = (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    assert!(
        err < 0.30,
        "fully-extended model {:.3} vs sim {:.3} ({:.1}% error)",
        est.total_cpi(),
        sim.cpi(),
        err * 100.0
    );
}

#[test]
fn extension_validation_composes() {
    // A bad piece anywhere fails the whole configuration.
    let mut cfg = extended_config();
    cfg.fu = Some(FuPool {
        mem_ports: 0,
        ..FuPool::alpha_like()
    });
    assert!(cfg.validate().is_err());

    let mut cfg = extended_config();
    cfg.clusters = Some(ClusterConfig {
        clusters: 3,
        forward_delay: 1,
        steering: Steering::RoundRobin,
    });
    assert!(cfg.validate().is_err());
}
