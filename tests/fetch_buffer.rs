//! The paper's §7 fetch-buffer extension: "These buffers immediately
//! follow the instruction cache and can hide some (or all) of the
//! I-cache miss penalty."

use fosm::cache::HierarchyConfig;
use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{FetchBufferConfig, Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

const TRACE_LEN: u64 = 100_000;

/// Real L1I over an *ideal* L2, so every I-cache miss is a short
/// (8-cycle) miss a fetch buffer could hide.
fn short_miss_config() -> MachineConfig {
    MachineConfig {
        hierarchy: HierarchyConfig {
            l1i: HierarchyConfig::baseline().l1i,
            l1d: None,
            l2: None,
            next_line_prefetch: 0,
        },
        predictor: fosm::branch::PredictorConfig::Ideal,
        ..MachineConfig::baseline()
    }
}

fn icache_adder(cfg: MachineConfig, trace: &VecTrace) -> (f64, u64) {
    let ideal_cfg = MachineConfig {
        hierarchy: HierarchyConfig::ideal(),
        ..cfg.clone()
    };
    let real = Machine::new(cfg).run(&mut trace.clone());
    let ideal = Machine::new(ideal_cfg).run(&mut trace.clone());
    (
        (real.cycles as i64 - ideal.cycles as i64) as f64 / TRACE_LEN as f64,
        real.icache_short_misses,
    )
}

#[test]
fn fetch_buffer_hides_icache_miss_penalty() {
    // gcc has a large code footprint: plenty of short I-cache misses.
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gcc(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);

    let (without, misses) = icache_adder(short_miss_config(), &trace);
    assert!(misses > 1_000, "need a meaningful sample, got {misses}");

    // A buffer big enough to cover the whole 8-cycle L2 delay at width
    // 4 (needs >= 32 instructions of slack).
    let big = FetchBufferConfig {
        entries: 64,
        bandwidth: 16,
    };
    let (with_big, _) = icache_adder(short_miss_config().with_fetch_buffer(big), &trace);
    assert!(
        with_big < 0.5 * without,
        "a covering buffer should hide most of the penalty: {with_big:.3} vs {without:.3}"
    );

    // A small buffer hides only part of it.
    let small = FetchBufferConfig {
        entries: 8,
        bandwidth: 16,
    };
    let (with_small, _) = icache_adder(short_miss_config().with_fetch_buffer(small), &trace);
    assert!(with_small < without);
    assert!(with_small > with_big);
}

#[test]
fn model_tracks_the_buffered_machine() {
    let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gcc(), 42);
    let trace = VecTrace::record(&mut generator, TRACE_LEN);
    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_name("gcc")
        .collect(&mut trace.clone(), u64::MAX)
        .expect("profile");

    let buffer = FetchBufferConfig {
        entries: 24,
        bandwidth: 16,
    };
    let sim =
        Machine::new(MachineConfig::baseline().with_fetch_buffer(buffer)).run(&mut trace.clone());
    let est = FirstOrderModel::new(params)
        .with_fetch_buffer(buffer.entries)
        .evaluate(&profile)
        .expect("estimate");
    let err = (est.total_cpi() - sim.cpi()).abs() / sim.cpi();
    assert!(
        err < 0.25,
        "model {:.3} vs sim {:.3} ({:.1}% error)",
        est.total_cpi(),
        sim.cpi(),
        err * 100.0
    );

    // The buffered model must predict a lower icache component.
    let plain = FirstOrderModel::new(ProcessorParams::baseline())
        .evaluate(&profile)
        .expect("estimate");
    assert!(est.icache_l1_cpi < plain.icache_l1_cpi);
}

#[test]
fn buffer_validation_rejects_insufficient_bandwidth() {
    let bad = FetchBufferConfig {
        entries: 16,
        bandwidth: 4, // equal to the width: can never accumulate slack
    };
    assert!(MachineConfig::baseline()
        .with_fetch_buffer(bad)
        .validate()
        .is_err());
    let zero = FetchBufferConfig {
        entries: 0,
        bandwidth: 16,
    };
    assert!(MachineConfig::baseline()
        .with_fetch_buffer(zero)
        .validate()
        .is_err());
    assert!(MachineConfig::baseline()
        .with_fetch_buffer(FetchBufferConfig::baseline())
        .validate()
        .is_ok());
}
