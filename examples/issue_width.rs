//! Issue-width what-if: how good would branch prediction have to be to
//! justify a wider machine on *your* workload?
//!
//! The paper's §6.2 study uses the generic square-root IW
//! characteristic; this example runs the same analysis with the
//! characteristic measured from a workload, then checks whether the
//! workload's *actual* branch prediction quality clears the bar.
//!
//! ```text
//! cargo run --release --example issue_width
//! ```

use fosm::model::ProcessorParams;
use fosm::profile::ProfileCollector;
use fosm::trends::issue_width::IssueWidthStudy;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ProcessorParams::baseline();
    println!(
        "{:<8} {:>10} {:>12} {:>12} {:>12}",
        "bench", "actual", "need @w4", "need @w8", "verdict @8"
    );
    println!(
        "{:<8} {:>10} {:>12} {:>12}",
        "", "insts/misp", "(30% peak)", "(30% peak)"
    );
    for spec in [
        BenchmarkSpec::vortex(),
        BenchmarkSpec::gzip(),
        BenchmarkSpec::mcf(),
        BenchmarkSpec::vpr(),
    ] {
        let mut generator = WorkloadGenerator::new(&spec, 17);
        let profile = ProfileCollector::new(&params)
            .with_name(&spec.name)
            .collect(&mut generator, 150_000)?;

        let actual = profile.instructions as f64 / profile.mispredicts.max(1) as f64;
        let study = IssueWidthStudy::paper(profile.iw);
        let (need4, need8) = match (
            study.distance_for_fraction(4, 0.3),
            study.distance_for_fraction(8, 0.3),
        ) {
            (Ok(a), Ok(b)) => (a, b),
            _ => {
                println!(
                    "{:<8} {:>10.0} {:>12} {:>12}  (ILP too low to saturate)",
                    spec.name, actual, "-", "-"
                );
                continue;
            }
        };
        let verdict = if actual >= need8 {
            "worth it"
        } else if actual >= need4 {
            "stay at 4"
        } else {
            "fix BP first"
        };
        println!(
            "{:<8} {:>10.0} {:>12.0} {:>12.0} {:>12}",
            spec.name, actual, need4, need8, verdict
        );
    }
    println!("\n(the required distance roughly quadruples per width doubling — the");
    println!(" paper's conclusion that prediction must improve as the width squared)");
    Ok(())
}
