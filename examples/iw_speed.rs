//! Quick old-vs-new IW-kernel timing check (see also `cargo bench`).

use fosm_depgraph::iw;
use fosm_isa::LatencyTable;
use fosm_trace::TraceSource;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
use std::time::Instant;

fn main() {
    let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
    let insts: Vec<_> = (0..300_000).map(|_| gen.next_inst().unwrap()).collect();
    let lat = LatencyTable::unit();

    for w in iw::DEFAULT_WINDOW_SIZES {
        let t0 = Instant::now();
        let f = iw::ipc_at_window(&insts, w, &lat);
        let tf = t0.elapsed();
        let t0 = Instant::now();
        let s = iw::reference::ipc_at_window(&insts, w, &lat);
        let ts = t0.elapsed();
        assert_eq!(f.to_bits(), s.to_bits());
        println!(
            "w={w:>3}  new {tf:>12?}  ref {ts:>12?}  ({:.1}x)",
            ts.as_secs_f64() / tf.as_secs_f64()
        );
    }

    let t0 = Instant::now();
    let fast = iw::characteristic(&insts, &iw::DEFAULT_WINDOW_SIZES, &lat);
    let t_fast = t0.elapsed();

    let t0 = Instant::now();
    let slow: Vec<f64> = iw::DEFAULT_WINDOW_SIZES
        .iter()
        .map(|&w| iw::reference::ipc_at_window(&insts, w, &lat))
        .collect();
    let t_slow = t0.elapsed();

    for (p, s) in fast.iter().zip(&slow) {
        assert_eq!(p.ipc.to_bits(), s.to_bits(), "w={} mismatch", p.window);
    }
    println!(
        "characteristic: new {t_fast:?}  reference: {t_slow:?}  speedup: {:.1}x",
        t_slow.as_secs_f64() / t_fast.as_secs_f64()
    );
}
