//! Design-space exploration: the analytical model's speed advantage.
//!
//! The whole point of an analytical model is that a design-space sweep
//! costs microseconds per point instead of a simulation run. This
//! example profiles one workload *once*, then evaluates the model over
//! a grid of (width × window × pipeline depth) configurations, spot-
//! checking a few points against the detailed simulator.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use std::time::Instant;

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = BenchmarkSpec::crafty();
    let mut generator = WorkloadGenerator::new(&spec, 7);
    let trace = VecTrace::record(&mut generator, 200_000);

    // One functional profile serves the whole sweep: only structural
    // parameters change, and those enter the model analytically.
    // (Cache-geometry changes would need re-profiling.)
    let base = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&base)
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)?;

    let widths = [2u32, 4, 6, 8];
    let windows = [16u32, 32, 48, 64, 96, 128];
    let depths = [5u32, 9, 14, 20];

    let started = Instant::now();
    let mut best: Option<(f64, ProcessorParams)> = None;
    let mut evaluated = 0u32;
    println!(
        "sweeping {} configurations of `{}`...",
        widths.len() * windows.len() * depths.len(),
        spec.name
    );
    for &width in &widths {
        for &win in &windows {
            for &depth in &depths {
                let mut params = base.clone();
                params.width = width;
                params.win_size = win;
                params.rob_size = params.rob_size.max(win);
                params.pipe_depth = depth;
                let est = FirstOrderModel::new(params.clone()).evaluate(&profile)?;
                evaluated += 1;
                let ipc = est.total_ipc();
                if best.as_ref().is_none_or(|(b, _)| ipc > *b) {
                    best = Some((ipc, params));
                }
            }
        }
    }
    let elapsed = started.elapsed();
    let (best_ipc, best_params) = best.expect("non-empty sweep");
    println!(
        "evaluated {evaluated} configs in {:.1} ms ({:.0} µs/config)",
        elapsed.as_secs_f64() * 1e3,
        elapsed.as_secs_f64() * 1e6 / evaluated as f64
    );
    println!(
        "best IPC {best_ipc:.2}: width {}, window {}, depth {}",
        best_params.width, best_params.win_size, best_params.pipe_depth
    );

    // Spot-check the best point against the detailed simulator.
    let mut cfg = MachineConfig::baseline();
    cfg.width = best_params.width;
    cfg.win_size = best_params.win_size;
    cfg.rob_size = best_params.rob_size;
    cfg.pipe_depth = best_params.pipe_depth;
    let sim_started = Instant::now();
    let report = Machine::new(cfg).run(&mut trace.clone());
    println!(
        "detailed simulation of that point: IPC {:.2} (took {:.0} ms — vs µs for the model)",
        report.ipc(),
        sim_started.elapsed().as_secs_f64() * 1e3
    );
    Ok(())
}
