//! Quickstart: estimate a workload's CPI with the first-order model and
//! check it against the detailed simulator.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::sim::{Machine, MachineConfig};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic gzip-like workload (deterministic in the seed).
    let spec = BenchmarkSpec::gzip();
    let mut generator = WorkloadGenerator::new(&spec, 42);
    let trace = VecTrace::record(&mut generator, 200_000);

    // 2. Functional-level profiling: caches, branch predictor, and the
    //    idealized IW analysis. No cycle-level simulation involved.
    let params = ProcessorParams::baseline();
    let profile = ProfileCollector::new(&params)
        .with_name(&spec.name)
        .collect(&mut trace.clone(), u64::MAX)?;

    println!(
        "profile of `{}` over {} instructions:",
        profile.name, profile.instructions
    );
    println!(
        "  IW characteristic: I = {:.2}·W^{:.2}, average latency L = {:.2}",
        profile.iw.law().alpha(),
        profile.iw.law().beta(),
        profile.iw.avg_latency()
    );
    println!(
        "  mispredicts: {} ({:.1}% of {} branches)",
        profile.mispredicts,
        profile.mispredict_rate() * 100.0,
        profile.cond_branches
    );
    println!(
        "  long D-misses: {} (overlap factor {:.2}); I-cache misses: {}",
        profile.dcache_long_misses(),
        profile.long_miss_distribution.overlap_factor(),
        profile.icache_short_misses + profile.icache_long_misses
    );

    // 3. The first-order model (eq. 1): steady state + miss-event adders.
    let estimate = FirstOrderModel::new(params).evaluate(&profile)?;
    println!("\nfirst-order model estimate:");
    for (component, cpi) in estimate.cpi_stack() {
        println!("  {component:<10} {cpi:>6.3} CPI");
    }
    println!(
        "  {:<10} {:>6.3} CPI  ({:.2} IPC)",
        "total",
        estimate.total_cpi(),
        estimate.total_ipc()
    );

    // 4. Ground truth: the detailed cycle-level simulator.
    let report = Machine::new(MachineConfig::baseline()).run(&mut trace.clone());
    println!(
        "\ndetailed simulation: {:.3} CPI  ({:.2} IPC)",
        report.cpi(),
        report.ipc()
    );
    println!(
        "model error: {:+.1}%",
        100.0 * (estimate.total_cpi() - report.cpi()) / report.cpi()
    );
    Ok(())
}
