//! Working with trace files: record a workload to the compact binary
//! format, stream it back for profiling (optionally sampled with
//! warm-up), and compare against the statistical-simulation baseline.
//!
//! ```text
//! cargo run --release --example trace_files
//! ```

use std::io::Cursor;

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::{ProfileCollector, SamplingPlan};
use fosm::statsim::{CollectorConfig, StatMachine, StatProfile, SynthesizedTrace};
use fosm::trace::io::{read_trace, write_trace, TraceFileReader};
use fosm::trace::VecTrace;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Record a workload into the binary trace format (in memory
    //    here; the `fosm` CLI does the same to files on disk).
    let spec = BenchmarkSpec::twolf();
    let mut generator = WorkloadGenerator::new(&spec, 42);
    let trace = VecTrace::record(&mut generator, 200_000);
    let mut bytes = Vec::new();
    write_trace(&mut bytes, trace.insts())?;
    println!(
        "recorded {} instructions of `{}` into {} bytes ({:.1} B/inst)",
        trace.len(),
        spec.name,
        bytes.len(),
        bytes.len() as f64 / trace.len() as f64
    );

    // 2. Stream it back and profile — full, then sampled with warm-up.
    let params = ProcessorParams::baseline();
    let mut reader = TraceFileReader::new(Cursor::new(&bytes))?;
    let full = ProfileCollector::new(&params)
        .with_name("twolf-full")
        .collect(&mut reader, u64::MAX)?;
    let mut reader = TraceFileReader::new(Cursor::new(&bytes))?;
    let plan = SamplingPlan {
        sample: 10_000,
        warmup: 40_000,
        period: 100_000,
    };
    let sampled = ProfileCollector::new(&params)
        .with_name("twolf-sampled")
        .collect_sampled(&mut reader, plan, 20_000)?;

    let model = FirstOrderModel::new(params);
    let full_est = model.evaluate(&full)?;
    let sampled_est = model.evaluate(&sampled)?;
    println!(
        "model CPI — full profile: {:.3}; sampled profile ({:.0}% touched): {:.3}",
        full_est.total_cpi(),
        plan.touched_ratio() * 100.0,
        sampled_est.total_cpi()
    );

    // 3. The statistical-simulation baseline from the same trace.
    let decoded = read_trace(Cursor::new(&bytes))?;
    let stat_profile = StatProfile::from_trace(decoded.insts(), CollectorConfig::default());
    let stat = StatMachine::baseline().run(&mut SynthesizedTrace::new(&stat_profile, 42), 200_000);
    println!(
        "statistical simulation of the same statistics: {:.3} CPI",
        stat.cpi()
    );
    println!("(all three should agree to first order)");
    Ok(())
}
