//! Pipeline-depth trend study on a *measured* workload.
//!
//! Section 6.1 of the paper runs its depth study on an assumed
//! square-root IW characteristic. This example does the same analysis
//! with the characteristic measured from a synthetic benchmark instead,
//! showing how the optimal front-end depth shifts with the workload's
//! ILP and branch behaviour.
//!
//! ```text
//! cargo run --release --example pipeline_depth
//! ```

use fosm::model::ProcessorParams;
use fosm::profile::ProfileCollector;
use fosm::trends::pipeline::PipelineStudy;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ProcessorParams::baseline();
    println!(
        "{:<8} {:>6} {:>8} {:>12} {:>12}",
        "bench", "beta", "misp/ki", "opt depth", "peak BIPS"
    );
    for spec in [
        BenchmarkSpec::gzip(),
        BenchmarkSpec::vortex(),
        BenchmarkSpec::vpr(),
        BenchmarkSpec::mcf(),
    ] {
        let mut generator = WorkloadGenerator::new(&spec, 11);
        let profile = ProfileCollector::new(&params)
            .with_name(&spec.name)
            .collect(&mut generator, 150_000)?;

        // Feed the measured IW characteristic and misprediction density
        // into the paper's §6.1 study.
        let mut study = PipelineStudy::paper();
        study.iw = profile.iw.clone();
        study.branch_fraction = profile.cond_branches as f64 / profile.instructions as f64;
        study.mispredict_rate = profile.mispredict_rate();

        let depths: Vec<u32> = (1..=100).collect();
        let best = study.optimal_depth(4, depths.iter().copied())?;
        let peak = &study.sweep(4, [best])?[0];
        println!(
            "{:<8} {:>6.2} {:>8.1} {:>12} {:>12.2}",
            spec.name,
            study.iw.law().beta(),
            study.mispredicts_per_inst() * 1000.0,
            best,
            peak.bips
        );
    }
    println!("\n(higher misprediction density or lower ILP pulls the optimum toward");
    println!(" shallower pipelines — the paper's Fig. 17 effect, per workload)");
    Ok(())
}
