//! Building a custom workload: what-if analysis on program properties.
//!
//! The synthetic benchmark specs are fully parameterized, so you can
//! ask questions like "what happens to this machine if the workload's
//! dependence chains double?" or "if its footprint stops fitting in
//! L2?" — this example perturbs a base spec one knob at a time and
//! reports the model's CPI stack for each variant.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use fosm::model::{FirstOrderModel, ProcessorParams};
use fosm::profile::ProfileCollector;
use fosm::workloads::{BenchmarkSpec, WorkloadGenerator};

fn evaluate(
    label: &str,
    spec: &BenchmarkSpec,
    params: &ProcessorParams,
) -> Result<(), Box<dyn std::error::Error>> {
    let mut generator = WorkloadGenerator::try_new(spec, 3)?;
    let profile = ProfileCollector::new(params)
        .with_name(label)
        .collect(&mut generator, 150_000)?;
    let est = FirstOrderModel::new(params.clone()).evaluate(&profile)?;
    println!(
        "{label:<22} {:>6.3} = {:.3} ideal + {:.3} icache + {:.3} dcache + {:.3} branch",
        est.total_cpi(),
        est.steady_state_cpi,
        est.icache_l1_cpi + est.icache_l2_cpi,
        est.dcache_cpi,
        est.branch_cpi,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ProcessorParams::baseline();
    let base = BenchmarkSpec::gap();
    println!("CPI stacks for variants of `gap` (baseline machine):\n");
    evaluate("base", &base, &params)?;

    // Twice as chain-y: every other operand reads the newest producer.
    let mut chained = base.clone();
    chained.name = "chained".into();
    chained.dep_chain_p = (2.0 * base.dep_chain_p).min(0.9);
    chained.no_dep_p = base.no_dep_p / 2.0;
    evaluate("2x dependence chains", &chained, &params)?;

    // Footprint blown past the L2: long misses appear.
    let mut big = base.clone();
    big.name = "big-footprint".into();
    big.data_footprint = 64 << 20;
    big.f_mem_random = 0.15;
    evaluate("64 MiB footprint", &big, &params)?;

    // Hostile branches: every skip is data-dependent and barely biased.
    let mut branchy = base.clone();
    branchy.name = "branchy".into();
    branchy.frac_hard_branches = 0.8;
    branchy.frac_pattern_branches = 0.1;
    branchy.hard_branch_bias = 0.6;
    evaluate("hostile branches", &branchy, &params)?;

    // Huge code: I-cache misses dominate.
    let mut codeheavy = base.clone();
    codeheavy.name = "code-heavy".into();
    codeheavy.num_functions = 256;
    codeheavy.frac_call_blocks = 0.3;
    evaluate("4x code footprint", &codeheavy, &params)?;

    Ok(())
}
