//! Property-based tests for the ISA substrate.

use fosm_isa::{FuClass, FuPool, Inst, LatencyTable, Op, Reg, NUM_OP_CLASSES, NUM_REGS};
use proptest::prelude::*;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop::sample::select(Op::ALL.to_vec())
}

proptest! {
    /// Register constructors agree and reject exactly the out-of-range
    /// numbers.
    #[test]
    fn reg_constructors_agree(n in any::<u8>()) {
        match Reg::try_new(n) {
            Some(r) => {
                prop_assert!((n as usize) < NUM_REGS);
                prop_assert_eq!(r.number(), n);
                prop_assert_eq!(r.index(), n as usize);
            }
            None => prop_assert!((n as usize) >= NUM_REGS),
        }
    }

    /// Every op has exactly one FU class, a non-empty mnemonic, and a
    /// dense index.
    #[test]
    fn op_classification_is_total(op in op_strategy()) {
        prop_assert!(op.index() < NUM_OP_CLASSES);
        prop_assert_eq!(Op::ALL[op.index()], op);
        prop_assert!(!op.mnemonic().is_empty());
        prop_assert!(FuClass::ALL.contains(&op.fu_class()));
        // Branch/mem predicates are mutually exclusive.
        prop_assert!(!(op.is_branch() && op.is_mem()));
        if op.is_cond_branch() {
            prop_assert!(op.is_branch());
        }
    }

    /// Latency tables preserve every entry written and bound the mix
    /// average by min/max latencies.
    #[test]
    fn latency_table_average_is_bounded(
        latencies in prop::collection::vec(1u32..30, NUM_OP_CLASSES),
        mix in prop::collection::vec(0u64..1000, NUM_OP_CLASSES),
    ) {
        let mut table = LatencyTable::unit();
        for (op, &lat) in Op::ALL.iter().zip(&latencies) {
            table = table.with_latency(*op, lat);
        }
        for (op, &lat) in Op::ALL.iter().zip(&latencies) {
            prop_assert_eq!(table.latency(*op), lat);
        }
        let mut mix_arr = [0u64; NUM_OP_CLASSES];
        mix_arr.copy_from_slice(&mix);
        let avg = table.average_over(&mix_arr);
        let lo = *latencies.iter().min().unwrap() as f64;
        let hi = *latencies.iter().max().unwrap() as f64;
        if mix.iter().sum::<u64>() == 0 {
            prop_assert_eq!(avg, 1.0);
        } else {
            prop_assert!(avg >= lo - 1e-9 && avg <= hi + 1e-9);
        }
    }

    /// Constructor-built instructions are always well-formed and
    /// display without panicking.
    #[test]
    fn constructed_instructions_are_well_formed(
        pc in any::<u64>(),
        d in 0u8..64,
        s1 in prop::option::of(0u8..64),
        s2 in prop::option::of(0u8..64),
        addr in any::<u64>(),
        taken in any::<bool>(),
    ) {
        let insts = [
            Inst::alu(pc, Op::IntMul, Reg::new(d), s1.map(Reg::new), s2.map(Reg::new)),
            Inst::load(pc, Reg::new(d), s1.map(Reg::new), addr),
            Inst::store(pc, Reg::new(d), s1.map(Reg::new), addr),
            Inst::branch(pc, Op::CondBranch, s1.map(Reg::new), taken, addr),
            Inst::nop(pc),
        ];
        for inst in &insts {
            prop_assert!(inst.is_well_formed(), "{inst}");
            prop_assert!(!inst.to_string().is_empty());
            prop_assert!(inst.sources().count() <= 2);
        }
    }

    /// FU pools count exactly what they were built with.
    #[test]
    fn fu_pool_counts(a in 1u32..16, b in 1u32..16, c in 1u32..16, d in 1u32..16, e in 1u32..16) {
        let pool = FuPool {
            int_alu: a,
            int_mul_div: b,
            fp_add: c,
            fp_mul_div: d,
            mem_ports: e,
        };
        pool.validate().unwrap();
        prop_assert_eq!(pool.count(FuClass::IntAlu), a);
        prop_assert_eq!(pool.count(FuClass::IntMulDiv), b);
        prop_assert_eq!(pool.count(FuClass::FpAdd), c);
        prop_assert_eq!(pool.count(FuClass::FpMulDiv), d);
        prop_assert_eq!(pool.count(FuClass::Mem), e);
    }
}
