//! Dynamic instruction records.

use serde::{Deserialize, Serialize};

use crate::{Op, Reg};

/// Control-flow outcome attached to a branch instruction in a trace.
///
/// Traces record the *resolved* direction and target; predictors guess
/// and are scored against this ground truth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BranchInfo {
    /// Whether the branch was taken.
    pub taken: bool,
    /// The address control transferred to (fall-through PC when not taken).
    pub target: u64,
}

/// One dynamic instruction as it appears in a trace.
///
/// An `Inst` carries exactly the information the first-order model's
/// input analyses need: the PC (instruction-cache simulation and branch
/// predictor indexing), register names (data-dependence analysis), the
/// effective address for loads/stores (data-cache simulation), and the
/// resolved branch outcome (predictor scoring).
///
/// Construct instructions with the shape-specific constructors
/// ([`Inst::alu`], [`Inst::load`], [`Inst::store`], [`Inst::branch`])
/// which enforce that, e.g., only memory operations carry an effective
/// address.
///
/// # Examples
///
/// ```
/// use fosm_isa::{Inst, Op, Reg};
///
/// let ld = Inst::load(0x4000, Reg::new(7), Some(Reg::new(2)), 0xdead_beef);
/// assert_eq!(ld.op, Op::Load);
/// assert_eq!(ld.mem_addr, Some(0xdead_beef));
/// assert_eq!(ld.sources().count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Inst {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Operation class.
    pub op: Op,
    /// Destination register, if the instruction writes one.
    pub dest: Option<Reg>,
    /// Up to two source registers.
    pub srcs: [Option<Reg>; 2],
    /// Effective address, present iff `op.is_mem()`.
    pub mem_addr: Option<u64>,
    /// Resolved control-flow outcome, present iff `op.is_branch()`.
    pub branch: Option<BranchInfo>,
}

impl Inst {
    /// Creates an arithmetic (non-memory, non-branch) instruction.
    ///
    /// # Panics
    ///
    /// Panics if `op` is a memory or branch class.
    pub fn alu(pc: u64, op: Op, dest: Reg, src1: Option<Reg>, src2: Option<Reg>) -> Self {
        assert!(
            !op.is_mem() && !op.is_branch(),
            "Inst::alu used with non-arithmetic op {op:?}"
        );
        Inst {
            pc,
            op,
            dest: Some(dest),
            srcs: [src1, src2],
            mem_addr: None,
            branch: None,
        }
    }

    /// Creates a no-op.
    pub fn nop(pc: u64) -> Self {
        Inst {
            pc,
            op: Op::Nop,
            dest: None,
            srcs: [None, None],
            mem_addr: None,
            branch: None,
        }
    }

    /// Creates a load of `addr` into `dest`, with optional address-base source.
    pub fn load(pc: u64, dest: Reg, base: Option<Reg>, addr: u64) -> Self {
        Inst {
            pc,
            op: Op::Load,
            dest: Some(dest),
            srcs: [base, None],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a store of register `value` to `addr`, with optional address-base source.
    pub fn store(pc: u64, value: Reg, base: Option<Reg>, addr: u64) -> Self {
        Inst {
            pc,
            op: Op::Store,
            dest: None,
            srcs: [Some(value), base],
            mem_addr: Some(addr),
            branch: None,
        }
    }

    /// Creates a control-transfer instruction with its resolved outcome.
    ///
    /// `cond_src` is the register the branch condition depends on (only
    /// meaningful for [`Op::CondBranch`] and [`Op::Return`]).
    ///
    /// # Panics
    ///
    /// Panics if `op` is not a branch class.
    pub fn branch(pc: u64, op: Op, cond_src: Option<Reg>, taken: bool, target: u64) -> Self {
        assert!(
            op.is_branch(),
            "Inst::branch used with non-branch op {op:?}"
        );
        Inst {
            pc,
            op,
            dest: None,
            srcs: [cond_src, None],
            mem_addr: None,
            branch: Some(BranchInfo { taken, target }),
        }
    }

    /// Iterates over the source registers that are present.
    pub fn sources(&self) -> impl Iterator<Item = Reg> + '_ {
        self.srcs.iter().flatten().copied()
    }

    /// Returns `true` if this instruction is any control transfer.
    #[inline]
    pub fn is_branch(&self) -> bool {
        self.op.is_branch()
    }

    /// Returns `true` if this instruction reads or writes memory.
    #[inline]
    pub fn is_mem(&self) -> bool {
        self.op.is_mem()
    }

    /// Checks the structural invariants the constructors enforce.
    ///
    /// Useful for validating instructions deserialized from external
    /// trace files. Returns `true` when the record is well-formed:
    /// memory operations (and only they) carry an address, branches (and
    /// only they) carry an outcome, stores and branches have no
    /// destination.
    pub fn is_well_formed(&self) -> bool {
        self.mem_addr.is_some() == self.op.is_mem()
            && self.branch.is_some() == self.op.is_branch()
            && !(self.op == Op::Store && self.dest.is_some())
            && !(self.op.is_branch() && self.dest.is_some())
    }
}

impl std::fmt::Display for Inst {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:#x}: {}", self.pc, self.op)?;
        if let Some(d) = self.dest {
            write!(f, " {d}")?;
        }
        for s in self.sources() {
            write!(f, " {s}")?;
        }
        if let Some(a) = self.mem_addr {
            write!(f, " [{a:#x}]")?;
        }
        if let Some(b) = self.branch {
            write!(
                f,
                " -> {:#x} ({})",
                b.target,
                if b.taken { "T" } else { "N" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_build_well_formed_instructions() {
        let insts = [
            Inst::alu(0, Op::IntAlu, Reg::new(1), Some(Reg::new(2)), None),
            Inst::alu(
                4,
                Op::FpMul,
                Reg::new(3),
                Some(Reg::new(4)),
                Some(Reg::new(5)),
            ),
            Inst::nop(8),
            Inst::load(12, Reg::new(6), Some(Reg::new(7)), 0x100),
            Inst::store(16, Reg::new(8), None, 0x200),
            Inst::branch(20, Op::CondBranch, Some(Reg::new(9)), true, 0x40),
            Inst::branch(24, Op::Jump, None, true, 0x80),
            Inst::branch(28, Op::Return, Some(Reg::new(31)), true, 0x1234),
        ];
        for i in &insts {
            assert!(i.is_well_formed(), "{i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-arithmetic")]
    fn alu_rejects_memory_ops() {
        let _ = Inst::alu(0, Op::Load, Reg::new(1), None, None);
    }

    #[test]
    #[should_panic(expected = "non-branch")]
    fn branch_rejects_arithmetic_ops() {
        let _ = Inst::branch(0, Op::IntAlu, None, false, 0);
    }

    #[test]
    fn sources_skips_missing_slots() {
        let i = Inst::alu(0, Op::IntAlu, Reg::new(1), None, Some(Reg::new(2)));
        assert_eq!(i.sources().collect::<Vec<_>>(), vec![Reg::new(2)]);
        let st = Inst::store(4, Reg::new(3), Some(Reg::new(4)), 0x8);
        assert_eq!(st.sources().count(), 2);
    }

    #[test]
    fn well_formedness_detects_corrupt_records() {
        let mut i = Inst::alu(0, Op::IntAlu, Reg::new(1), None, None);
        i.mem_addr = Some(0x4); // an ALU op must not carry an address
        assert!(!i.is_well_formed());

        let mut b = Inst::branch(0, Op::Jump, None, true, 0x10);
        b.branch = None; // a branch must carry its outcome
        assert!(!b.is_well_formed());

        let mut s = Inst::store(0, Reg::new(1), None, 0x20);
        s.dest = Some(Reg::new(2)); // stores write no register
        assert!(!s.is_well_formed());
    }

    #[test]
    fn display_is_nonempty_and_mentions_op() {
        let i = Inst::load(0x40, Reg::new(1), None, 0x99);
        let s = i.to_string();
        assert!(s.contains("ld"));
        assert!(s.contains("0x40"));
    }
}
