//! Functional-unit classes and pool configuration (paper §7, feature 1).
//!
//! The first-order model assumes unbounded functional units; the paper
//! lists limited FU counts as the first planned extension: "the mix can
//! be used to determine the number of units required … or, if the
//! number of units is too small, we can generate a lower saturation
//! level than the maximum issue width."

use serde::{Deserialize, Serialize};

use crate::Op;

/// The functional-unit class an operation executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FuClass {
    /// Integer ALUs (also execute branches and nops).
    IntAlu,
    /// Integer multiply/divide units.
    IntMulDiv,
    /// Floating-point adders.
    FpAdd,
    /// Floating-point multiply/divide units.
    FpMulDiv,
    /// Load/store (memory) ports.
    Mem,
}

impl FuClass {
    /// All classes, in [`FuClass::index`] order.
    pub const ALL: [FuClass; 5] = [
        FuClass::IntAlu,
        FuClass::IntMulDiv,
        FuClass::FpAdd,
        FuClass::FpMulDiv,
        FuClass::Mem,
    ];

    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            FuClass::IntAlu => "int-alu",
            FuClass::IntMulDiv => "int-mul",
            FuClass::FpAdd => "fp-add",
            FuClass::FpMulDiv => "fp-mul",
            FuClass::Mem => "mem",
        }
    }
}

impl Op {
    /// The functional-unit class this operation issues to.
    pub fn fu_class(self) -> FuClass {
        match self {
            Op::IntAlu | Op::CondBranch | Op::Jump | Op::Call | Op::Return | Op::Nop => {
                FuClass::IntAlu
            }
            Op::IntMul | Op::IntDiv => FuClass::IntMulDiv,
            Op::FpAdd => FuClass::FpAdd,
            Op::FpMul | Op::FpDiv => FuClass::FpMulDiv,
            Op::Load | Op::Store => FuClass::Mem,
        }
    }
}

/// Number of (fully pipelined) functional units of each class.
///
/// # Examples
///
/// ```
/// use fosm_isa::{FuClass, FuPool};
///
/// let pool = FuPool::alpha_like();
/// assert_eq!(pool.count(FuClass::Mem), 2);
/// pool.validate().unwrap();
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FuPool {
    /// Integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul_div: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multiply/divide units.
    pub fp_mul_div: u32,
    /// Load/store ports.
    pub mem_ports: u32,
}

impl FuPool {
    /// A classic 4-wide machine's pool: 4 integer ALUs, 1 integer
    /// multiplier, 1 FP adder, 1 FP multiplier, 2 memory ports.
    pub fn alpha_like() -> Self {
        FuPool {
            int_alu: 4,
            int_mul_div: 1,
            fp_add: 1,
            fp_mul_div: 1,
            mem_ports: 2,
        }
    }

    /// Units available for `class`.
    pub fn count(&self, class: FuClass) -> u32 {
        match class {
            FuClass::IntAlu => self.int_alu,
            FuClass::IntMulDiv => self.int_mul_div,
            FuClass::FpAdd => self.fp_add,
            FuClass::FpMulDiv => self.fp_mul_div,
            FuClass::Mem => self.mem_ports,
        }
    }

    /// Validates that every class has at least one unit.
    ///
    /// # Errors
    ///
    /// Returns the offending class label.
    pub fn validate(&self) -> Result<(), String> {
        for class in FuClass::ALL {
            if self.count(class) == 0 {
                return Err(format!(
                    "functional-unit class {} has no units",
                    class.label()
                ));
            }
        }
        Ok(())
    }
}

impl Default for FuPool {
    fn default() -> Self {
        FuPool::alpha_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_op_has_a_class() {
        for op in Op::ALL {
            let class = op.fu_class();
            assert!(FuClass::ALL.contains(&class), "{op:?}");
        }
        assert_eq!(Op::Load.fu_class(), FuClass::Mem);
        assert_eq!(Op::CondBranch.fu_class(), FuClass::IntAlu);
        assert_eq!(Op::FpDiv.fu_class(), FuClass::FpMulDiv);
        assert_eq!(Op::IntDiv.fu_class(), FuClass::IntMulDiv);
    }

    #[test]
    fn class_indices_are_dense() {
        for (i, class) in FuClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i);
            assert!(!class.label().is_empty());
        }
    }

    #[test]
    fn pool_counts_and_validation() {
        let pool = FuPool::alpha_like();
        assert_eq!(pool.count(FuClass::IntAlu), 4);
        assert!(pool.validate().is_ok());
        let mut broken = pool;
        broken.mem_ports = 0;
        assert!(broken.validate().unwrap_err().contains("mem"));
    }
}
