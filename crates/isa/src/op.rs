//! Operation classes.

use serde::{Deserialize, Serialize};

/// The operation class of a dynamic instruction.
///
/// Operation classes are the granularity at which the first-order model
/// reasons about instructions: each class has a functional-unit latency
/// (see [`LatencyTable`](crate::LatencyTable)), and a few classes get
/// special treatment (loads and stores access the data cache, branches
/// consult the predictor).
///
/// # Examples
///
/// ```
/// use fosm_isa::Op;
///
/// assert!(Op::Load.is_mem());
/// assert!(Op::CondBranch.is_branch());
/// assert!(!Op::IntAlu.is_mem());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Op {
    /// Integer ALU operation (add, sub, logic, shift, compare).
    IntAlu,
    /// Integer multiply.
    IntMul,
    /// Integer divide.
    IntDiv,
    /// Floating-point add/sub/convert/compare.
    FpAdd,
    /// Floating-point multiply.
    FpMul,
    /// Floating-point divide / square root.
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    CondBranch,
    /// Unconditional direct jump.
    Jump,
    /// Function call (unconditional, pushes a return address).
    Call,
    /// Function return (indirect, predicted via return-address logic).
    Return,
    /// No-operation (pipeline filler; still occupies slots).
    Nop,
}

/// Number of distinct [`Op`] variants.
pub const NUM_OPS: usize = 13;

impl Op {
    /// All operation classes, in declaration order.
    ///
    /// The order matches [`Op::index`], so `Op::ALL[op.index()] == op`.
    pub const ALL: [Op; NUM_OPS] = [
        Op::IntAlu,
        Op::IntMul,
        Op::IntDiv,
        Op::FpAdd,
        Op::FpMul,
        Op::FpDiv,
        Op::Load,
        Op::Store,
        Op::CondBranch,
        Op::Jump,
        Op::Call,
        Op::Return,
        Op::Nop,
    ];

    /// Dense index of this class, suitable for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Returns `true` for loads and stores.
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Op::Load | Op::Store)
    }

    /// Returns `true` for every control-transfer class
    /// (conditional branches, jumps, calls, and returns).
    #[inline]
    pub fn is_branch(self) -> bool {
        matches!(self, Op::CondBranch | Op::Jump | Op::Call | Op::Return)
    }

    /// Returns `true` only for conditional branches, the class whose
    /// direction the predictor must guess.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Op::CondBranch)
    }

    /// Short mnemonic used in trace dumps.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Op::IntAlu => "alu",
            Op::IntMul => "mul",
            Op::IntDiv => "div",
            Op::FpAdd => "fadd",
            Op::FpMul => "fmul",
            Op::FpDiv => "fdiv",
            Op::Load => "ld",
            Op::Store => "st",
            Op::CondBranch => "br",
            Op::Jump => "jmp",
            Op::Call => "call",
            Op::Return => "ret",
            Op::Nop => "nop",
        }
    }
}

impl std::fmt::Display for Op {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_covers_every_variant_in_index_order() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "{op:?} out of order");
        }
        assert_eq!(Op::ALL.len(), NUM_OPS);
    }

    #[test]
    fn class_predicates() {
        assert!(Op::Load.is_mem());
        assert!(Op::Store.is_mem());
        for op in [Op::IntAlu, Op::CondBranch, Op::Nop, Op::FpMul] {
            assert!(!op.is_mem(), "{op:?}");
        }
        for op in [Op::CondBranch, Op::Jump, Op::Call, Op::Return] {
            assert!(op.is_branch(), "{op:?}");
        }
        assert!(Op::CondBranch.is_cond_branch());
        assert!(!Op::Jump.is_cond_branch());
        assert!(!Op::Load.is_branch());
    }

    #[test]
    fn display_matches_mnemonic() {
        for op in Op::ALL {
            assert_eq!(op.to_string(), op.mnemonic());
            assert!(!op.mnemonic().is_empty());
        }
    }
}
