//! RISC-like instruction-set substrate for the first-order superscalar model.
//!
//! The model of Karkhanis & Smith (ISCA 2004) is driven by instruction
//! traces. This crate defines the minimal, implementation-independent
//! vocabulary those traces are written in:
//!
//! * [`Op`] — the operation class of an instruction (integer/floating
//!   arithmetic, loads, stores, branches),
//! * [`Reg`] — an architectural register name,
//! * [`Inst`] — one dynamic instruction as it appears in a trace,
//! * [`LatencyTable`] — per-operation functional-unit latencies.
//!
//! The ISA is deliberately generic (it resembles the Alpha/PISA-class
//! machines the paper's SimpleScalar traces came from) and carries just
//! enough information for the downstream consumers: register data
//! dependences, memory addresses for cache simulation, and branch
//! outcomes for predictor simulation.
//!
//! # Examples
//!
//! ```
//! use fosm_isa::{Inst, LatencyTable, Op, Reg};
//!
//! let add = Inst::alu(0x1000, Op::IntAlu, Reg::new(3), Some(Reg::new(1)), Some(Reg::new(2)));
//! assert!(!add.is_branch());
//! assert_eq!(LatencyTable::default().latency(add.op), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod fu;
mod inst;
mod latency;
mod op;
mod reg;

pub use fu::{FuClass, FuPool};
pub use inst::{BranchInfo, Inst};
pub use latency::LatencyTable;
pub use op::{Op, NUM_OPS as NUM_OP_CLASSES};
pub use reg::{Reg, NUM_REGS};
