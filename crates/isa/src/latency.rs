//! Functional-unit latency tables.

use serde::{Deserialize, Serialize};

use crate::op::{Op, NUM_OPS};

/// Per-operation functional-unit execution latencies, in cycles.
///
/// The first-order model assumes an unbounded number of fully pipelined
/// functional units of each type; the only per-unit property that
/// matters is latency. The default table uses classic Alpha-class
/// values; short data-cache misses are *not* part of this table — the
/// paper folds them into the average latency separately (they behave
/// like "long-latency functional units").
///
/// # Examples
///
/// ```
/// use fosm_isa::{LatencyTable, Op};
///
/// let lat = LatencyTable::default();
/// assert_eq!(lat.latency(Op::IntAlu), 1);
/// assert!(lat.latency(Op::IntDiv) > lat.latency(Op::IntMul));
///
/// let unit = LatencyTable::unit();
/// assert_eq!(unit.latency(Op::FpDiv), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTable {
    cycles: [u32; NUM_OPS],
}

impl LatencyTable {
    /// Builds a table where every operation takes exactly one cycle.
    ///
    /// This is the configuration used when extracting the
    /// implementation-independent IW characteristic (paper §3).
    pub fn unit() -> Self {
        LatencyTable {
            cycles: [1; NUM_OPS],
        }
    }

    /// The execution latency of `op`, in cycles (always ≥ 1).
    #[inline]
    pub fn latency(&self, op: Op) -> u32 {
        self.cycles[op.index()]
    }

    /// Returns a copy of the table with `op`'s latency replaced.
    ///
    /// # Panics
    ///
    /// Panics if `cycles` is zero: a zero-latency unit would let an
    /// instruction issue in the same cycle as its producer, which the
    /// issue model does not represent.
    pub fn with_latency(mut self, op: Op, cycles: u32) -> Self {
        assert!(cycles >= 1, "functional-unit latency must be >= 1 cycle");
        self.cycles[op.index()] = cycles;
        self
    }

    /// Mean latency over the given dynamic operation mix.
    ///
    /// `mix` gives dynamic occurrence counts per op class (in
    /// [`Op::ALL`] index order). This is the `L` of the paper's
    /// Little's-Law adjustment `I_L = I_1 / L` before accounting for
    /// short data-cache misses. Returns 1.0 for an empty mix.
    pub fn average_over(&self, mix: &[u64; NUM_OPS]) -> f64 {
        let total: u64 = mix.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let weighted: f64 = mix
            .iter()
            .zip(self.cycles.iter())
            .map(|(&n, &c)| n as f64 * c as f64)
            .sum();
        weighted / total as f64
    }
}

impl Default for LatencyTable {
    /// Alpha-class default latencies: single-cycle integer ALU and
    /// control, 3-cycle integer multiply, 20-cycle integer divide,
    /// 2/4/12-cycle FP add/multiply/divide, and a 2-cycle L1-hit
    /// load-use latency (misses are modeled in the cache hierarchy,
    /// not here).
    fn default() -> Self {
        LatencyTable::unit()
            .with_latency(Op::Load, 2)
            .with_latency(Op::IntMul, 3)
            .with_latency(Op::IntDiv, 20)
            .with_latency(Op::FpAdd, 2)
            .with_latency(Op::FpMul, 4)
            .with_latency(Op::FpDiv, 12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_table_is_all_ones() {
        let t = LatencyTable::unit();
        for op in Op::ALL {
            assert_eq!(t.latency(op), 1);
        }
    }

    #[test]
    fn default_has_long_latency_arithmetic() {
        let t = LatencyTable::default();
        assert_eq!(t.latency(Op::IntAlu), 1);
        assert_eq!(t.latency(Op::Load), 2);
        assert_eq!(t.latency(Op::IntMul), 3);
        assert_eq!(t.latency(Op::IntDiv), 20);
        assert_eq!(t.latency(Op::FpMul), 4);
    }

    #[test]
    fn with_latency_replaces_one_entry() {
        let t = LatencyTable::unit().with_latency(Op::Load, 2);
        assert_eq!(t.latency(Op::Load), 2);
        assert_eq!(t.latency(Op::Store), 1);
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn zero_latency_rejected() {
        let _ = LatencyTable::unit().with_latency(Op::IntAlu, 0);
    }

    #[test]
    fn average_over_weights_by_counts() {
        let t = LatencyTable::unit().with_latency(Op::IntMul, 3);
        let mut mix = [0u64; super::NUM_OPS];
        mix[Op::IntAlu.index()] = 3;
        mix[Op::IntMul.index()] = 1;
        // (3*1 + 1*3) / 4 = 1.5
        assert!((t.average_over(&mix) - 1.5).abs() < 1e-12);
    }

    #[test]
    fn average_over_empty_mix_is_one() {
        let mix = [0u64; super::NUM_OPS];
        assert_eq!(LatencyTable::default().average_over(&mix), 1.0);
    }
}
