//! Architectural register names.

use serde::{Deserialize, Serialize};

/// Number of architectural registers in the substrate ISA.
///
/// 64 names cover a combined integer + floating-point file, matching the
/// Alpha-class machines the original paper's traces were drawn from.
pub const NUM_REGS: usize = 64;

/// An architectural register name.
///
/// `Reg` is a validated newtype over a register number in
/// `0..`[`NUM_REGS`]. The register file is flat: integer and
/// floating-point instructions draw from the same name space, which is
/// all the dependence analysis needs.
///
/// # Examples
///
/// ```
/// use fosm_isa::Reg;
///
/// let r = Reg::new(5);
/// assert_eq!(r.number(), 5);
/// assert_eq!(r.to_string(), "r5");
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct Reg(u8);

impl Reg {
    /// Creates a register name.
    ///
    /// # Panics
    ///
    /// Panics if `n >= NUM_REGS`.
    #[inline]
    pub fn new(n: u8) -> Self {
        assert!(
            (n as usize) < NUM_REGS,
            "register number {n} out of range (0..{NUM_REGS})"
        );
        Reg(n)
    }

    /// Creates a register name, returning `None` if out of range.
    #[inline]
    pub fn try_new(n: u8) -> Option<Self> {
        ((n as usize) < NUM_REGS).then_some(Reg(n))
    }

    /// The register number, in `0..NUM_REGS`.
    #[inline]
    pub fn number(self) -> u8 {
        self.0
    }

    /// Dense index, suitable for register-file array lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for Reg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_full_range() {
        for n in 0..NUM_REGS as u8 {
            assert_eq!(Reg::new(n).number(), n);
            assert_eq!(Reg::new(n).index(), n as usize);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(NUM_REGS as u8);
    }

    #[test]
    fn try_new_mirrors_new() {
        assert_eq!(Reg::try_new(0), Some(Reg::new(0)));
        assert_eq!(Reg::try_new(63), Some(Reg::new(63)));
        assert_eq!(Reg::try_new(64), None);
        assert_eq!(Reg::try_new(255), None);
    }

    #[test]
    fn display_format() {
        assert_eq!(Reg::new(0).to_string(), "r0");
        assert_eq!(Reg::new(63).to_string(), "r63");
    }
}
