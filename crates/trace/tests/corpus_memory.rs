//! Resident-memory gate for the out-of-core data plane: replaying a
//! corpus 10x longer than the default profiling length
//! (`fosm-bench`'s `DEFAULT_TRACE_LEN` = 300k) must not grow the
//! process high-water mark by more than a few page buffers — i.e. the
//! paged `FileReplay` cursor really is O(page), with no decode-to-Vec
//! anywhere on the path. Decoding this trace into memory would take
//! ~45 MiB packed or ~170 MiB as `Inst` structs; the bound is far
//! below either.
//!
//! Linux-only (reads `/proc/self/status`); kept as the only test in
//! this binary so no sibling test inflates the measured peak.

#![cfg(target_os = "linux")]

use fosm_isa::{Inst, Op, Reg};
use fosm_trace::{CorpusFile, CorpusWriter, TraceSource};

/// 10x the bench harness's `DEFAULT_TRACE_LEN`.
const TRACE_LEN: u64 = 3_000_000;

/// Allowed VmHWM growth across the replay: a handful of page buffers
/// (~1 MiB each for main + side pages) plus allocator slack.
const MAX_GROWTH_KIB: u64 = 16 * 1024;

/// Peak resident set size, in KiB, from `/proc/self/status`.
fn vm_hwm_kib() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("/proc/self/status");
    let line = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .expect("VmHWM line");
    line.split_whitespace()
        .nth(1)
        .expect("VmHWM value")
        .parse()
        .expect("VmHWM parses")
}

/// A deterministic synthetic stream cycling through every instruction
/// shape — no backing storage, so the writer's out-of-core build is
/// exercised too.
struct Synthetic {
    i: u64,
}

impl TraceSource for Synthetic {
    fn next_inst(&mut self) -> Option<Inst> {
        let i = self.i;
        self.i += 1;
        let pc = i * 4;
        let r = |n: u64| Reg::new((n % 48) as u8);
        Some(match i % 5 {
            0 => Inst::alu(pc, Op::IntAlu, r(i), Some(r(i + 1)), Some(r(i + 2))),
            1 => Inst::load(pc, r(i), Some(r(i + 3)), (i * 8) & 0xFFFF),
            2 => Inst::store(pc, r(i), None, (i * 8) & 0xFFFF),
            3 => Inst::branch(pc, Op::CondBranch, Some(r(i)), i.is_multiple_of(3), pc + 64),
            _ => Inst::alu(pc, Op::IntMul, r(i), Some(r(i + 1)), None),
        })
    }
}

#[test]
fn paged_replay_of_a_10x_trace_keeps_memory_flat() {
    let path = std::env::temp_dir().join(format!("fosm-corpus-rss-{}.fct", std::process::id()));

    // Out-of-core build: stream 3M instructions straight to spills.
    let mut writer = CorpusWriter::create(&path).expect("create writer");
    let written = writer
        .append_source(&mut Synthetic { i: 0 }, TRACE_LEN)
        .expect("stream corpus");
    assert_eq!(written, TRACE_LEN);
    let summary = writer.finish().expect("finish corpus");
    assert_eq!(summary.instructions, TRACE_LEN);

    let corpus = CorpusFile::open(&path).expect("open corpus");
    let before = vm_hwm_kib();

    // Drain the paged cursor end to end, consuming every field so the
    // decode cannot be optimized away.
    let mut replay = corpus.replay();
    let mut acc = 0u64;
    let mut count = 0u64;
    while let Some(inst) = replay.next_inst() {
        acc ^= inst.pc ^ inst.mem_addr.unwrap_or(0) ^ inst.branch.map_or(0, |b| b.target);
        count += 1;
    }
    assert!(replay.take_error().is_none());
    assert_eq!(count, TRACE_LEN);
    assert_ne!(acc, 0);

    let after = vm_hwm_kib();
    let growth = after.saturating_sub(before);
    assert!(
        growth <= MAX_GROWTH_KIB,
        "replaying {TRACE_LEN} instructions grew VmHWM by {growth} KiB \
         (bound {MAX_GROWTH_KIB} KiB): the cursor is not O(page)"
    );

    let _ = std::fs::remove_file(&path);
}
