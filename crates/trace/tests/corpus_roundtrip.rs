//! Property-based tests for the `FOSMTRC1` corpus file format:
//! encode→write→paged-`FileReplay` is bit-identical to the in-memory
//! `PackedTrace::replay()` cursor, and any single corrupted byte is
//! detected by the header/section checksums.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use fosm_isa::{Inst, Op, Reg};
use fosm_trace::{write_corpus, CorpusFile, PackedTrace, TraceSource};
use proptest::prelude::*;

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            0u8..48,
            prop::option::of(0u8..48),
            prop::option::of(0u8..48)
        )
            .prop_map(|(d, a, b)| {
                Inst::alu(0, Op::IntAlu, Reg::new(d), a.map(Reg::new), b.map(Reg::new))
            }),
        (0u8..48, prop::option::of(0u8..48), 0u64..1 << 20).prop_map(|(d, b, addr)| Inst::load(
            0,
            Reg::new(d),
            b.map(Reg::new),
            addr
        )),
        (0u8..48, 0u64..1 << 20).prop_map(|(v, addr)| Inst::store(0, Reg::new(v), None, addr)),
        (any::<bool>(), 0u64..1 << 20).prop_map(|(taken, target)| Inst::branch(
            0,
            Op::CondBranch,
            None,
            taken,
            target
        )),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(inst_strategy(), 0..300).prop_map(|mut insts| {
        for (i, inst) in insts.iter_mut().enumerate() {
            inst.pc = i as u64 * 4;
        }
        insts
    })
}

/// A unique scratch path per proptest case (cases run sequentially,
/// but a shrink replays cases out of order — never share file state).
fn scratch() -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "fosm-corpus-prop-{}-{}.fct",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    /// The paged file cursor decodes bit-identically to the in-memory
    /// packed cursor over the same instructions.
    #[test]
    fn file_replay_matches_memory_replay(insts in trace_strategy()) {
        let packed = PackedTrace::from_insts(&insts);
        let path = scratch();
        write_corpus(&path, &packed).expect("write corpus");
        let corpus = CorpusFile::open(&path).expect("open corpus");
        corpus.verify().expect("fresh corpus verifies");
        prop_assert_eq!(corpus.len() as usize, insts.len());
        let mut replay = corpus.replay();
        let decoded: Vec<Inst> = replay.iter().collect();
        prop_assert!(replay.take_error().is_none());
        prop_assert_eq!(decoded, packed.decode());
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping any single byte of the file is detected: either the
    /// header fails validation at open, or a section checksum fails
    /// verify. (Every file byte is covered by exactly one of the two.)
    #[test]
    fn any_byte_corruption_is_detected(
        insts in trace_strategy(),
        pos_seed in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let path = scratch();
        write_corpus(&path, &PackedTrace::from_insts(&insts)).expect("write corpus");
        let mut bytes = std::fs::read(&path).expect("read back");
        let pos = (pos_seed % bytes.len() as u64) as usize;
        bytes[pos] ^= flip;
        std::fs::write(&path, &bytes).expect("tamper");
        let detected = match CorpusFile::open(&path) {
            Err(_) => true,
            Ok(corpus) => corpus.verify().is_err(),
        };
        prop_assert!(detected, "flip {flip:#04x} at byte {pos} went unnoticed");
        let _ = std::fs::remove_file(&path);
    }

    /// The sidecar built from a corpus replays bit-identically too.
    #[test]
    fn sidecar_replay_matches_memory_replay(insts in trace_strategy()) {
        let packed = PackedTrace::from_insts(&insts);
        let path = scratch();
        write_corpus(&path, &packed).expect("write corpus");
        let corpus = CorpusFile::open(&path).expect("open corpus");
        let sidecar = fosm_trace::DecodedTrace::from_corpus(&corpus).expect("sidecar");
        let replayed: Vec<Inst> = sidecar.replay().iter().collect();
        prop_assert_eq!(replayed, packed.decode());
        let blob = sidecar.to_bytes();
        let back = fosm_trace::DecodedTrace::from_bytes(&blob).expect("blob parses");
        prop_assert_eq!(back, sidecar);
        let _ = std::fs::remove_file(&path);
    }
}
