//! Property-based tests for the trace layer.

use fosm_isa::{Inst, Op, Reg};
use fosm_trace::{PackedTrace, TraceSource, TraceStats, VecTrace};
use proptest::prelude::*;

fn inst_strategy() -> impl Strategy<Value = Inst> {
    prop_oneof![
        (
            0u8..48,
            prop::option::of(0u8..48),
            prop::option::of(0u8..48)
        )
            .prop_map(|(d, a, b)| {
                Inst::alu(0, Op::IntAlu, Reg::new(d), a.map(Reg::new), b.map(Reg::new))
            }),
        (0u8..48, prop::option::of(0u8..48), 0u64..1 << 20).prop_map(|(d, b, addr)| Inst::load(
            0,
            Reg::new(d),
            b.map(Reg::new),
            addr
        )),
        (0u8..48, 0u64..1 << 20).prop_map(|(v, addr)| Inst::store(0, Reg::new(v), None, addr)),
        (any::<bool>(), 0u64..1 << 20).prop_map(|(taken, target)| Inst::branch(
            0,
            Op::CondBranch,
            None,
            taken,
            target
        )),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec(inst_strategy(), 0..300).prop_map(|mut insts| {
        for (i, inst) in insts.iter_mut().enumerate() {
            inst.pc = i as u64 * 4;
        }
        insts
    })
}

proptest! {
    /// Replay yields exactly the recorded instructions, in order,
    /// however the stream is chunked with take().
    #[test]
    fn record_and_replay_roundtrip(insts in trace_strategy(), chunk in 1u64..50) {
        let mut origin = VecTrace::new(insts.clone());
        let mut collected = Vec::new();
        loop {
            let before = collected.len();
            collected.extend(origin.take(chunk).iter());
            if collected.len() == before {
                break;
            }
        }
        prop_assert_eq!(collected, insts);
    }

    /// Stats counters partition the instruction stream.
    #[test]
    fn stats_partition_the_stream(insts in trace_strategy()) {
        let n = insts.len() as u64;
        let mut t = VecTrace::new(insts);
        let stats = TraceStats::from_source(&mut t, usize::MAX);
        prop_assert_eq!(stats.instructions(), n);
        let mix_total: u64 = stats.mix().iter().sum();
        prop_assert_eq!(mix_total, n);
        prop_assert!(stats.cond_branches() <= n);
        prop_assert!((0.0..=1.0).contains(&stats.taken_fraction()));
        prop_assert!((0.0..=1.0).contains(&stats.branch_fraction()));
        // At most two operands per instruction.
        prop_assert!(stats.dependences().total() <= 2 * n);
    }

    /// Dependence distances are positive and the histogram is
    /// consistent with its cumulative view.
    #[test]
    fn dependence_histogram_consistency(insts in trace_strategy()) {
        let mut t = VecTrace::new(insts);
        let stats = TraceStats::from_source(&mut t, usize::MAX);
        let h = stats.dependences();
        prop_assert_eq!(h.count(0), h.count(1), "distance 0 clamps to 1");
        if h.total() > 0 {
            prop_assert!(h.mean() >= 1.0);
            let full = h.cumulative(fosm_trace::DependenceHistogram::MAX_DISTANCE);
            prop_assert!((full - 1.0).abs() < 1e-9);
            let mut prev = 0.0;
            for d in [1usize, 2, 4, 16, 64, 512] {
                let c = h.cumulative(d);
                prop_assert!(c + 1e-12 >= prev);
                prev = c;
            }
        }
    }

    /// The binary trace format round-trips arbitrary well-formed
    /// instruction sequences exactly.
    #[test]
    fn trace_file_roundtrip(insts in trace_strategy()) {
        let mut bytes = Vec::new();
        fosm_trace::io::write_trace(&mut bytes, &insts).unwrap();
        let back = fosm_trace::io::read_trace(bytes.as_slice()).unwrap();
        prop_assert_eq!(back.insts(), insts.as_slice());
        // Compactness: bounded well below a naive fixed encoding.
        prop_assert!(bytes.len() <= 8 + insts.len() * 24 + 16);
    }

    /// The packed SoA layout round-trips arbitrary well-formed
    /// instruction sequences exactly — same structs, same slot
    /// structure — and independent replay cursors agree.
    #[test]
    fn packed_trace_roundtrip(insts in trace_strategy()) {
        let packed = PackedTrace::from_insts(&insts);
        prop_assert_eq!(packed.len(), insts.len());
        prop_assert_eq!(packed.decode(), insts.clone());
        let replayed: Vec<Inst> = packed.replay().iter().collect();
        prop_assert_eq!(replayed, insts.clone());
        // Recording through the streaming interface matches packing
        // the buffered slice.
        let mut origin = VecTrace::new(insts);
        prop_assert_eq!(PackedTrace::record(&mut origin, u64::MAX), packed);
    }

    /// Reset makes replays identical.
    #[test]
    fn reset_is_idempotent(insts in trace_strategy(), consumed in 0usize..50) {
        let mut t = VecTrace::new(insts);
        for _ in 0..consumed {
            t.next_inst();
        }
        t.reset();
        let first: Vec<_> = t.iter().collect();
        t.reset();
        let second: Vec<_> = t.iter().collect();
        prop_assert_eq!(first, second);
    }
}
