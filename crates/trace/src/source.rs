//! The trace-producer interface.

use fosm_isa::Inst;

use crate::adapters::{Iter, Take};

/// A producer of dynamic instructions.
///
/// A `TraceSource` is a pull-based stream: each call to
/// [`next_inst`](TraceSource::next_inst) yields the next dynamic
/// instruction, or `None` when the trace is exhausted. Synthetic
/// workload generators are conceptually infinite and never return
/// `None`; bound them with [`take`](TraceSource::take).
///
/// The trait is object-safe, so heterogeneous trace pipelines can be
/// built from `Box<dyn TraceSource>`.
///
/// # Examples
///
/// ```
/// use fosm_isa::{Inst, Op, Reg};
/// use fosm_trace::{TraceSource, VecTrace};
///
/// let mut t = VecTrace::new(vec![Inst::nop(0), Inst::nop(4)]);
/// assert_eq!(t.take(1).iter().count(), 1);
/// ```
pub trait TraceSource {
    /// Produces the next dynamic instruction, or `None` at end of trace.
    fn next_inst(&mut self) -> Option<Inst>;

    /// Bounds this source to at most `n` further instructions.
    fn take(&mut self, n: u64) -> Take<'_, Self>
    where
        Self: Sized,
    {
        Take::new(self, n)
    }

    /// Views this source as a standard [`Iterator`] over instructions.
    fn iter(&mut self) -> Iter<'_, Self>
    where
        Self: Sized,
    {
        Iter::new(self)
    }
}

impl<T: TraceSource + ?Sized> TraceSource for &mut T {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_inst(&mut self) -> Option<Inst> {
        (**self).next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;
    use fosm_isa::Inst;

    fn nops(n: usize) -> VecTrace {
        VecTrace::new((0..n).map(|i| Inst::nop(i as u64 * 4)).collect())
    }

    #[test]
    fn mut_ref_and_box_forward() {
        let mut t = nops(3);
        {
            let mut r: &mut VecTrace = &mut t;
            assert!(TraceSource::next_inst(&mut r).is_some());
        }
        let mut b: Box<dyn TraceSource> = Box::new(nops(1));
        assert!(b.next_inst().is_some());
        assert!(b.next_inst().is_none());
    }

    #[test]
    fn take_bounds_the_stream() {
        let mut t = nops(10);
        let got: Vec<_> = t.take(4).iter().collect();
        assert_eq!(got.len(), 4);
        // The rest is still available on the underlying source.
        assert_eq!(t.iter().count(), 6);
    }

    #[test]
    fn take_zero_is_empty() {
        let mut t = nops(5);
        assert_eq!(t.take(0).iter().count(), 0);
    }
}
