//! One-pass trace statistics.

use fosm_isa::{Inst, LatencyTable, Op, NUM_OP_CLASSES, NUM_REGS};
use serde::{Deserialize, Serialize};

use crate::TraceSource;

/// Histogram of register dependence distances.
///
/// The *dependence distance* of a source operand is the number of
/// dynamic instructions between the consumer and the most recent writer
/// of that register (distance 1 = the immediately preceding
/// instruction). Short distances mean tight dependence chains and low
/// instruction-level parallelism; the distribution is the program
/// property underlying the power-law IW characteristic of paper §3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DependenceHistogram {
    /// `counts[d]` = number of source operands at distance `d`
    /// (index 0 is unused; distances ≥ `counts.len()-1` clamp into the
    /// last bucket).
    counts: Vec<u64>,
    total: u64,
}

impl DependenceHistogram {
    /// Largest individually-tracked distance; longer ones share a bucket.
    pub const MAX_DISTANCE: usize = 4096;

    pub(crate) fn new() -> Self {
        DependenceHistogram {
            counts: vec![0; Self::MAX_DISTANCE + 1],
            total: 0,
        }
    }

    pub(crate) fn observe(&mut self, distance: u64) {
        let d = (distance as usize).clamp(1, Self::MAX_DISTANCE);
        self.counts[d] += 1;
        self.total += 1;
    }

    /// Number of operands observed at exactly `distance` (clamped to
    /// the final bucket).
    pub fn count(&self, distance: usize) -> u64 {
        self.counts[distance.clamp(1, Self::MAX_DISTANCE)]
    }

    /// Total operands observed.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of operands with distance ≤ `distance`.
    ///
    /// Returns 0.0 when the histogram is empty.
    pub fn cumulative(&self, distance: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let d = distance.min(Self::MAX_DISTANCE);
        let below: u64 = self.counts[..=d].iter().sum();
        below as f64 / self.total as f64
    }

    /// Mean dependence distance (clamped observations included as the
    /// clamp value). Returns 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let weighted: f64 = self
            .counts
            .iter()
            .enumerate()
            .map(|(d, &n)| d as f64 * n as f64)
            .sum();
        weighted / self.total as f64
    }
}

/// One-pass statistics over an instruction trace.
///
/// `TraceStats` is the cheap, functional-level characterization step the
/// paper's methodology begins with: instruction mix (for the average
/// functional-unit latency `L`), branch demographics, and the register
/// dependence-distance histogram.
///
/// # Examples
///
/// ```
/// use fosm_isa::{Inst, Op, Reg};
/// use fosm_trace::{TraceStats, VecTrace};
///
/// let mut t = VecTrace::new(vec![
///     Inst::alu(0, Op::IntMul, Reg::new(1), None, None),
///     Inst::branch(4, Op::CondBranch, Some(Reg::new(1)), true, 0),
/// ]);
/// let stats = TraceStats::from_source(&mut t, u64::MAX as usize);
/// assert_eq!(stats.instructions(), 2);
/// assert_eq!(stats.cond_branches(), 1);
/// assert_eq!(stats.op_count(Op::IntMul), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceStats {
    mix: [u64; NUM_OP_CLASSES],
    instructions: u64,
    cond_branches: u64,
    taken_cond_branches: u64,
    dependences: DependenceHistogram,
}

impl TraceStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        TraceStats {
            mix: [0; NUM_OP_CLASSES],
            instructions: 0,
            cond_branches: 0,
            taken_cond_branches: 0,
            dependences: DependenceHistogram::new(),
        }
    }

    /// Consumes up to `max_insts` instructions from `source` and returns
    /// the resulting statistics.
    pub fn from_source<S: TraceSource>(source: &mut S, max_insts: usize) -> Self {
        let mut stats = TraceStats::new();
        let mut last_writer = [u64::MAX; NUM_REGS];
        for _ in 0..max_insts {
            let Some(inst) = source.next_inst() else {
                break;
            };
            stats.observe(&inst, &mut last_writer);
        }
        stats
    }

    fn observe(&mut self, inst: &Inst, last_writer: &mut [u64; NUM_REGS]) {
        let idx = self.instructions;
        self.instructions += 1;
        self.mix[inst.op.index()] += 1;
        if inst.op.is_cond_branch() {
            self.cond_branches += 1;
            if inst.branch.map(|b| b.taken).unwrap_or(false) {
                self.taken_cond_branches += 1;
            }
        }
        for src in inst.sources() {
            let w = last_writer[src.index()];
            if w != u64::MAX {
                self.dependences.observe(idx - w);
            }
        }
        if let Some(dest) = inst.dest {
            last_writer[dest.index()] = idx;
        }
    }

    /// Total instructions observed.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    /// Dynamic count of operation class `op`.
    pub fn op_count(&self, op: Op) -> u64 {
        self.mix[op.index()]
    }

    /// The raw per-class dynamic mix, in [`Op::ALL`] index order.
    pub fn mix(&self) -> &[u64; NUM_OP_CLASSES] {
        &self.mix
    }

    /// Dynamic count of conditional branches.
    pub fn cond_branches(&self) -> u64 {
        self.cond_branches
    }

    /// Fraction of conditional branches that were taken (0 if none).
    pub fn taken_fraction(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.taken_cond_branches as f64 / self.cond_branches as f64
        }
    }

    /// Fraction of all instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cond_branches as f64 / self.instructions as f64
        }
    }

    /// Fraction of all instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.op_count(Op::Load) as f64 / self.instructions as f64
        }
    }

    /// The register dependence-distance histogram.
    pub fn dependences(&self) -> &DependenceHistogram {
        &self.dependences
    }

    /// Mean functional-unit latency of the observed mix under `table`.
    ///
    /// This is the `L` of the paper's Little's-Law adjustment *before*
    /// folding in short data-cache misses.
    pub fn average_latency(&self, table: &LatencyTable) -> f64 {
        table.average_over(&self.mix)
    }
}

impl Default for TraceStats {
    fn default() -> Self {
        TraceStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;
    use fosm_isa::Reg;

    fn chain(n: usize) -> VecTrace {
        // r1 <- r1 every instruction: every operand has distance 1.
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(1),
                    Some(Reg::new(1)),
                    None,
                )
            })
            .collect()
    }

    #[test]
    fn counts_mix_and_branches() {
        let mut t = VecTrace::new(vec![
            Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
            Inst::load(4, Reg::new(2), None, 0x10),
            Inst::branch(8, Op::CondBranch, Some(Reg::new(2)), true, 0x0),
            Inst::branch(12, Op::CondBranch, Some(Reg::new(2)), false, 0x20),
            Inst::branch(16, Op::Jump, None, true, 0x30),
        ]);
        let s = TraceStats::from_source(&mut t, usize::MAX);
        assert_eq!(s.instructions(), 5);
        assert_eq!(s.op_count(Op::Load), 1);
        assert_eq!(s.cond_branches(), 2);
        assert!((s.taken_fraction() - 0.5).abs() < 1e-12);
        assert!((s.branch_fraction() - 0.4).abs() < 1e-12);
        assert!((s.load_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn dependence_distances_of_a_tight_chain() {
        let mut t = chain(10);
        let s = TraceStats::from_source(&mut t, usize::MAX);
        // First instruction has no prior writer; 9 operands at distance 1.
        assert_eq!(s.dependences().total(), 9);
        assert_eq!(s.dependences().count(1), 9);
        assert!((s.dependences().mean() - 1.0).abs() < 1e-12);
        assert!((s.dependences().cumulative(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dependence_distance_measures_gap() {
        let mut t = VecTrace::new(vec![
            Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
            Inst::nop(4),
            Inst::nop(8),
            Inst::alu(12, Op::IntAlu, Reg::new(2), Some(Reg::new(1)), None),
        ]);
        let s = TraceStats::from_source(&mut t, usize::MAX);
        assert_eq!(s.dependences().count(3), 1);
        assert_eq!(s.dependences().total(), 1);
    }

    #[test]
    fn long_distances_clamp() {
        let mut h = DependenceHistogram::new();
        h.observe(1_000_000);
        assert_eq!(h.count(DependenceHistogram::MAX_DISTANCE), 1);
        assert!((h.cumulative(DependenceHistogram::MAX_DISTANCE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn max_insts_bounds_consumption() {
        let mut t = chain(10);
        let s = TraceStats::from_source(&mut t, 4);
        assert_eq!(s.instructions(), 4);
    }

    #[test]
    fn average_latency_reflects_mix() {
        let mut t = VecTrace::new(vec![
            Inst::alu(0, Op::IntMul, Reg::new(1), None, None), // 3 cycles
            Inst::alu(4, Op::IntAlu, Reg::new(2), None, None), // 1 cycle
        ]);
        let s = TraceStats::from_source(&mut t, usize::MAX);
        assert!((s.average_latency(&LatencyTable::default()) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_zeroed() {
        let s = TraceStats::default();
        assert_eq!(s.instructions(), 0);
        assert_eq!(s.taken_fraction(), 0.0);
        assert_eq!(s.branch_fraction(), 0.0);
        assert_eq!(s.dependences().mean(), 0.0);
    }
}
