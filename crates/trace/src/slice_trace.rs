//! Borrowed, replayable trace views.

use fosm_isa::Inst;

use crate::{TraceSource, VecTrace};

/// A borrowing replay cursor over a slice of instructions.
///
/// `SliceTrace` is the zero-copy counterpart of [`VecTrace`]: it
/// streams an existing `&[Inst]` through the [`TraceSource`] interface
/// without cloning the instructions or mutating the underlying trace.
/// Because each consumer gets its *own* cursor, any number of replays
/// of the same recorded trace can run (even concurrently, from shared
/// references) where previously each consumer needed a private cloned
/// `VecTrace`.
///
/// # Examples
///
/// ```
/// use fosm_isa::Inst;
/// use fosm_trace::{SliceTrace, TraceSource, VecTrace};
///
/// let recorded = VecTrace::new(vec![Inst::nop(0), Inst::nop(4)]);
/// // Two independent replays of the same buffer, no clones:
/// assert_eq!(recorded.replay().iter().count(), 2);
/// assert_eq!(SliceTrace::new(recorded.insts()).iter().count(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct SliceTrace<'a> {
    insts: &'a [Inst],
    cursor: usize,
}

impl<'a> SliceTrace<'a> {
    /// Creates a replay cursor at the start of `insts`.
    pub fn new(insts: &'a [Inst]) -> Self {
        SliceTrace { insts, cursor: 0 }
    }

    /// Number of instructions in the underlying slice (independent of
    /// the cursor).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Rewinds the replay cursor to the beginning.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// The instructions not yet replayed.
    pub fn remaining(&self) -> &'a [Inst] {
        &self.insts[self.cursor.min(self.insts.len())..]
    }
}

impl<'a> From<&'a [Inst]> for SliceTrace<'a> {
    fn from(insts: &'a [Inst]) -> Self {
        SliceTrace::new(insts)
    }
}

impl<'a> From<&'a VecTrace> for SliceTrace<'a> {
    fn from(trace: &'a VecTrace) -> Self {
        SliceTrace::new(trace.insts())
    }
}

impl TraceSource for SliceTrace<'_> {
    fn next_inst(&mut self) -> Option<Inst> {
        let inst = self.insts.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nops(n: usize) -> Vec<Inst> {
        (0..n).map(|i| Inst::nop(i as u64 * 4)).collect()
    }

    #[test]
    fn replays_without_touching_the_buffer() {
        let insts = nops(3);
        let mut a = SliceTrace::new(&insts);
        let mut b = SliceTrace::new(&insts);
        assert_eq!(a.iter().count(), 3);
        // b's cursor is independent of a's.
        assert_eq!(b.next_inst().unwrap().pc, 0);
        assert!(a.next_inst().is_none());
    }

    #[test]
    fn reset_and_remaining() {
        let insts = nops(4);
        let mut t = SliceTrace::new(&insts);
        t.next_inst();
        assert_eq!(t.remaining().len(), 3);
        t.reset();
        assert_eq!(t.remaining().len(), 4);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn replay_matches_vec_trace_semantics() {
        let mut owned = VecTrace::new(nops(5));
        let borrowed: Vec<u64> = owned.replay().iter().map(|i| i.pc).collect();
        let cloned: Vec<u64> = owned.iter().map(|i| i.pc).collect();
        assert_eq!(borrowed, cloned);
        // The replay above did not advance the owned cursor; `iter` did.
        assert!(owned.next_inst().is_none());
    }
}
