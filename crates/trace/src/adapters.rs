//! Stream adapters over [`TraceSource`].

use fosm_isa::Inst;

use crate::TraceSource;

/// A [`TraceSource`] bounded to a maximum number of instructions.
///
/// Created by [`TraceSource::take`]. Borrowing (rather than consuming)
/// the underlying source lets callers interleave bounded analyses over
/// one long-lived generator.
#[derive(Debug)]
pub struct Take<'a, S> {
    inner: &'a mut S,
    remaining: u64,
}

impl<'a, S: TraceSource> Take<'a, S> {
    pub(crate) fn new(inner: &'a mut S, n: u64) -> Self {
        Take {
            inner,
            remaining: n,
        }
    }

    /// Instructions still allowed through this adapter.
    pub fn remaining(&self) -> u64 {
        self.remaining
    }
}

impl<S: TraceSource> TraceSource for Take<'_, S> {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.remaining == 0 {
            return None;
        }
        let inst = self.inner.next_inst()?;
        self.remaining -= 1;
        Some(inst)
    }
}

/// Standard-iterator view of a [`TraceSource`].
///
/// Created by [`TraceSource::iter`].
#[derive(Debug)]
pub struct Iter<'a, S> {
    inner: &'a mut S,
}

impl<'a, S: TraceSource> Iter<'a, S> {
    pub(crate) fn new(inner: &'a mut S) -> Self {
        Iter { inner }
    }
}

impl<S: TraceSource> Iterator for Iter<'_, S> {
    type Item = Inst;

    fn next(&mut self) -> Option<Inst> {
        self.inner.next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;

    #[test]
    fn take_reports_remaining() {
        let mut t = VecTrace::new(vec![Inst::nop(0), Inst::nop(4), Inst::nop(8)]);
        let mut bounded = t.take(2);
        assert_eq!(bounded.remaining(), 2);
        bounded.next_inst();
        assert_eq!(bounded.remaining(), 1);
        bounded.next_inst();
        assert_eq!(bounded.remaining(), 0);
        assert!(bounded.next_inst().is_none());
    }

    #[test]
    fn take_stops_at_source_end() {
        let mut t = VecTrace::new(vec![Inst::nop(0)]);
        let mut bounded = t.take(10);
        assert!(bounded.next_inst().is_some());
        assert!(bounded.next_inst().is_none());
        // remaining reflects the budget, not the source.
        assert_eq!(bounded.remaining(), 9);
    }

    #[test]
    fn iter_yields_all() {
        let mut t = VecTrace::new(vec![Inst::nop(0), Inst::nop(4)]);
        let pcs: Vec<u64> = t.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 4]);
    }
}
