//! Owned, replayable traces.

use fosm_isa::Inst;
use serde::{Deserialize, Serialize};

use crate::TraceSource;

/// An owned, replayable instruction trace.
///
/// `VecTrace` buffers a finite instruction sequence in memory. It is
/// the workhorse for experiments that must observe *the same* dynamic
/// instruction stream several times (e.g. the paper's methodology of
/// running one trace through several idealized machine configurations):
/// record once with [`VecTrace::record`], then [`reset`](VecTrace::reset)
/// between consumers.
///
/// # Examples
///
/// ```
/// use fosm_isa::Inst;
/// use fosm_trace::{TraceSource, VecTrace};
///
/// let mut origin = VecTrace::new(vec![Inst::nop(0), Inst::nop(4), Inst::nop(8)]);
/// let mut copy = VecTrace::record(&mut origin, 2);
/// assert_eq!(copy.len(), 2);
/// assert_eq!(copy.iter().count(), 2);
/// copy.reset();
/// assert_eq!(copy.iter().count(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct VecTrace {
    insts: Vec<Inst>,
    cursor: usize,
}

impl VecTrace {
    /// Creates a trace over the given instructions, cursor at the start.
    pub fn new(insts: Vec<Inst>) -> Self {
        VecTrace { insts, cursor: 0 }
    }

    /// Records up to `n` instructions from `source` into a new trace.
    pub fn record<S: TraceSource>(source: &mut S, n: u64) -> Self {
        let mut insts = Vec::with_capacity(n.min(1 << 20) as usize);
        for _ in 0..n {
            match source.next_inst() {
                Some(i) => insts.push(i),
                None => break,
            }
        }
        VecTrace::new(insts)
    }

    /// Number of instructions in the trace (independent of the cursor).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Returns `true` if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Rewinds the replay cursor to the beginning.
    pub fn reset(&mut self) {
        self.cursor = 0;
    }

    /// The underlying instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// A fresh borrowing replay cursor over the whole trace.
    ///
    /// Unlike replaying the trace itself (which advances its cursor
    /// and requires [`reset`](VecTrace::reset) plus `&mut` access),
    /// each `replay()` starts at the beginning, leaves the owned trace
    /// untouched, and never clones the instruction buffer.
    pub fn replay(&self) -> crate::SliceTrace<'_> {
        crate::SliceTrace::new(&self.insts)
    }

    /// Consumes the trace, returning the underlying instructions.
    pub fn into_inner(self) -> Vec<Inst> {
        self.insts
    }
}

impl From<Vec<Inst>> for VecTrace {
    fn from(insts: Vec<Inst>) -> Self {
        VecTrace::new(insts)
    }
}

impl FromIterator<Inst> for VecTrace {
    fn from_iter<I: IntoIterator<Item = Inst>>(iter: I) -> Self {
        VecTrace::new(iter.into_iter().collect())
    }
}

impl Extend<Inst> for VecTrace {
    fn extend<I: IntoIterator<Item = Inst>>(&mut self, iter: I) {
        self.insts.extend(iter);
    }
}

impl TraceSource for VecTrace {
    fn next_inst(&mut self) -> Option<Inst> {
        let inst = self.insts.get(self.cursor).copied()?;
        self.cursor += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_isa::{Op, Reg};

    fn sample() -> Vec<Inst> {
        vec![
            Inst::nop(0),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, None),
            Inst::load(8, Reg::new(2), Some(Reg::new(1)), 0x100),
        ]
    }

    #[test]
    fn replays_in_order_and_ends() {
        let mut t = VecTrace::new(sample());
        let pcs: Vec<u64> = t.iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 4, 8]);
        assert!(t.next_inst().is_none());
    }

    #[test]
    fn reset_rewinds() {
        let mut t = VecTrace::new(sample());
        t.next_inst();
        t.next_inst();
        t.reset();
        assert_eq!(t.next_inst().unwrap().pc, 0);
    }

    #[test]
    fn record_stops_at_source_end() {
        let mut origin = VecTrace::new(sample());
        let copy = VecTrace::record(&mut origin, 100);
        assert_eq!(copy.len(), 3);
    }

    #[test]
    fn record_respects_bound() {
        let mut origin = VecTrace::new(sample());
        let copy = VecTrace::record(&mut origin, 2);
        assert_eq!(copy.len(), 2);
        // origin cursor advanced past only the recorded prefix
        assert_eq!(origin.next_inst().unwrap().pc, 8);
    }

    #[test]
    fn collection_traits() {
        let t: VecTrace = sample().into_iter().collect();
        assert_eq!(t.len(), 3);
        let mut t2 = VecTrace::default();
        assert!(t2.is_empty());
        t2.extend(sample());
        assert_eq!(t2.len(), 3);
        assert_eq!(VecTrace::from(sample()).into_inner().len(), 3);
    }
}
