//! Instruction-trace abstractions for the first-order superscalar model.
//!
//! Every input to the analytical model of Karkhanis & Smith is derived
//! from an instruction trace: cache miss rates, branch misprediction
//! rates, and the data-dependence statistics behind the IW
//! characteristic. This crate defines:
//!
//! * [`TraceSource`] — the streaming interface every trace producer
//!   (synthetic workload generators, recorded traces) implements,
//! * [`VecTrace`] — an owned, replayable trace buffer,
//! * [`PackedTrace`] — the same trace in packed structure-of-arrays
//!   columns (~4x smaller), with zero-copy replay cursors,
//! * [`SliceTrace`] — a borrowing replay cursor over recorded
//!   instructions, for cloneless concurrent replays,
//! * [`CorpusFile`]/[`FileReplay`] — versioned, checksummed on-disk
//!   corpus files (`FOSMTRC1`) with a chunk-paged replay cursor whose
//!   resident memory is O(page), not O(trace),
//! * [`DecodedTrace`] — the pre-decoded replay sidecar (op, FU class,
//!   latency, registers resolved once, replayed many times),
//! * [`TraceStats`] — one-pass statistics over a trace (instruction
//!   mix, branch demographics, register dependence distances),
//! * adapters such as [`Take`] for bounding a stream.
//!
//! # Examples
//!
//! ```
//! use fosm_isa::{Inst, Op, Reg};
//! use fosm_trace::{TraceSource, TraceStats, VecTrace};
//!
//! let insts = vec![
//!     Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
//!     Inst::alu(4, Op::IntAlu, Reg::new(2), Some(Reg::new(1)), None),
//! ];
//! let mut trace = VecTrace::new(insts);
//! let stats = TraceStats::from_source(&mut trace, usize::MAX);
//! assert_eq!(stats.instructions(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adapters;
pub mod corpus;
pub mod io;
mod packed;
mod sampling;
pub mod sidecar;
mod slice_trace;
mod source;
mod stats;
mod vec_trace;

pub use adapters::{Iter, Take};
pub use corpus::{write_corpus, CorpusError, CorpusFile, CorpusSummary, CorpusWriter, FileReplay};
pub use packed::{PackedReplay, PackedTrace};
pub use sampling::Sampler;
pub use sidecar::{
    DecodedInst, DecodedReplay, DecodedTrace, DF_BRANCH, DF_COND, DF_LOAD, DF_STORE, DF_TAKEN,
};
pub use slice_trace::SliceTrace;
pub use source::TraceSource;
pub use stats::{DependenceHistogram, TraceStats};
pub use vec_trace::VecTrace;
