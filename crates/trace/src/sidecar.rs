//! Pre-decoded replay sidecar for corpus files.
//!
//! Replaying a corpus (or a packed trace) re-derives the same
//! per-instruction facts on every pass: the op class from the packed
//! byte, the functional-unit class and execution latency from the op,
//! and the register slots from their sentinel encoding. A
//! [`DecodedTrace`] is that work done **once**: flat, aligned columns
//! of fully resolved per-instruction records ("translate once, replay
//! many"). It is built from one paged pass over a
//! [`CorpusFile`](crate::CorpusFile), serialized to a compact binary
//! blob for the artifact-store disk cache, and replayed with
//! [`DecodedReplay`] — a [`TraceSource`] with no file I/O, no paging
//! checks, and no positional side-column bookkeeping, which is what
//! makes warm re-replay much faster than a cold [`FileReplay`]
//! (see `crates/bench/benches/functional.rs` for the enforced ratio).
//!
//! The sidecar never needs explicit invalidation: it is cached under
//! the corpus *identity* (path + size + content digest), so a changed
//! corpus file keys a different entry and the stale one simply ages
//! out of the disk cache's LRU.

use fosm_isa::{BranchInfo, Inst, LatencyTable, Op, Reg, NUM_OP_CLASSES};

use crate::corpus::{CorpusError, CorpusFile};
use crate::packed::NO_REG;
use crate::TraceSource;

/// Sidecar blob magic (bumped with any layout change).
pub const SIDECAR_MAGIC: [u8; 8] = *b"FOSMSDC1";

/// Flag bit: the instruction is a load.
pub const DF_LOAD: u8 = 1 << 0;
/// Flag bit: the instruction is a store.
pub const DF_STORE: u8 = 1 << 1;
/// Flag bit: the instruction is a branch (any kind).
pub const DF_BRANCH: u8 = 1 << 2;
/// Flag bit: the instruction is a *conditional* branch.
pub const DF_COND: u8 = 1 << 3;
/// Flag bit: the branch was taken.
pub const DF_TAKEN: u8 = 1 << 4;

/// All flag bits a valid record may carry.
const DF_ALL: u8 = DF_LOAD | DF_STORE | DF_BRANCH | DF_COND | DF_TAKEN;

/// One fully resolved instruction record, as yielded by
/// [`DecodedTrace::records`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodedInst {
    /// Program counter.
    pub pc: u64,
    /// Effective address (loads/stores) or branch target (branches);
    /// zero otherwise. The two uses cannot collide: no op class is
    /// both memory and branch.
    pub aux: u64,
    /// [`Op`] index.
    pub op: u8,
    /// Resolved functional-unit class index
    /// ([`fosm_isa::FuClass::index`]).
    pub fu: u8,
    /// Execution latency under [`LatencyTable::default`], clamped to
    /// 255. The op column stays authoritative for custom tables.
    pub lat: u8,
    /// Destination register number, `0xFF` when absent.
    pub dest: u8,
    /// First source register number, `0xFF` when absent.
    pub src0: u8,
    /// Second source register number, `0xFF` when absent.
    pub src1: u8,
    /// `DF_*` flag bits.
    pub flags: u8,
}

/// The pre-decoded sidecar table: one resolved record per
/// instruction, stored column-wise (23 bytes per instruction).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DecodedTrace {
    pcs: Vec<u64>,
    auxs: Vec<u64>,
    ops: Vec<u8>,
    fus: Vec<u8>,
    lats: Vec<u8>,
    dests: Vec<u8>,
    src0s: Vec<u8>,
    src1s: Vec<u8>,
    flags: Vec<u8>,
}

impl DecodedTrace {
    /// Decodes up to `n` instructions from any source.
    pub fn from_source<S: TraceSource>(source: &mut S, n: u64) -> DecodedTrace {
        let latencies = LatencyTable::default();
        let mut t = DecodedTrace::default();
        for _ in 0..n {
            let Some(inst) = source.next_inst() else {
                break;
            };
            t.push(&inst, &latencies);
        }
        t
    }

    /// Builds the sidecar from one paged pass over a corpus file.
    ///
    /// # Errors
    ///
    /// Any replay error (I/O or undecodable column bytes).
    pub fn from_corpus(corpus: &CorpusFile) -> Result<DecodedTrace, CorpusError> {
        let mut replay = corpus.replay();
        let decoded = DecodedTrace::from_source(&mut replay, u64::MAX);
        match replay.take_error() {
            Some(e) => Err(e),
            None if decoded.len() as u64 != corpus.len() => Err(CorpusError::Format(format!(
                "decoded {} instructions but the header promises {}",
                decoded.len(),
                corpus.len()
            ))),
            None => Ok(decoded),
        }
    }

    fn push(&mut self, inst: &Inst, latencies: &LatencyTable) {
        self.pcs.push(inst.pc);
        self.auxs
            .push(inst.mem_addr.or(inst.branch.map(|b| b.target)).unwrap_or(0));
        self.ops.push(inst.op.index() as u8);
        self.fus.push(inst.op.fu_class().index() as u8);
        self.lats.push(latencies.latency(inst.op).min(255) as u8);
        self.dests.push(pack_reg(inst.dest));
        self.src0s.push(pack_reg(inst.srcs[0]));
        self.src1s.push(pack_reg(inst.srcs[1]));
        let mut flags = 0u8;
        if inst.op == Op::Load {
            flags |= DF_LOAD;
        }
        if inst.op == Op::Store {
            flags |= DF_STORE;
        }
        if inst.op.is_branch() {
            flags |= DF_BRANCH;
        }
        if inst.op.is_cond_branch() {
            flags |= DF_COND;
        }
        if inst.branch.is_some_and(|b| b.taken) {
            flags |= DF_TAKEN;
        }
        self.flags.push(flags);
    }

    /// Instructions in the table.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// Heap footprint of the columns, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.pcs.len() * 8 + self.auxs.len() * 8 + self.ops.len() * 7
    }

    /// A fresh replay cursor reconstructing [`Inst`]s — the fast
    /// re-replay path: all columns are resident and index-aligned, so
    /// each step is a handful of array reads.
    pub fn replay(&self) -> DecodedReplay<'_> {
        DecodedReplay {
            trace: self,
            idx: 0,
        }
    }

    /// Iterates the flat resolved records without rebuilding `Inst`
    /// structs — for consumers that only need the pre-decoded facts.
    pub fn records(&self) -> impl Iterator<Item = DecodedInst> + '_ {
        (0..self.len()).map(move |i| DecodedInst {
            pc: self.pcs[i],
            aux: self.auxs[i],
            op: self.ops[i],
            fu: self.fus[i],
            lat: self.lats[i],
            dest: self.dests[i],
            src0: self.src0s[i],
            src1: self.src1s[i],
            flags: self.flags[i],
        })
    }

    /// Serializes the table to the compact binary sidecar blob
    /// (`FOSMSDC1`: magic, count, then each column contiguously).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.len();
        let mut out = Vec::with_capacity(16 + n * 23);
        out.extend_from_slice(&SIDECAR_MAGIC);
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for &pc in &self.pcs {
            out.extend_from_slice(&pc.to_le_bytes());
        }
        for &aux in &self.auxs {
            out.extend_from_slice(&aux.to_le_bytes());
        }
        out.extend_from_slice(&self.ops);
        out.extend_from_slice(&self.fus);
        out.extend_from_slice(&self.lats);
        out.extend_from_slice(&self.dests);
        out.extend_from_slice(&self.src0s);
        out.extend_from_slice(&self.src1s);
        out.extend_from_slice(&self.flags);
        out
    }

    /// Deserializes a sidecar blob, validating the magic, the exact
    /// length, and every op/register/flag byte (a blob that passes
    /// replays without panicking).
    ///
    /// # Errors
    ///
    /// A message describing the first structural problem.
    pub fn from_bytes(bytes: &[u8]) -> Result<DecodedTrace, String> {
        if bytes.len() < 16 {
            return Err("sidecar blob shorter than its fixed header".to_string());
        }
        if bytes[..8] != SIDECAR_MAGIC {
            return Err("sidecar blob has a foreign magic".to_string());
        }
        let n = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
        let want = 16usize
            .checked_add(n.checked_mul(23).ok_or("sidecar count overflows")?)
            .ok_or("sidecar count overflows")?;
        if bytes.len() != want {
            return Err(format!(
                "sidecar blob is {} bytes but {n} records require {want}",
                bytes.len()
            ));
        }
        let mut at = 16;
        let read_u64s = |at: &mut usize| {
            let col: Vec<u64> = bytes[*at..*at + n * 8]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            *at += n * 8;
            col
        };
        let pcs = read_u64s(&mut at);
        let auxs = read_u64s(&mut at);
        let read_bytes = |at: &mut usize| {
            let col = bytes[*at..*at + n].to_vec();
            *at += n;
            col
        };
        let ops = read_bytes(&mut at);
        let fus = read_bytes(&mut at);
        let lats = read_bytes(&mut at);
        let dests = read_bytes(&mut at);
        let src0s = read_bytes(&mut at);
        let src1s = read_bytes(&mut at);
        let flags = read_bytes(&mut at);
        debug_assert_eq!(at, want);
        for (i, &op) in ops.iter().enumerate() {
            if op as usize >= NUM_OP_CLASSES {
                return Err(format!("record {i}: op byte {op:#04x} out of range"));
            }
        }
        for (name, col) in [("dest", &dests), ("src0", &src0s), ("src1", &src1s)] {
            for (i, &b) in col.iter().enumerate() {
                if b != NO_REG && Reg::try_new(b).is_none() {
                    return Err(format!("record {i}: {name} byte {b:#04x} out of range"));
                }
            }
        }
        for (i, &f) in flags.iter().enumerate() {
            if f & !DF_ALL != 0 {
                return Err(format!("record {i}: unknown flag bits {f:#04x}"));
            }
        }
        Ok(DecodedTrace {
            pcs,
            auxs,
            ops,
            fus,
            lats,
            dests,
            src0s,
            src1s,
            flags,
        })
    }
}

fn pack_reg(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.number())
}

fn unpack_reg(byte: u8) -> Option<Reg> {
    if byte == NO_REG {
        None
    } else {
        Some(Reg::new(byte))
    }
}

/// Replay cursor over a [`DecodedTrace`] — all columns resident and
/// index-aligned, so reconstruction does no I/O and no positional
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct DecodedReplay<'a> {
    trace: &'a DecodedTrace,
    idx: usize,
}

impl DecodedReplay<'_> {
    /// Instructions left to replay.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.idx
    }
}

impl TraceSource for DecodedReplay<'_> {
    fn next_inst(&mut self) -> Option<Inst> {
        let t = self.trace;
        let i = self.idx;
        let &op = t.ops.get(i)?;
        let op = Op::ALL[op as usize];
        let flags = t.flags[i];
        let aux = t.auxs[i];
        let inst = Inst {
            pc: t.pcs[i],
            op,
            dest: unpack_reg(t.dests[i]),
            srcs: [unpack_reg(t.src0s[i]), unpack_reg(t.src1s[i])],
            mem_addr: (flags & (DF_LOAD | DF_STORE) != 0).then_some(aux),
            branch: (flags & DF_BRANCH != 0).then_some(BranchInfo {
                taken: flags & DF_TAKEN != 0,
                target: aux,
            }),
        };
        self.idx = i + 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PackedTrace, VecTrace};

    fn sample() -> Vec<Inst> {
        vec![
            Inst::nop(0),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, Some(Reg::new(3))),
            Inst::load(8, Reg::new(2), Some(Reg::new(1)), 0x100),
            Inst::store(12, Reg::new(2), None, 0x108),
            Inst::branch(16, Op::CondBranch, Some(Reg::new(2)), true, 0x40),
            Inst::branch(20, Op::Jump, None, false, 0x44),
        ]
    }

    #[test]
    fn decoded_replay_is_bit_identical_to_the_source() {
        let insts = sample();
        let decoded = DecodedTrace::from_source(&mut VecTrace::new(insts.clone()), u64::MAX);
        assert_eq!(decoded.len(), insts.len());
        let replayed: Vec<Inst> = decoded.replay().iter().collect();
        assert_eq!(replayed, insts);
    }

    #[test]
    fn records_expose_resolved_facts() {
        let decoded = DecodedTrace::from_source(&mut VecTrace::new(sample()), u64::MAX);
        let records: Vec<DecodedInst> = decoded.records().collect();
        let latencies = LatencyTable::default();
        for (record, inst) in records.iter().zip(sample()) {
            assert_eq!(record.op as usize, inst.op.index());
            assert_eq!(record.fu as usize, inst.op.fu_class().index());
            assert_eq!(record.lat as u32, latencies.latency(inst.op).min(255));
            assert_eq!(record.flags & DF_LOAD != 0, inst.op == Op::Load);
            assert_eq!(record.flags & DF_BRANCH != 0, inst.op.is_branch());
            assert_eq!(
                record.flags & DF_TAKEN != 0,
                inst.branch.is_some_and(|b| b.taken)
            );
            if let Some(addr) = inst.mem_addr {
                assert_eq!(record.aux, addr);
            }
            if let Some(b) = inst.branch {
                assert_eq!(record.aux, b.target);
            }
        }
    }

    #[test]
    fn blob_round_trip() {
        let decoded = DecodedTrace::from_source(&mut VecTrace::new(sample()), u64::MAX);
        let blob = decoded.to_bytes();
        let back = DecodedTrace::from_bytes(&blob).expect("parses");
        assert_eq!(back, decoded);
    }

    #[test]
    fn from_bytes_rejects_malformed_blobs() {
        let decoded = DecodedTrace::from_source(&mut VecTrace::new(sample()), u64::MAX);
        let blob = decoded.to_bytes();
        assert!(DecodedTrace::from_bytes(&blob[..blob.len() - 1]).is_err());
        assert!(DecodedTrace::from_bytes(&blob[..4]).is_err());
        let mut foreign = blob.clone();
        foreign[0] = b'X';
        assert!(DecodedTrace::from_bytes(&foreign).is_err());
        // An op byte out of range must be caught, not replayed.
        let mut bad_op = blob.clone();
        bad_op[16 + 6 * 8 + 6 * 8] = 0xEE;
        assert!(DecodedTrace::from_bytes(&bad_op)
            .expect_err("bad op")
            .contains("op byte"));
    }

    #[test]
    fn from_corpus_matches_from_source() {
        let insts: Vec<Inst> = sample().into_iter().cycle().take(500).collect();
        let path = std::env::temp_dir().join(format!(
            "fosm-sidecar-test-{}-corpus.fct",
            std::process::id()
        ));
        crate::corpus::write_corpus(&path, &PackedTrace::from_insts(&insts)).expect("write");
        let corpus = CorpusFile::open(&path).expect("open");
        let from_corpus = DecodedTrace::from_corpus(&corpus).expect("sidecar");
        let from_source = DecodedTrace::from_source(&mut VecTrace::new(insts), u64::MAX);
        assert_eq!(from_corpus, from_source);
        let _ = std::fs::remove_file(&path);
    }
}
