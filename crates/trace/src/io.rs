//! Binary trace files: record once, analyze anywhere.
//!
//! The paper's methodology is trace-driven end to end, so traces are
//! the interchange artifact between tools (workload generation,
//! functional profiling, detailed simulation). This module defines a
//! compact binary format (magic `FOSMTRC1`) with delta/varint-encoded
//! PCs and addresses — typically well under 12 bytes per instruction —
//! plus streaming reader/writer types so traces larger than memory can
//! be processed.
//!
//! # Examples
//!
//! ```
//! use fosm_isa::Inst;
//! use fosm_trace::{io as trace_io, TraceSource, VecTrace};
//!
//! # fn main() -> std::io::Result<()> {
//! let insts = vec![Inst::nop(0x1000), Inst::nop(0x1004)];
//! let mut bytes = Vec::new();
//! trace_io::write_trace(&mut bytes, &insts)?;
//! let back = trace_io::read_trace(&mut bytes.as_slice())?;
//! assert_eq!(back.insts(), insts.as_slice());
//! # Ok(())
//! # }
//! ```

use std::io::{self, Read, Write};

use fosm_isa::{BranchInfo, Inst, Op, Reg};

use crate::{TraceSource, VecTrace};

/// File magic: "FOSMTRC" + format version 1.
pub const MAGIC: [u8; 8] = *b"FOSMTRC\x01";

// Flag bits of the per-record header byte.
const F_DEST: u8 = 1 << 0;
const F_SRC0: u8 = 1 << 1;
const F_SRC1: u8 = 1 << 2;
const F_MEM: u8 = 1 << 3;
const F_BRANCH: u8 = 1 << 4;
const F_TAKEN: u8 = 1 << 5;
/// PC == previous PC + 4 (the common case; PC field omitted).
const F_SEQ_PC: u8 = 1 << 6;

fn write_varint<W: Write>(w: &mut W, mut v: u64) -> io::Result<()> {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            return w.write_all(&[byte]);
        }
        w.write_all(&[byte | 0x80])?;
    }
}

fn read_varint<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let mut byte = [0u8; 1];
        r.read_exact(&mut byte)?;
        if shift >= 64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "varint longer than 64 bits",
            ));
        }
        v |= ((byte[0] & 0x7f) as u64) << shift;
        if byte[0] & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

fn op_code(op: Op) -> u8 {
    op.index() as u8
}

fn op_from_code(code: u8) -> io::Result<Op> {
    Op::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, format!("bad op code {code}")))
}

/// Streaming trace writer.
///
/// Writes the header on construction and one record per
/// [`write`](TraceFileWriter::write) call; call
/// [`finish`](TraceFileWriter::finish) to flush.
#[derive(Debug)]
pub struct TraceFileWriter<W: Write> {
    sink: W,
    prev_pc: u64,
    written: u64,
}

impl<W: Write> TraceFileWriter<W> {
    /// Starts a trace file on `sink`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing the header.
    pub fn new(mut sink: W) -> io::Result<Self> {
        sink.write_all(&MAGIC)?;
        Ok(TraceFileWriter {
            sink,
            prev_pc: 0,
            written: 0,
        })
    }

    /// Appends one instruction record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn write(&mut self, inst: &Inst) -> io::Result<()> {
        let mut flags = 0u8;
        if inst.dest.is_some() {
            flags |= F_DEST;
        }
        if inst.srcs[0].is_some() {
            flags |= F_SRC0;
        }
        if inst.srcs[1].is_some() {
            flags |= F_SRC1;
        }
        if inst.mem_addr.is_some() {
            flags |= F_MEM;
        }
        if let Some(b) = inst.branch {
            flags |= F_BRANCH;
            if b.taken {
                flags |= F_TAKEN;
            }
        }
        let sequential = self.written > 0 && inst.pc == self.prev_pc.wrapping_add(4);
        if sequential {
            flags |= F_SEQ_PC;
        }
        self.sink.write_all(&[op_code(inst.op), flags])?;
        if !sequential {
            write_varint(&mut self.sink, inst.pc)?;
        }
        if let Some(d) = inst.dest {
            self.sink.write_all(&[d.number()])?;
        }
        if let Some(s) = inst.srcs[0] {
            self.sink.write_all(&[s.number()])?;
        }
        if let Some(s) = inst.srcs[1] {
            self.sink.write_all(&[s.number()])?;
        }
        if let Some(a) = inst.mem_addr {
            write_varint(&mut self.sink, a)?;
        }
        if let Some(b) = inst.branch {
            write_varint(&mut self.sink, b.target)?;
        }
        self.prev_pc = inst.pc;
        self.written += 1;
        Ok(())
    }

    /// Records written so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Flushes and returns the underlying sink.
    ///
    /// # Errors
    ///
    /// Propagates flush errors.
    pub fn finish(mut self) -> io::Result<W> {
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Streaming trace reader implementing [`TraceSource`].
///
/// Reads records lazily, so arbitrarily large trace files can drive
/// simulations without being materialized.
#[derive(Debug)]
pub struct TraceFileReader<R: Read> {
    source: R,
    prev_pc: u64,
    read: u64,
    finished: bool,
    /// First malformed-record error, if any (streaming `TraceSource`
    /// has no error channel; check after the stream ends).
    error: Option<io::Error>,
}

impl<R: Read> TraceFileReader<R> {
    /// Opens a trace stream, validating the header.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::InvalidData`] if the magic does not match.
    pub fn new(mut source: R) -> io::Result<Self> {
        let mut magic = [0u8; 8];
        source.read_exact(&mut magic)?;
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "not a fosm trace file (bad magic)",
            ));
        }
        Ok(TraceFileReader {
            source,
            prev_pc: 0,
            read: 0,
            finished: false,
            error: None,
        })
    }

    /// Records decoded so far.
    pub fn read_count(&self) -> u64 {
        self.read
    }

    /// The error that terminated the stream, if it was not clean EOF.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    fn read_record(&mut self) -> io::Result<Option<Inst>> {
        let mut head = [0u8; 2];
        match self.source.read_exact(&mut head[..1]) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
            Err(e) => return Err(e),
        }
        self.source.read_exact(&mut head[1..])?;
        let op = op_from_code(head[0])?;
        let flags = head[1];
        let pc = if flags & F_SEQ_PC != 0 {
            self.prev_pc.wrapping_add(4)
        } else {
            read_varint(&mut self.source)?
        };
        let mut byte = [0u8; 1];
        let mut reg = |src: &mut R| -> io::Result<Reg> {
            src.read_exact(&mut byte)?;
            Reg::try_new(byte[0]).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("bad register {}", byte[0]),
                )
            })
        };
        let dest = (flags & F_DEST != 0)
            .then(|| reg(&mut self.source))
            .transpose()?;
        let src0 = (flags & F_SRC0 != 0)
            .then(|| reg(&mut self.source))
            .transpose()?;
        let src1 = (flags & F_SRC1 != 0)
            .then(|| reg(&mut self.source))
            .transpose()?;
        let mem_addr = (flags & F_MEM != 0)
            .then(|| read_varint(&mut self.source))
            .transpose()?;
        let branch = if flags & F_BRANCH != 0 {
            Some(BranchInfo {
                taken: flags & F_TAKEN != 0,
                target: read_varint(&mut self.source)?,
            })
        } else {
            None
        };
        let inst = Inst {
            pc,
            op,
            dest,
            srcs: [src0, src1],
            mem_addr,
            branch,
        };
        if !inst.is_well_formed() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("malformed record at index {}", self.read),
            ));
        }
        self.prev_pc = pc;
        self.read += 1;
        Ok(Some(inst))
    }
}

impl<R: Read> TraceSource for TraceFileReader<R> {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.finished {
            return None;
        }
        match self.read_record() {
            Ok(Some(inst)) => Some(inst),
            Ok(None) => {
                self.finished = true;
                None
            }
            Err(e) => {
                self.finished = true;
                self.error = Some(e);
                None
            }
        }
    }
}

/// Writes a whole instruction slice as a trace file.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_trace<W: Write>(sink: W, insts: &[Inst]) -> io::Result<()> {
    let mut writer = TraceFileWriter::new(sink)?;
    for inst in insts {
        writer.write(inst)?;
    }
    writer.finish()?;
    Ok(())
}

/// Reads a whole trace file into memory.
///
/// # Errors
///
/// [`io::ErrorKind::InvalidData`] on bad magic or malformed records;
/// other I/O errors are propagated.
pub fn read_trace<R: Read>(source: R) -> io::Result<VecTrace> {
    let mut reader = TraceFileReader::new(source)?;
    let mut insts = Vec::new();
    while let Some(inst) = reader.next_inst() {
        insts.push(inst);
    }
    if let Some(e) = reader.take_error() {
        return Err(e);
    }
    Ok(VecTrace::new(insts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::alu(0x1000, Op::IntAlu, Reg::new(1), Some(Reg::new(2)), None),
            Inst::alu(
                0x1004,
                Op::FpMul,
                Reg::new(3),
                Some(Reg::new(1)),
                Some(Reg::new(2)),
            ),
            Inst::load(0x1008, Reg::new(4), Some(Reg::new(1)), 0xdead_beef),
            Inst::store(0x100c, Reg::new(4), None, 0x1234_5678_9abc),
            Inst::branch(0x1010, Op::CondBranch, Some(Reg::new(4)), true, 0x1000),
            Inst::branch(0x1000, Op::Return, None, true, 0x8000_0000),
            Inst::nop(0x8000_0000),
        ]
    }

    #[test]
    fn roundtrip_preserves_every_field() {
        let insts = sample();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &insts).unwrap();
        let back = read_trace(bytes.as_slice()).unwrap();
        assert_eq!(back.insts(), insts.as_slice());
    }

    #[test]
    fn sequential_pcs_are_compact() {
        // A long run of sequential nops costs 2 bytes per record.
        let insts: Vec<Inst> = (0..1000).map(|i| Inst::nop(0x4000 + i * 4)).collect();
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &insts).unwrap();
        let per_record = (bytes.len() - MAGIC.len()) as f64 / 1000.0;
        assert!(per_record < 2.2, "bytes/record {per_record}");
        assert_eq!(read_trace(bytes.as_slice()).unwrap().len(), 1000);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_trace(&b"NOTATRACE"[..]).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_reports_an_error() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &sample()).unwrap();
        bytes.truncate(bytes.len() - 3);
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn corrupt_op_code_is_rejected() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &sample()).unwrap();
        bytes[MAGIC.len()] = 0xff; // first record's op code
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn corrupt_register_is_rejected() {
        let insts = vec![Inst::alu(0, Op::IntAlu, Reg::new(1), None, None)];
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &insts).unwrap();
        *bytes.last_mut().unwrap() = 200; // register number out of range
        let err = read_trace(bytes.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn streaming_reader_counts_records() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &sample()).unwrap();
        let mut reader = TraceFileReader::new(bytes.as_slice()).unwrap();
        let mut n = 0;
        while reader.next_inst().is_some() {
            n += 1;
        }
        assert_eq!(n, sample().len());
        assert_eq!(reader.read_count(), n as u64);
        assert!(reader.take_error().is_none());
    }

    #[test]
    fn varint_roundtrip_extremes() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v).unwrap();
            assert_eq!(read_varint(&mut buf.as_slice()).unwrap(), v);
        }
    }

    #[test]
    fn empty_trace_roundtrips() {
        let mut bytes = Vec::new();
        write_trace(&mut bytes, &[]).unwrap();
        assert_eq!(read_trace(bytes.as_slice()).unwrap().len(), 0);
    }
}
