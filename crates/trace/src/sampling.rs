//! Systematic trace sampling.
//!
//! Long traces can be characterized from periodic sample windows
//! instead of full runs (the idea behind SimPoint-class methodologies).
//! [`Sampler`] passes through `sample_len` instructions out of every
//! `period`, skipping the rest — miss *rates* and mix statistics
//! estimated from the samples converge to the full-trace values while
//! profiling cost drops by `period / sample_len`.
//!
//! Skipping instructions perturbs stateful consumers (caches and
//! predictors warm differently), so sampled profiles trade a small bias
//! for the speedup — the `sampling_study` harness quantifies it.

use fosm_isa::Inst;

use crate::TraceSource;

/// A systematic sampler over a trace source.
///
/// # Examples
///
/// ```
/// use fosm_isa::Inst;
/// use fosm_trace::{Sampler, TraceSource, VecTrace};
///
/// let insts: Vec<Inst> = (0..100).map(|i| Inst::nop(i * 4)).collect();
/// let mut sampled = Sampler::new(VecTrace::new(insts), 10, 50).unwrap();
/// // 10 out of every 50: two sample windows in 100 instructions.
/// assert_eq!(sampled.iter().count(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Sampler<S> {
    inner: S,
    sample_len: u64,
    period: u64,
    position: u64,
    sampled: u64,
}

impl<S: TraceSource> Sampler<S> {
    /// Samples the first `sample_len` instructions of every `period`.
    ///
    /// # Errors
    ///
    /// Returns a message if `sample_len` is zero or exceeds `period`.
    pub fn new(inner: S, sample_len: u64, period: u64) -> Result<Self, String> {
        if sample_len == 0 {
            return Err("sample length must be non-zero".into());
        }
        if sample_len > period {
            return Err(format!(
                "sample length {sample_len} cannot exceed the period {period}"
            ));
        }
        Ok(Sampler {
            inner,
            sample_len,
            period,
            position: 0,
            sampled: 0,
        })
    }

    /// Instructions passed through so far.
    pub fn sampled(&self) -> u64 {
        self.sampled
    }

    /// The fraction of the stream this sampler passes through.
    pub fn sampling_ratio(&self) -> f64 {
        self.sample_len as f64 / self.period as f64
    }

    /// Returns the underlying source.
    pub fn into_inner(self) -> S {
        self.inner
    }
}

impl<S: TraceSource> TraceSource for Sampler<S> {
    fn next_inst(&mut self) -> Option<Inst> {
        loop {
            let in_sample = self.position % self.period < self.sample_len;
            self.position += 1;
            let inst = self.inner.next_inst()?;
            if in_sample {
                self.sampled += 1;
                return Some(inst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;

    fn numbered(n: u64) -> VecTrace {
        VecTrace::new((0..n).map(|i| Inst::nop(i * 4)).collect())
    }

    #[test]
    fn samples_the_window_prefix_of_each_period() {
        let mut s = Sampler::new(numbered(20), 2, 5).unwrap();
        let pcs: Vec<u64> = s.iter().map(|i| i.pc / 4).collect();
        assert_eq!(pcs, vec![0, 1, 5, 6, 10, 11, 15, 16]);
        assert_eq!(s.sampled(), 8);
    }

    #[test]
    fn full_sampling_is_identity() {
        let mut s = Sampler::new(numbered(10), 5, 5).unwrap();
        assert_eq!(s.iter().count(), 10);
        assert_eq!(s.sampling_ratio(), 1.0);
    }

    #[test]
    fn ratio_and_counts_match() {
        let mut s = Sampler::new(numbered(1000), 10, 100).unwrap();
        let n = s.iter().count();
        assert_eq!(n, 100);
        assert!((s.sampling_ratio() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_degenerate_parameters() {
        assert!(Sampler::new(numbered(1), 0, 10).is_err());
        assert!(Sampler::new(numbered(1), 11, 10).is_err());
    }

    #[test]
    fn into_inner_returns_the_source() {
        let s = Sampler::new(numbered(5), 1, 2).unwrap();
        assert_eq!(s.into_inner().len(), 5);
    }
}
