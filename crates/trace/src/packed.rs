//! Packed structure-of-arrays trace storage.

use fosm_isa::{BranchInfo, Inst, Op, Reg};
use serde::{Deserialize, Serialize};

use crate::TraceSource;

/// `ops` column bit marking a taken branch.
pub(crate) const TAKEN_BIT: u8 = 0x80;
/// `dests`/`src0s`/`src1s` sentinel for an absent register slot.
pub(crate) const NO_REG: u8 = 0xFF;

/// An owned instruction trace in packed structure-of-arrays layout.
///
/// [`VecTrace`](crate::VecTrace) stores an array of `Inst` structs —
/// 56 bytes each, dominated by `Option` niches and fields most
/// instructions never use. `PackedTrace` splits the trace into flat
/// columns instead:
///
/// * `pcs` — one `u64` per instruction,
/// * `ops` — the [`Op`] index in the low bits, plus a taken-branch flag,
/// * `dests`/`src0s`/`src1s` — one byte per register slot
///   (`0xFF` = absent, preserving the exact slot structure),
/// * `mem_addrs`/`branch_targets` — side columns holding one entry per
///   memory/branch instruction, consumed positionally during replay.
///
/// That is 12 bytes per instruction plus 8 per memory or branch
/// instruction — roughly 4x smaller than the AoS form for typical
/// mixes — and replay walks each column linearly instead of
/// pointer-striding through fat structs.
///
/// Only *well-formed* instructions (see [`Inst::is_well_formed`]) can
/// be packed: the layout derives each instruction's shape from its op
/// class, so e.g. a load without an effective address has no encoding.
///
/// # Examples
///
/// ```
/// use fosm_isa::{Inst, Op, Reg};
/// use fosm_trace::{PackedTrace, TraceSource};
///
/// let insts = vec![
///     Inst::alu(0, Op::IntAlu, Reg::new(1), None, None),
///     Inst::load(4, Reg::new(2), Some(Reg::new(1)), 0x100),
/// ];
/// let packed = PackedTrace::from_insts(&insts);
/// assert_eq!(packed.len(), 2);
/// assert_eq!(packed.replay().iter().collect::<Vec<_>>(), insts);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct PackedTrace {
    pcs: Vec<u64>,
    ops: Vec<u8>,
    dests: Vec<u8>,
    src0s: Vec<u8>,
    src1s: Vec<u8>,
    mem_addrs: Vec<u64>,
    branch_targets: Vec<u64>,
}

impl PackedTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        PackedTrace::default()
    }

    /// Packs a slice of instructions.
    ///
    /// # Panics
    ///
    /// Panics if any instruction is not well-formed.
    pub fn from_insts(insts: &[Inst]) -> Self {
        let mut t = PackedTrace::new();
        for inst in insts {
            t.push(*inst);
        }
        t
    }

    /// Records up to `n` instructions from `source` into a new trace.
    ///
    /// # Panics
    ///
    /// Panics if the source yields a non-well-formed instruction.
    pub fn record<S: TraceSource>(source: &mut S, n: u64) -> Self {
        let mut t = PackedTrace::new();
        let cap = n.min(1 << 20) as usize;
        t.pcs.reserve(cap);
        t.ops.reserve(cap);
        for _ in 0..n {
            match source.next_inst() {
                Some(i) => t.push(i),
                None => break,
            }
        }
        t
    }

    /// Appends one instruction.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not well-formed — the packed layout infers
    /// shape from the op class and cannot represent malformed records.
    pub fn push(&mut self, inst: Inst) {
        assert!(
            inst.is_well_formed(),
            "cannot pack malformed instruction {inst}"
        );
        self.pcs.push(inst.pc);
        let mut op = inst.op.index() as u8;
        if inst.branch.is_some_and(|b| b.taken) {
            op |= TAKEN_BIT;
        }
        self.ops.push(op);
        self.dests.push(pack_reg(inst.dest));
        self.src0s.push(pack_reg(inst.srcs[0]));
        self.src1s.push(pack_reg(inst.srcs[1]));
        if let Some(addr) = inst.mem_addr {
            self.mem_addrs.push(addr);
        }
        if let Some(b) = inst.branch {
            self.branch_targets.push(b.target);
        }
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.pcs.len()
    }

    /// Returns `true` if the trace contains no instructions.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty()
    }

    /// A fresh zero-copy replay cursor over the whole trace.
    ///
    /// Cursors borrow the columns: any number can replay concurrently
    /// without cloning instruction data.
    pub fn replay(&self) -> PackedReplay<'_> {
        PackedReplay {
            trace: self,
            idx: 0,
            mem_idx: 0,
            br_idx: 0,
        }
    }

    /// Decodes the whole trace back into an instruction vector (for
    /// consumers that need random access, e.g. batch statistics).
    pub fn decode(&self) -> Vec<Inst> {
        self.replay().iter().collect()
    }

    /// Approximate heap footprint of the packed columns, in bytes.
    pub fn approx_bytes(&self) -> usize {
        self.pcs.len() * 8
            + self.ops.len()
            + self.dests.len()
            + self.src0s.len()
            + self.src1s.len()
            + self.mem_addrs.len() * 8
            + self.branch_targets.len() * 8
    }
}

fn pack_reg(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.number())
}

fn unpack_reg(byte: u8) -> Option<Reg> {
    if byte == NO_REG {
        None
    } else {
        Some(Reg::new(byte))
    }
}

impl From<&[Inst]> for PackedTrace {
    fn from(insts: &[Inst]) -> Self {
        PackedTrace::from_insts(insts)
    }
}

impl From<&crate::VecTrace> for PackedTrace {
    fn from(trace: &crate::VecTrace) -> Self {
        PackedTrace::from_insts(trace.insts())
    }
}

impl FromIterator<Inst> for PackedTrace {
    fn from_iter<I: IntoIterator<Item = Inst>>(iter: I) -> Self {
        let mut t = PackedTrace::new();
        for inst in iter {
            t.push(inst);
        }
        t
    }
}

impl Extend<Inst> for PackedTrace {
    fn extend<I: IntoIterator<Item = Inst>>(&mut self, iter: I) {
        for inst in iter {
            self.push(inst);
        }
    }
}

/// A borrowing replay cursor over a [`PackedTrace`].
///
/// Reconstructs each [`Inst`] on the fly from the packed columns; the
/// memory/branch side columns are consumed positionally, which is why
/// the cursor only moves forward (create a new one to replay again).
#[derive(Debug, Clone)]
pub struct PackedReplay<'a> {
    trace: &'a PackedTrace,
    idx: usize,
    mem_idx: usize,
    br_idx: usize,
}

impl PackedReplay<'_> {
    /// Instructions left to replay.
    pub fn remaining(&self) -> usize {
        self.trace.len() - self.idx
    }
}

impl TraceSource for PackedReplay<'_> {
    fn next_inst(&mut self) -> Option<Inst> {
        let t = self.trace;
        let raw = *t.ops.get(self.idx)?;
        let op = Op::ALL[(raw & !TAKEN_BIT) as usize];
        let mem_addr = if op.is_mem() {
            let addr = t.mem_addrs[self.mem_idx];
            self.mem_idx += 1;
            Some(addr)
        } else {
            None
        };
        let branch = if op.is_branch() {
            let target = t.branch_targets[self.br_idx];
            self.br_idx += 1;
            Some(BranchInfo {
                taken: raw & TAKEN_BIT != 0,
                target,
            })
        } else {
            None
        };
        let inst = Inst {
            pc: t.pcs[self.idx],
            op,
            dest: unpack_reg(t.dests[self.idx]),
            srcs: [unpack_reg(t.src0s[self.idx]), unpack_reg(t.src1s[self.idx])],
            mem_addr,
            branch,
        };
        self.idx += 1;
        Some(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::nop(0),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, Some(Reg::new(3))),
            Inst::load(8, Reg::new(2), Some(Reg::new(1)), 0x100),
            Inst::store(12, Reg::new(2), None, 0x108),
            Inst::branch(16, Op::CondBranch, Some(Reg::new(2)), true, 0x40),
            Inst::branch(20, Op::Jump, None, false, 0x44),
        ]
    }

    #[test]
    fn round_trips_every_shape() {
        let insts = sample();
        let packed = PackedTrace::from_insts(&insts);
        assert_eq!(packed.len(), insts.len());
        assert_eq!(packed.decode(), insts);
    }

    #[test]
    fn preserves_source_slot_structure() {
        // src in slot 1 with slot 0 empty must survive the round trip:
        // `sources()` flattens, so collapsing slots would still iterate
        // the same regs but change the stored shape.
        let inst = Inst::alu(0, Op::IntAlu, Reg::new(1), None, Some(Reg::new(5)));
        let packed = PackedTrace::from_insts(&[inst]);
        assert_eq!(packed.decode()[0].srcs, [None, Some(Reg::new(5))]);
    }

    #[test]
    fn replay_cursors_are_independent() {
        let packed = PackedTrace::from_insts(&sample());
        let a: Vec<Inst> = packed.replay().iter().collect();
        let mut cursor = packed.replay();
        cursor.next_inst();
        assert_eq!(cursor.remaining(), packed.len() - 1);
        let b: Vec<Inst> = packed.replay().iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn record_matches_vec_trace_record() {
        let mut origin = VecTrace::new(sample());
        let packed = PackedTrace::record(&mut origin, 4);
        assert_eq!(packed.len(), 4);
        let mut origin = VecTrace::new(sample());
        let vec = VecTrace::record(&mut origin, 4);
        assert_eq!(packed.decode(), vec.insts());
    }

    #[test]
    fn packs_several_times_smaller_than_aos() {
        let aos_bytes = |n: usize| n * std::mem::size_of::<Inst>();
        // Plain arithmetic uses only the per-instruction columns: ~4x.
        let alu: Vec<Inst> = (0..6000u64)
            .map(|i| Inst::alu(i * 4, Op::IntAlu, Reg::new(1), Some(Reg::new(2)), None))
            .collect();
        let packed = PackedTrace::from_insts(&alu);
        assert!(
            packed.approx_bytes() * 4 <= aos_bytes(alu.len()),
            "ALU-only: packed {} bytes vs AoS {} bytes",
            packed.approx_bytes(),
            aos_bytes(alu.len())
        );
        // A mem/branch-heavy mix pays for the side columns but still
        // packs well over 2x smaller.
        let mixed: Vec<Inst> = sample().into_iter().cycle().take(6000).collect();
        let packed = PackedTrace::from_insts(&mixed);
        assert!(
            packed.approx_bytes() * 2 < aos_bytes(mixed.len()),
            "mixed: packed {} bytes vs AoS {} bytes",
            packed.approx_bytes(),
            aos_bytes(mixed.len())
        );
    }

    #[test]
    #[should_panic(expected = "malformed")]
    fn rejects_malformed_instructions() {
        let mut bad = Inst::load(0, Reg::new(1), None, 0x10);
        bad.mem_addr = None;
        let mut t = PackedTrace::new();
        t.push(bad);
    }

    #[test]
    fn serde_round_trip() {
        let packed = PackedTrace::from_insts(&sample());
        let json = serde_json::to_string(&packed).expect("serializes");
        let back: PackedTrace = serde_json::from_str(&json).expect("deserializes");
        assert_eq!(back, packed);
    }
}
