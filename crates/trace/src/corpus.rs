//! On-disk trace corpus files (`FOSMTRC1`) with chunk-paged replay.
//!
//! [`PackedTrace`](crate::PackedTrace) keeps a whole trace resident;
//! a corpus file is the same structure-of-arrays layout persisted to
//! disk so that traces far larger than RAM can be profiled. The format
//! is **versioned, sectioned, and checksummed**:
//!
//! ```text
//! magic          8 bytes   b"FOSMTRC1"
//! inst_count     u64       instructions in the trace
//! mem_count      u64       entries in the mem_addrs side column
//! branch_count   u64       entries in the branch_targets side column
//! section table  7 x 24    {offset u64, byte_len u64, checksum u64}
//! header_fnv     u64       FNV-1a 64 of every preceding header byte
//! sections       ...       one contiguous byte run per SoA column
//! ```
//!
//! All integers are little-endian. The seven sections mirror the
//! packed columns in declaration order — `pcs`, `ops`, `dests`,
//! `src0s`, `src1s`, `mem_addrs`, `branch_targets` — each carrying its
//! own FNV-1a 64 checksum, so every byte of the file is covered either
//! by the header checksum or by exactly one section checksum: any
//! single-byte corruption is detectable by [`CorpusFile::verify`].
//!
//! * [`CorpusWriter`] builds a corpus **out of core**: each column is
//!   streamed to its own spill file while checksums accumulate
//!   incrementally, and `finish` assembles the final file atomically
//!   (temp + rename) — peak memory stays at buffer size regardless of
//!   trace length.
//! * [`CorpusFile`] opens and validates a corpus (header checksum,
//!   count/length consistency, section bounds) without reading the
//!   payload.
//! * [`FileReplay`] is the paged replay cursor: it implements
//!   [`TraceSource`] by reading fixed-size column pages on demand, so
//!   resident memory is O(page) — about 1 MiB — no matter how long the
//!   trace is. Decoding is bit-identical to
//!   [`PackedReplay`](crate::PackedReplay) over the same instructions.
//!
//! Observability: opening a corpus bumps the `corpus.open` counter and
//! every page fetch bumps `corpus.pages`.

use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use fosm_isa::{BranchInfo, Inst, Op, Reg};

use crate::packed::{NO_REG, TAKEN_BIT};
use crate::{PackedTrace, TraceSource};

/// Corpus container magic. Distinct from the streaming trace file
/// magic (`FOSMTRC\x01`, see [`crate::io::MAGIC`]) in the last byte,
/// so the two formats can be told apart by sniffing 8 bytes.
pub const CORPUS_MAGIC: [u8; 8] = *b"FOSMTRC1";

/// Number of column sections in a corpus file.
pub const NUM_SECTIONS: usize = 7;

/// Fixed header size: magic + three counts + section table + header
/// checksum.
pub const HEADER_LEN: usize = 8 + 3 * 8 + NUM_SECTIONS * 24 + 8;

/// Section display names, in file order.
const SECTION_NAMES: [&str; NUM_SECTIONS] = [
    "pcs",
    "ops",
    "dests",
    "src0s",
    "src1s",
    "mem_addrs",
    "branch_targets",
];

/// Section indices, in file order (mirroring the packed columns).
const S_PCS: usize = 0;
const S_OPS: usize = 1;
const S_DESTS: usize = 2;
const S_SRC0S: usize = 3;
const S_SRC1S: usize = 4;
const S_MEM: usize = 5;
const S_BR: usize = 6;

/// Instructions per main-column page of a [`FileReplay`].
const PAGE_INSTS: u64 = 1 << 16;

/// Records per side-column page of a [`FileReplay`].
const SIDE_PAGE: u64 = 1 << 15;

/// Chunk size used by [`CorpusFile::verify`]'s streaming re-read.
const VERIFY_CHUNK: usize = 1 << 20;

/// Incremental FNV-1a 64 state (same function as the disk cache's
/// content addressing; see its published-vector tests).
#[derive(Debug, Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        let mut hash = self.0;
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = hash;
    }

    fn finish(self) -> u64 {
        self.0
    }
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.update(bytes);
    f.finish()
}

/// Why a corpus file could not be opened, read, or verified.
#[derive(Debug)]
pub enum CorpusError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The file is not a structurally valid `FOSMTRC1` corpus, or its
    /// contents fail validation; the message says exactly why.
    Format(String),
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::Io(e) => write!(f, "corpus I/O error: {e}"),
            CorpusError::Format(why) => write!(f, "corpus format error: {why}"),
        }
    }
}

impl std::error::Error for CorpusError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CorpusError::Io(e) => Some(e),
            CorpusError::Format(_) => None,
        }
    }
}

impl From<io::Error> for CorpusError {
    fn from(e: io::Error) -> Self {
        CorpusError::Io(e)
    }
}

/// One section-table row: where a column lives and what it hashes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Section {
    /// Byte offset of the section from the start of the file.
    pub offset: u64,
    /// Section length in bytes.
    pub byte_len: u64,
    /// FNV-1a 64 of the section bytes.
    pub checksum: u64,
}

/// Reads exactly `buf.len()` bytes at `offset` without disturbing any
/// shared cursor (positional I/O on Unix; concurrent [`FileReplay`]
/// cursors over one [`CorpusFile`] are safe there).
#[cfg(unix)]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::os::unix::fs::FileExt;
    file.read_exact_at(buf, offset)
}

/// Portable fallback: seek-and-read through the shared cursor (replay
/// cursors must not be interleaved on one `CorpusFile` here).
#[cfg(not(unix))]
fn read_exact_at(file: &File, buf: &mut [u8], offset: u64) -> io::Result<()> {
    use std::io::Seek;
    let mut f = file;
    f.seek(io::SeekFrom::Start(offset))?;
    f.read_exact(buf)
}

/// Summary returned by [`CorpusWriter::finish`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusSummary {
    /// Instructions written.
    pub instructions: u64,
    /// Entries in the memory-address side column.
    pub mem_records: u64,
    /// Entries in the branch-target side column.
    pub branch_records: u64,
    /// Final file size in bytes.
    pub file_bytes: u64,
    /// Content digest (the header checksum; see
    /// [`CorpusFile::digest`]).
    pub digest: u64,
}

/// One column being spilled to its own temp file during a build.
#[derive(Debug)]
struct SpillColumn {
    path: PathBuf,
    file: io::BufWriter<File>,
    fnv: Fnv,
    bytes: u64,
}

impl SpillColumn {
    fn create(path: PathBuf) -> io::Result<SpillColumn> {
        let file = io::BufWriter::new(File::create(&path)?);
        Ok(SpillColumn {
            path,
            file,
            fnv: Fnv::new(),
            bytes: 0,
        })
    }

    fn write(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.file.write_all(bytes)?;
        self.fnv.update(bytes);
        self.bytes += bytes.len() as u64;
        Ok(())
    }
}

/// Streaming, out-of-core corpus builder.
///
/// Instructions are encoded column-wise into per-section spill files
/// as they arrive; [`finish`](CorpusWriter::finish) assembles the
/// final `FOSMTRC1` file atomically (written to a temp name in the
/// destination directory, then renamed). Peak resident memory is the
/// write-buffer size — independent of trace length.
///
/// # Examples
///
/// ```no_run
/// use fosm_isa::{Inst, Op, Reg};
/// use fosm_trace::CorpusWriter;
///
/// let mut w = CorpusWriter::create("trace.fct").unwrap();
/// w.push(&Inst::alu(0, Op::IntAlu, Reg::new(1), None, None)).unwrap();
/// let summary = w.finish().unwrap();
/// assert_eq!(summary.instructions, 1);
/// ```
#[derive(Debug)]
pub struct CorpusWriter {
    out: PathBuf,
    spills: Vec<SpillColumn>,
    insts: u64,
    mems: u64,
    branches: u64,
    finished: bool,
}

impl CorpusWriter {
    /// Starts a corpus build targeting `out`. Spill files named
    /// `<out>.sN.<pid>` are created beside the destination and removed
    /// by `finish` (or on drop).
    ///
    /// # Errors
    ///
    /// Propagates spill-file creation failures.
    pub fn create(out: impl Into<PathBuf>) -> io::Result<CorpusWriter> {
        let out = out.into();
        let pid = std::process::id();
        let mut spills = Vec::with_capacity(NUM_SECTIONS);
        for i in 0..NUM_SECTIONS {
            let mut name = out.as_os_str().to_os_string();
            name.push(format!(".s{i}.{pid}"));
            spills.push(SpillColumn::create(PathBuf::from(name))?);
        }
        Ok(CorpusWriter {
            out,
            spills,
            insts: 0,
            mems: 0,
            branches: 0,
            finished: false,
        })
    }

    /// Instructions written so far.
    pub fn len(&self) -> u64 {
        self.insts
    }

    /// Returns `true` if nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.insts == 0
    }

    /// Appends one instruction, encoded exactly like
    /// [`PackedTrace::push`].
    ///
    /// # Errors
    ///
    /// Propagates spill-file write failures.
    ///
    /// # Panics
    ///
    /// Panics if `inst` is not well-formed — the packed layout infers
    /// shape from the op class and cannot represent malformed records.
    pub fn push(&mut self, inst: &Inst) -> io::Result<()> {
        assert!(
            inst.is_well_formed(),
            "cannot pack malformed instruction {inst}"
        );
        self.spills[S_PCS].write(&inst.pc.to_le_bytes())?;
        let mut op = inst.op.index() as u8;
        if inst.branch.is_some_and(|b| b.taken) {
            op |= TAKEN_BIT;
        }
        self.spills[S_OPS].write(&[op])?;
        self.spills[S_DESTS].write(&[pack_reg(inst.dest)])?;
        self.spills[S_SRC0S].write(&[pack_reg(inst.srcs[0])])?;
        self.spills[S_SRC1S].write(&[pack_reg(inst.srcs[1])])?;
        if let Some(addr) = inst.mem_addr {
            self.spills[S_MEM].write(&addr.to_le_bytes())?;
            self.mems += 1;
        }
        if let Some(b) = inst.branch {
            self.spills[S_BR].write(&b.target.to_le_bytes())?;
            self.branches += 1;
        }
        self.insts += 1;
        Ok(())
    }

    /// Streams up to `n` instructions from `source` into the corpus,
    /// returning how many were written.
    ///
    /// # Errors
    ///
    /// As [`push`](Self::push).
    pub fn append_source<S: TraceSource>(&mut self, source: &mut S, n: u64) -> io::Result<u64> {
        let mut written = 0;
        for _ in 0..n {
            match source.next_inst() {
                Some(inst) => {
                    self.push(&inst)?;
                    written += 1;
                }
                None => break,
            }
        }
        Ok(written)
    }

    /// Assembles the final file: header (with per-section and header
    /// checksums), then each column section, written to `<out>.tmp.pid`
    /// and renamed into place. Spill files are removed.
    ///
    /// # Errors
    ///
    /// Propagates assembly I/O failures; spill files are still cleaned
    /// up.
    pub fn finish(mut self) -> io::Result<CorpusSummary> {
        self.finished = true;
        let result = self.assemble();
        for spill in &self.spills {
            let _ = std::fs::remove_file(&spill.path);
        }
        result
    }

    fn assemble(&mut self) -> io::Result<CorpusSummary> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(&CORPUS_MAGIC);
        header.extend_from_slice(&self.insts.to_le_bytes());
        header.extend_from_slice(&self.mems.to_le_bytes());
        header.extend_from_slice(&self.branches.to_le_bytes());
        let mut offset = HEADER_LEN as u64;
        for spill in &mut self.spills {
            spill.file.flush()?;
            header.extend_from_slice(&offset.to_le_bytes());
            header.extend_from_slice(&spill.bytes.to_le_bytes());
            header.extend_from_slice(&spill.fnv.finish().to_le_bytes());
            offset += spill.bytes;
        }
        let digest = fnv1a64(&header);
        header.extend_from_slice(&digest.to_le_bytes());
        debug_assert_eq!(header.len(), HEADER_LEN);

        let mut tmp_name = self.out.as_os_str().to_os_string();
        tmp_name.push(format!(".tmp.{}", std::process::id()));
        let tmp = PathBuf::from(tmp_name);
        let write = (|| -> io::Result<()> {
            let mut out = io::BufWriter::new(File::create(&tmp)?);
            out.write_all(&header)?;
            for spill in &self.spills {
                let mut src = File::open(&spill.path)?;
                io::copy(&mut src, &mut out)?;
            }
            out.flush()?;
            Ok(())
        })();
        if let Err(e) = write {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        std::fs::rename(&tmp, &self.out)?;
        Ok(CorpusSummary {
            instructions: self.insts,
            mem_records: self.mems,
            branch_records: self.branches,
            file_bytes: offset,
            digest,
        })
    }
}

impl Drop for CorpusWriter {
    fn drop(&mut self) {
        if !self.finished {
            for spill in &self.spills {
                let _ = std::fs::remove_file(&spill.path);
            }
        }
    }
}

fn pack_reg(reg: Option<Reg>) -> u8 {
    reg.map_or(NO_REG, |r| r.number())
}

/// Writes a whole in-memory [`PackedTrace`] as a corpus file at
/// `path`. Convenience wrapper over [`CorpusWriter`].
///
/// # Errors
///
/// Propagates writer I/O failures.
pub fn write_corpus(path: impl Into<PathBuf>, trace: &PackedTrace) -> io::Result<CorpusSummary> {
    let mut writer = CorpusWriter::create(path)?;
    let mut replay = trace.replay();
    while let Some(inst) = replay.next_inst() {
        writer.push(&inst)?;
    }
    writer.finish()
}

/// An opened, header-validated `FOSMTRC1` corpus file.
///
/// Opening validates the magic, the header checksum, the section
/// table's bounds against the file size, and the column lengths
/// against the instruction/record counts — without reading any column
/// data. [`verify`](CorpusFile::verify) additionally re-reads every
/// section in chunks and checks the content checksums.
#[derive(Debug)]
pub struct CorpusFile {
    file: File,
    path: PathBuf,
    file_bytes: u64,
    insts: u64,
    mems: u64,
    branches: u64,
    sections: [Section; NUM_SECTIONS],
    digest: u64,
}

impl CorpusFile {
    /// Opens and structurally validates a corpus file.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`CorpusError::Format`] when the header is not
    /// a self-consistent `FOSMTRC1` header.
    pub fn open(path: impl Into<PathBuf>) -> Result<CorpusFile, CorpusError> {
        let path = path.into();
        let file = File::open(&path)?;
        let file_bytes = file.metadata()?.len();
        if file_bytes < HEADER_LEN as u64 {
            return Err(CorpusError::Format(format!(
                "file is {file_bytes} bytes, shorter than the {HEADER_LEN}-byte header"
            )));
        }
        let mut header = [0u8; HEADER_LEN];
        read_exact_at(&file, &mut header, 0)?;
        if header[..8] != CORPUS_MAGIC {
            return Err(CorpusError::Format(format!(
                "bad magic {:02x?} (want {:02x?} = b\"FOSMTRC1\")",
                &header[..8],
                CORPUS_MAGIC
            )));
        }
        let digest = read_u64(&header, HEADER_LEN - 8);
        if fnv1a64(&header[..HEADER_LEN - 8]) != digest {
            return Err(CorpusError::Format(
                "header checksum mismatch (corrupt or truncated header)".to_string(),
            ));
        }
        let insts = read_u64(&header, 8);
        let mems = read_u64(&header, 16);
        let branches = read_u64(&header, 24);
        let mut sections = [Section {
            offset: 0,
            byte_len: 0,
            checksum: 0,
        }; NUM_SECTIONS];
        let mut expect_offset = HEADER_LEN as u64;
        for (i, section) in sections.iter_mut().enumerate() {
            let base = 32 + i * 24;
            *section = Section {
                offset: read_u64(&header, base),
                byte_len: read_u64(&header, base + 8),
                checksum: read_u64(&header, base + 16),
            };
            if section.offset != expect_offset {
                return Err(CorpusError::Format(format!(
                    "section {} ({}) starts at {} but the previous section ends at {}",
                    i, SECTION_NAMES[i], section.offset, expect_offset
                )));
            }
            expect_offset = section
                .offset
                .checked_add(section.byte_len)
                .ok_or_else(|| {
                    CorpusError::Format(format!(
                        "section {} ({}) extent overflows",
                        i, SECTION_NAMES[i]
                    ))
                })?;
        }
        if expect_offset != file_bytes {
            return Err(CorpusError::Format(format!(
                "sections end at {expect_offset} but the file is {file_bytes} bytes"
            )));
        }
        for (i, want) in [
            insts * 8, // pcs
            insts,     // ops
            insts,     // dests
            insts,     // src0s
            insts,     // src1s
            mems * 8,
            branches * 8,
        ]
        .into_iter()
        .enumerate()
        {
            if sections[i].byte_len != want {
                return Err(CorpusError::Format(format!(
                    "section {} ({}) is {} bytes, but the counts require {}",
                    i, SECTION_NAMES[i], sections[i].byte_len, want
                )));
            }
        }
        if mems > insts || branches > insts {
            return Err(CorpusError::Format(format!(
                "side-column counts ({mems} mem, {branches} branch) exceed {insts} instructions"
            )));
        }
        fosm_obs::counter_add("corpus.open", 1);
        Ok(CorpusFile {
            file,
            path,
            file_bytes,
            insts,
            mems,
            branches,
            sections,
            digest,
        })
    }

    /// Instructions in the corpus.
    pub fn len(&self) -> u64 {
        self.insts
    }

    /// Returns `true` if the corpus holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts == 0
    }

    /// Entries in the memory-address side column.
    pub fn mem_records(&self) -> u64 {
        self.mems
    }

    /// Entries in the branch-target side column.
    pub fn branch_records(&self) -> u64 {
        self.branches
    }

    /// Total file size in bytes.
    pub fn file_bytes(&self) -> u64 {
        self.file_bytes
    }

    /// The path the corpus was opened from.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The section table, in file order.
    pub fn sections(&self) -> &[Section; NUM_SECTIONS] {
        &self.sections
    }

    /// Display name of section `i` (file order).
    pub fn section_name(i: usize) -> &'static str {
        SECTION_NAMES[i]
    }

    /// Content digest: the stored header checksum. Every header field
    /// (counts, offsets, lengths, per-section checksums) is a pure
    /// function of the trace content, so this one value identifies the
    /// contents.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Cache identity for this corpus: path, size, and content digest.
    /// Used by artifact-store keys so a replaced file can never serve
    /// stale derived artifacts.
    pub fn identity(&self) -> String {
        format!(
            "{}@{}#{:016x}",
            self.path.display(),
            self.file_bytes,
            self.digest
        )
    }

    /// Re-reads every section in chunks and checks each content
    /// checksum, with O(chunk) resident memory.
    ///
    /// # Errors
    ///
    /// I/O failures, or [`CorpusError::Format`] naming the first
    /// section whose checksum does not match.
    pub fn verify(&self) -> Result<(), CorpusError> {
        let mut buf = vec![0u8; VERIFY_CHUNK];
        for (i, section) in self.sections.iter().enumerate() {
            let mut fnv = Fnv::new();
            let mut done = 0u64;
            while done < section.byte_len {
                let take = ((section.byte_len - done) as usize).min(VERIFY_CHUNK);
                read_exact_at(&self.file, &mut buf[..take], section.offset + done)?;
                fnv.update(&buf[..take]);
                done += take as u64;
            }
            if fnv.finish() != section.checksum {
                return Err(CorpusError::Format(format!(
                    "section {} ({}) checksum mismatch: stored {:016x}, computed {:016x}",
                    i,
                    SECTION_NAMES[i],
                    section.checksum,
                    fnv.finish()
                )));
            }
        }
        Ok(())
    }

    /// A fresh paged replay cursor over the whole corpus. Any number
    /// of cursors can replay concurrently (positional reads share the
    /// file handle without a shared seek position on Unix).
    pub fn replay(&self) -> FileReplay<'_> {
        FileReplay::new(self)
    }

    /// Decodes the whole corpus into an in-memory [`PackedTrace`]
    /// (test/convenience path — the point of the format is that the
    /// hot paths never need this).
    ///
    /// # Errors
    ///
    /// Any replay error (I/O or undecodable column bytes).
    pub fn decode(&self) -> Result<PackedTrace, CorpusError> {
        let mut replay = self.replay();
        let mut trace = PackedTrace::new();
        while let Some(inst) = replay.next_inst() {
            trace.push(inst);
        }
        match replay.take_error() {
            Some(e) => Err(e),
            None => Ok(trace),
        }
    }

    /// Reads `buf.len()` bytes from section `sec` starting `at` bytes
    /// into the section.
    fn read_section(&self, sec: usize, at: u64, buf: &mut [u8]) -> Result<(), CorpusError> {
        debug_assert!(at + buf.len() as u64 <= self.sections[sec].byte_len);
        read_exact_at(&self.file, buf, self.sections[sec].offset + at)?;
        Ok(())
    }
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8 bytes"))
}

/// A paged cursor over one side column (`mem_addrs` or
/// `branch_targets`), consumed positionally like
/// [`PackedReplay`](crate::PackedReplay)'s side indices.
#[derive(Debug)]
struct SideCursor {
    section: usize,
    total: u64,
    next: u64,
    page_start: u64,
    page_len: u64,
    buf: Vec<u8>,
}

impl SideCursor {
    fn new(section: usize, total: u64) -> SideCursor {
        SideCursor {
            section,
            total,
            next: 0,
            page_start: 0,
            page_len: 0,
            buf: Vec::new(),
        }
    }

    fn take(&mut self, corpus: &CorpusFile) -> Result<u64, CorpusError> {
        let idx = self.next;
        if idx >= self.total {
            return Err(CorpusError::Format(format!(
                "{} side column exhausted: the op stream demands more than {} records",
                SECTION_NAMES[self.section], self.total
            )));
        }
        if idx >= self.page_start + self.page_len || self.page_len == 0 {
            let len = (self.total - idx).min(SIDE_PAGE);
            self.buf.resize(len as usize * 8, 0);
            corpus.read_section(self.section, idx * 8, &mut self.buf)?;
            self.page_start = idx;
            self.page_len = len;
            fosm_obs::counter_add("corpus.pages", 1);
        }
        let k = (idx - self.page_start) as usize * 8;
        self.next = idx + 1;
        Ok(read_u64(&self.buf, k))
    }
}

/// Chunk-paged replay cursor over a [`CorpusFile`].
///
/// Implements [`TraceSource`] with O(page) resident memory: the five
/// per-instruction columns are fetched [`PAGE_INSTS`] instructions at
/// a time, the two side columns [`SIDE_PAGE`] records at a time —
/// about 1 MiB total, independent of trace length.
///
/// Errors (I/O failures, or column bytes that do not decode to a valid
/// instruction) end the stream; check [`take_error`] after draining —
/// the same contract as [`crate::io::TraceFileReader`].
///
/// [`PAGE_INSTS`]: self
/// [`SIDE_PAGE`]: self
/// [`take_error`]: FileReplay::take_error
#[derive(Debug)]
pub struct FileReplay<'a> {
    corpus: &'a CorpusFile,
    idx: u64,
    page_start: u64,
    page_len: u64,
    pcs: Vec<u8>,
    ops: Vec<u8>,
    dests: Vec<u8>,
    src0s: Vec<u8>,
    src1s: Vec<u8>,
    mem: SideCursor,
    br: SideCursor,
    error: Option<CorpusError>,
}

impl<'a> FileReplay<'a> {
    fn new(corpus: &'a CorpusFile) -> FileReplay<'a> {
        FileReplay {
            corpus,
            idx: 0,
            page_start: 0,
            page_len: 0,
            pcs: Vec::new(),
            ops: Vec::new(),
            dests: Vec::new(),
            src0s: Vec::new(),
            src1s: Vec::new(),
            mem: SideCursor::new(S_MEM, corpus.mems),
            br: SideCursor::new(S_BR, corpus.branches),
            error: None,
        }
    }

    /// Instructions left to replay (zero after an error).
    pub fn remaining(&self) -> u64 {
        if self.error.is_some() {
            0
        } else {
            self.corpus.insts - self.idx
        }
    }

    /// Takes the error that ended the stream early, if any. A stream
    /// that returned `None` with no error here was drained completely.
    pub fn take_error(&mut self) -> Option<CorpusError> {
        self.error.take()
    }

    fn refill(&mut self, at: u64) -> Result<(), CorpusError> {
        let len = (self.corpus.insts - at).min(PAGE_INSTS);
        self.pcs.resize(len as usize * 8, 0);
        self.ops.resize(len as usize, 0);
        self.dests.resize(len as usize, 0);
        self.src0s.resize(len as usize, 0);
        self.src1s.resize(len as usize, 0);
        self.corpus.read_section(S_PCS, at * 8, &mut self.pcs)?;
        self.corpus.read_section(S_OPS, at, &mut self.ops)?;
        self.corpus.read_section(S_DESTS, at, &mut self.dests)?;
        self.corpus.read_section(S_SRC0S, at, &mut self.src0s)?;
        self.corpus.read_section(S_SRC1S, at, &mut self.src1s)?;
        self.page_start = at;
        self.page_len = len;
        fosm_obs::counter_add("corpus.pages", 1);
        Ok(())
    }

    fn decode_next(&mut self) -> Result<Option<Inst>, CorpusError> {
        if self.idx >= self.corpus.insts {
            return Ok(None);
        }
        if self.idx >= self.page_start + self.page_len || self.page_len == 0 {
            self.refill(self.idx)?;
        }
        let k = (self.idx - self.page_start) as usize;
        let raw = self.ops[k];
        let op = *Op::ALL
            .get((raw & !TAKEN_BIT) as usize)
            .ok_or_else(|| bad_byte("op", self.idx, raw))?;
        let mem_addr = if op.is_mem() {
            Some(self.mem.take(self.corpus)?)
        } else {
            None
        };
        let branch = if op.is_branch() {
            Some(BranchInfo {
                taken: raw & TAKEN_BIT != 0,
                target: self.br.take(self.corpus)?,
            })
        } else {
            None
        };
        let inst = Inst {
            pc: read_u64(&self.pcs, k * 8),
            op,
            dest: unpack_reg("dest", self.idx, self.dests[k])?,
            srcs: [
                unpack_reg("src0", self.idx, self.src0s[k])?,
                unpack_reg("src1", self.idx, self.src1s[k])?,
            ],
            mem_addr,
            branch,
        };
        self.idx += 1;
        Ok(Some(inst))
    }
}

fn bad_byte(column: &str, idx: u64, raw: u8) -> CorpusError {
    CorpusError::Format(format!(
        "instruction {idx}: {column} byte {raw:#04x} does not decode (corrupt column data)"
    ))
}

fn unpack_reg(column: &str, idx: u64, byte: u8) -> Result<Option<Reg>, CorpusError> {
    if byte == NO_REG {
        return Ok(None);
    }
    match Reg::try_new(byte) {
        Some(reg) => Ok(Some(reg)),
        None => Err(bad_byte(column, idx, byte)),
    }
}

impl TraceSource for FileReplay<'_> {
    fn next_inst(&mut self) -> Option<Inst> {
        if self.error.is_some() {
            return None;
        }
        match self.decode_next() {
            Ok(inst) => inst,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::VecTrace;

    fn sample() -> Vec<Inst> {
        vec![
            Inst::nop(0),
            Inst::alu(4, Op::IntAlu, Reg::new(1), None, Some(Reg::new(3))),
            Inst::load(8, Reg::new(2), Some(Reg::new(1)), 0x100),
            Inst::store(12, Reg::new(2), None, 0x108),
            Inst::branch(16, Op::CondBranch, Some(Reg::new(2)), true, 0x40),
            Inst::branch(20, Op::Jump, None, false, 0x44),
        ]
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "fosm-corpus-test-{}-{name}.fct",
            std::process::id()
        ))
    }

    #[test]
    fn write_open_replay_round_trip() {
        let insts = sample();
        let path = temp_path("roundtrip");
        let summary = write_corpus(&path, &PackedTrace::from_insts(&insts)).expect("write");
        assert_eq!(summary.instructions, 6);
        assert_eq!(summary.mem_records, 2);
        assert_eq!(summary.branch_records, 2);

        let corpus = CorpusFile::open(&path).expect("open");
        assert_eq!(corpus.len(), 6);
        assert_eq!(corpus.digest(), summary.digest);
        assert_eq!(corpus.file_bytes(), summary.file_bytes);
        corpus.verify().expect("verify");
        let mut replay = corpus.replay();
        let decoded: Vec<Inst> = replay.iter().collect();
        assert!(replay.take_error().is_none());
        assert_eq!(decoded, insts);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn empty_corpus_is_valid() {
        let path = temp_path("empty");
        let w = CorpusWriter::create(&path).expect("create");
        assert!(w.is_empty());
        w.finish().expect("finish");
        let corpus = CorpusFile::open(&path).expect("open");
        assert!(corpus.is_empty());
        corpus.verify().expect("verify");
        assert_eq!(corpus.replay().iter().count(), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn streaming_build_matches_whole_trace_write() {
        let insts: Vec<Inst> = sample().into_iter().cycle().take(1000).collect();
        let a = temp_path("stream-a");
        let b = temp_path("stream-b");
        write_corpus(&a, &PackedTrace::from_insts(&insts)).expect("write");
        let mut w = CorpusWriter::create(&b).expect("create");
        let n = w
            .append_source(&mut VecTrace::new(insts), u64::MAX)
            .expect("append");
        assert_eq!(n, 1000);
        w.finish().expect("finish");
        assert_eq!(
            std::fs::read(&a).expect("a"),
            std::fs::read(&b).expect("b"),
            "the two build paths must produce identical bytes"
        );
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn paged_replay_crosses_page_boundaries_identically() {
        // More instructions than one side page so the cursors repage.
        let insts: Vec<Inst> = sample()
            .into_iter()
            .cycle()
            .take(2 * SIDE_PAGE as usize + 7)
            .collect();
        let packed = PackedTrace::from_insts(&insts);
        let path = temp_path("pages");
        write_corpus(&path, &packed).expect("write");
        let corpus = CorpusFile::open(&path).expect("open");
        let mut file_replay = corpus.replay();
        let mut mem_replay = packed.replay();
        loop {
            let a = file_replay.next_inst();
            let b = mem_replay.next_inst();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert!(file_replay.take_error().is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn open_rejects_wrong_magic_and_truncation() {
        let path = temp_path("badmagic");
        write_corpus(&path, &PackedTrace::from_insts(&sample())).expect("write");
        let good = std::fs::read(&path).expect("read");

        let mut bad = good.clone();
        bad[7] = b'2';
        std::fs::write(&path, &bad).expect("write bad");
        assert!(matches!(
            CorpusFile::open(&path),
            Err(CorpusError::Format(why)) if why.contains("magic")
        ));

        std::fs::write(&path, &good[..good.len() - 3]).expect("truncate");
        assert!(CorpusFile::open(&path).is_err(), "truncated file must fail");

        std::fs::write(&path, &good[..40]).expect("behead");
        assert!(matches!(
            CorpusFile::open(&path),
            Err(CorpusError::Format(why)) if why.contains("header")
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn verify_catches_a_flipped_section_byte() {
        let path = temp_path("flip");
        write_corpus(&path, &PackedTrace::from_insts(&sample())).expect("write");
        let mut bytes = std::fs::read(&path).expect("read");
        // Flip a bit in the first section's data (just past the header).
        bytes[HEADER_LEN + 2] ^= 0x10;
        std::fs::write(&path, &bytes).expect("tamper");
        let corpus = CorpusFile::open(&path).expect("open still passes");
        assert!(matches!(
            corpus.verify(),
            Err(CorpusError::Format(why)) if why.contains("checksum mismatch")
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_reports_undecodable_bytes_instead_of_panicking() {
        let path = temp_path("badop");
        write_corpus(&path, &PackedTrace::from_insts(&sample())).expect("write");
        let corpus = CorpusFile::open(&path).expect("open");
        let ops_off = corpus.sections()[S_OPS].offset as usize;
        drop(corpus);
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[ops_off] = 0x7F; // op index 127: far out of range
        std::fs::write(&path, &bytes).expect("tamper");
        let corpus = CorpusFile::open(&path).expect("open");
        let mut replay = corpus.replay();
        assert_eq!(replay.next_inst(), None);
        assert!(matches!(
            replay.take_error(),
            Some(CorpusError::Format(why)) if why.contains("op byte")
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identity_changes_with_content() {
        let path_a = temp_path("ident-a");
        let path_b = temp_path("ident-b");
        let mut insts = sample();
        write_corpus(&path_a, &PackedTrace::from_insts(&insts)).expect("write");
        insts[0].pc = 0x1234;
        write_corpus(&path_b, &PackedTrace::from_insts(&insts)).expect("write");
        let a = CorpusFile::open(&path_a).expect("open");
        let b = CorpusFile::open(&path_b).expect("open");
        assert_ne!(a.digest(), b.digest());
        assert_ne!(a.identity(), b.identity());
        let _ = std::fs::remove_file(&path_a);
        let _ = std::fs::remove_file(&path_b);
    }
}
