//! The simple flag-driven superscalar simulator.

use std::collections::VecDeque;

use fosm_isa::{LatencyTable, Op};
use serde::{Deserialize, Serialize};

use crate::{SynthInst, SynthesizedTrace};

/// Results of a statistical simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct StatReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Retired synthetic instructions.
    pub instructions: u64,
    /// Mispredicted branches encountered.
    pub mispredicts: u64,
    /// Long data misses encountered.
    pub dcache_long_misses: u64,
}

impl StatReport {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// The simple out-of-order simulator statistical simulation drives with
/// synthetic traces (paper refs. \[8–11\]).
///
/// Identical machine shape to the detailed simulator — front-end pipe,
/// issue window, separate ROB, oldest-first issue, in-order retire —
/// but miss events come from the synthetic instructions' flags instead
/// of cache and predictor state, and dependences come from pre-drawn
/// distances instead of register names.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatMachine {
    /// Machine width (fetch/dispatch/issue/retire).
    pub width: u32,
    /// Issue-window entries.
    pub win_size: u32,
    /// ROB entries.
    pub rob_size: u32,
    /// Front-end depth ∆P.
    pub pipe_depth: u32,
    /// L2 latency (∆I / short misses).
    pub l2_latency: u32,
    /// Memory latency (∆D / long misses).
    pub mem_latency: u32,
    /// Functional-unit latencies.
    pub latencies: LatencyTable,
}

impl StatMachine {
    /// The paper's baseline machine.
    pub fn baseline() -> Self {
        StatMachine {
            width: 4,
            win_size: 48,
            rob_size: 128,
            pipe_depth: 5,
            l2_latency: 8,
            mem_latency: 200,
            latencies: LatencyTable::default(),
        }
    }

    /// Runs `n` synthetic instructions and reports the result.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero width or sizes).
    pub fn run(&self, synth: &mut SynthesizedTrace, n: u64) -> StatReport {
        assert!(self.width > 0 && self.win_size > 0 && self.rob_size >= self.win_size);
        let width = self.width as usize;
        let mut report = StatReport::default();

        struct WinEntry {
            seq: u64,
            producers: [u64; 2], // u64::MAX = none
            comp_latency: u32,
            mispredicted: bool,
            issued: bool,
        }
        struct PipeEntry {
            ready: u64,
            inst: SynthInst,
            seq: u64,
        }

        let mut pipe: VecDeque<PipeEntry> = VecDeque::new();
        let mut window: Vec<WinEntry> = Vec::with_capacity(self.win_size as usize);
        let mut rob: VecDeque<(bool, u64)> = VecDeque::new(); // (issued, done)
        let mut rob_front_seq = 0u64;
        let mut done_by_seq: Vec<u64> = Vec::new();
        let mut fetched = 0u64;
        let mut next_seq = 0u64;
        let mut fetch_stall_until = 0u64;
        let mut blocked_on_branch = false;
        let mut cycle = 0u64;

        loop {
            // retire
            let mut retired = 0;
            while retired < width {
                match rob.front() {
                    Some(&(true, done)) if done <= cycle => {
                        rob.pop_front();
                        rob_front_seq += 1;
                        report.instructions += 1;
                        retired += 1;
                    }
                    _ => break,
                }
            }
            // issue
            let mut issued = 0;
            for e in window.iter_mut() {
                if issued >= width {
                    break;
                }
                let ready = e.producers.iter().all(|&p| {
                    p == u64::MAX || done_by_seq.get(p as usize).is_some_and(|&d| d <= cycle)
                });
                if !ready {
                    continue;
                }
                e.issued = true;
                issued += 1;
                let done = cycle + e.comp_latency as u64;
                done_by_seq[e.seq as usize] = done;
                let idx = (e.seq - rob_front_seq) as usize;
                rob[idx] = (true, done);
                if e.mispredicted {
                    blocked_on_branch = false;
                    fetch_stall_until = fetch_stall_until.max(done);
                }
            }
            if issued > 0 {
                window.retain(|e| !e.issued);
            }
            // dispatch
            let mut dispatched = 0;
            while dispatched < width
                && rob.len() < self.rob_size as usize
                && window.len() < self.win_size as usize
            {
                let Some(front) = pipe.front() else { break };
                if front.ready > cycle {
                    break;
                }
                let pe = pipe.pop_front().expect("non-empty");
                let inst = pe.inst;
                let mut producers = [u64::MAX; 2];
                for (slot, &d) in inst.dep_distance.iter().enumerate() {
                    if d > 0 && pe.seq >= d as u64 {
                        producers[slot] = pe.seq - d as u64;
                    }
                }
                let comp_latency = if inst.dcache_long {
                    report.dcache_long_misses += 1;
                    self.mem_latency
                } else if inst.dcache_short {
                    self.l2_latency
                } else if inst.op == Op::Store {
                    1
                } else {
                    self.latencies.latency(inst.op)
                };
                if done_by_seq.len() <= pe.seq as usize {
                    done_by_seq.resize(pe.seq as usize + 1, u64::MAX);
                }
                rob.push_back((false, u64::MAX));
                window.push(WinEntry {
                    seq: pe.seq,
                    producers,
                    comp_latency,
                    mispredicted: inst.mispredicted,
                    issued: false,
                });
                dispatched += 1;
            }
            // fetch
            if !blocked_on_branch && cycle >= fetch_stall_until && fetched < n {
                let mut got = 0;
                while got < width && fetched < n {
                    let inst = synth.next_inst();
                    fetched += 1;
                    if inst.icache_long {
                        fetch_stall_until = cycle + self.mem_latency as u64;
                    } else if inst.icache_short {
                        fetch_stall_until = cycle + self.l2_latency as u64;
                    }
                    if inst.mispredicted {
                        report.mispredicts += 1;
                        blocked_on_branch = true;
                    }
                    pipe.push_back(PipeEntry {
                        ready: cycle + self.pipe_depth as u64,
                        inst,
                        seq: next_seq,
                    });
                    next_seq += 1;
                    got += 1;
                    if inst.mispredicted || inst.icache_short || inst.icache_long {
                        break;
                    }
                }
            }
            cycle += 1;
            if fetched >= n && pipe.is_empty() && rob.is_empty() {
                break;
            }
        }
        report.cycles = cycle;
        report
    }
}

impl Default for StatMachine {
    fn default() -> Self {
        StatMachine::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CollectorConfig, StatProfile};
    use fosm_trace::VecTrace;
    use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

    fn profile(spec: &BenchmarkSpec) -> StatProfile {
        let mut generator = WorkloadGenerator::new(spec, 5);
        let trace = VecTrace::record(&mut generator, 40_000);
        StatProfile::from_trace(trace.insts(), CollectorConfig::default())
    }

    #[test]
    fn runs_and_reports_sane_numbers() {
        let p = profile(&BenchmarkSpec::gzip());
        let mut synth = SynthesizedTrace::new(&p, 1);
        let r = StatMachine::baseline().run(&mut synth, 30_000);
        assert_eq!(r.instructions, 30_000);
        assert!(r.ipc() > 0.3 && r.ipc() <= 4.0, "ipc {}", r.ipc());
        assert!(r.mispredicts > 100);
    }

    #[test]
    fn memory_bound_statistics_produce_memory_bound_results() {
        let gzip = profile(&BenchmarkSpec::gzip());
        let mcf = profile(&BenchmarkSpec::mcf());
        let run = |p: &StatProfile| {
            let mut synth = SynthesizedTrace::new(p, 1);
            StatMachine::baseline().run(&mut synth, 30_000).cpi()
        };
        assert!(run(&mcf) > 1.5 * run(&gzip));
    }

    #[test]
    fn deterministic_per_seed() {
        let p = profile(&BenchmarkSpec::twolf());
        let a = StatMachine::baseline().run(&mut SynthesizedTrace::new(&p, 4), 20_000);
        let b = StatMachine::baseline().run(&mut SynthesizedTrace::new(&p, 4), 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn wider_machine_is_no_slower() {
        let p = profile(&BenchmarkSpec::vortex());
        let narrow = StatMachine {
            width: 2,
            ..StatMachine::baseline()
        };
        let wide = StatMachine {
            width: 8,
            ..StatMachine::baseline()
        };
        let cn = narrow.run(&mut SynthesizedTrace::new(&p, 2), 20_000).cycles;
        let cw = wide.run(&mut SynthesizedTrace::new(&p, 2), 20_000).cycles;
        assert!(cw <= cn);
    }
}
