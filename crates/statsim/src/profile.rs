//! Synthesis statistics collected from a real trace.

use fosm_branch::{MispredictStats, PredictorConfig};
use fosm_cache::{AccessKind, AccessOutcome, Hierarchy, HierarchyConfig};
use fosm_isa::{Inst, Op, NUM_OP_CLASSES, NUM_REGS};
use serde::{Deserialize, Serialize};

/// Which functional structures the collector simulates to obtain
/// miss-event rates.
#[derive(Debug, Clone)]
pub struct CollectorConfig {
    /// Cache hierarchy the rates are measured on.
    pub hierarchy: HierarchyConfig,
    /// Branch predictor the misprediction rate is measured on.
    pub predictor: PredictorConfig,
}

impl Default for CollectorConfig {
    fn default() -> Self {
        CollectorConfig {
            hierarchy: HierarchyConfig::baseline(),
            predictor: PredictorConfig::baseline(),
        }
    }
}

/// Maximum dependence distance tracked individually by the synthesis
/// histogram; larger distances share the final bucket.
pub const MAX_DEP_DISTANCE: usize = 512;

/// The statistics a statistical simulator synthesizes traces from
/// (paper refs. \[8–11\]): operation mix, dependence-distance
/// distribution, and miss-event rates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatProfile {
    /// Dynamic operation mix (counts per [`Op::ALL`] index).
    pub mix: [u64; NUM_OP_CLASSES],
    /// `dep_distances[d]` = source operands whose producer was `d`
    /// dynamic instructions earlier (index 0 counts *operand slots with
    /// no producer*; distances clamp at [`MAX_DEP_DISTANCE`]).
    pub dep_distances: Vec<u64>,
    /// Instructions profiled.
    pub instructions: u64,
    /// P(conditional branch mispredicts).
    pub mispredict_rate: f64,
    /// P(instruction fetch misses L1I and hits L2).
    pub icache_short_rate: f64,
    /// P(instruction fetch misses to memory).
    pub icache_long_rate: f64,
    /// P(load misses L1D and hits L2).
    pub dcache_short_rate: f64,
    /// P(load misses to memory).
    pub dcache_long_rate: f64,
}

impl StatProfile {
    /// Collects synthesis statistics from a recorded trace.
    pub fn from_trace(insts: &[Inst], config: CollectorConfig) -> Self {
        let mut mix = [0u64; NUM_OP_CLASSES];
        let mut dep_distances = vec![0u64; MAX_DEP_DISTANCE + 1];
        let mut last_writer = [u64::MAX; NUM_REGS];
        let mut hierarchy = Hierarchy::new(config.hierarchy).expect("valid hierarchy");
        let mut predictor = config.predictor.build();
        let mut bstats = MispredictStats::new();
        let (mut ic_short, mut ic_long) = (0u64, 0u64);
        let (mut dc_short, mut dc_long) = (0u64, 0u64);
        let mut loads = 0u64;

        for (idx, inst) in insts.iter().enumerate() {
            mix[inst.op.index()] += 1;
            for src in inst.sources() {
                let w = last_writer[src.index()];
                if w == u64::MAX {
                    dep_distances[0] += 1;
                } else {
                    let d = ((idx as u64 - w) as usize).clamp(1, MAX_DEP_DISTANCE);
                    dep_distances[d] += 1;
                }
            }
            if let Some(dest) = inst.dest {
                last_writer[dest.index()] = idx as u64;
            }
            match hierarchy.access(AccessKind::IFetch, inst.pc) {
                AccessOutcome::L1 => {}
                AccessOutcome::L2 => ic_short += 1,
                AccessOutcome::Memory => ic_long += 1,
            }
            match inst.op {
                Op::Load => {
                    loads += 1;
                    let addr = inst.mem_addr.expect("loads carry addresses");
                    match hierarchy.access(AccessKind::Load, addr) {
                        AccessOutcome::L1 => {}
                        AccessOutcome::L2 => dc_short += 1,
                        AccessOutcome::Memory => dc_long += 1,
                    }
                }
                Op::Store => {
                    let addr = inst.mem_addr.expect("stores carry addresses");
                    hierarchy.access(AccessKind::Store, addr);
                }
                _ => {}
            }
            if inst.op.is_cond_branch() {
                let taken = inst.branch.expect("branches carry outcomes").taken;
                bstats.record(predictor.observe(inst.pc, taken), idx as u64);
            }
        }

        let n = insts.len() as u64;
        StatProfile {
            mix,
            dep_distances,
            instructions: n,
            mispredict_rate: bstats.rate(),
            icache_short_rate: ic_short as f64 / n.max(1) as f64,
            icache_long_rate: ic_long as f64 / n.max(1) as f64,
            dcache_short_rate: dc_short as f64 / loads.max(1) as f64,
            dcache_long_rate: dc_long as f64 / loads.max(1) as f64,
        }
    }

    /// Fraction of instructions of class `op`.
    pub fn op_fraction(&self, op: Op) -> f64 {
        let total: u64 = self.mix.iter().sum();
        if total == 0 {
            0.0
        } else {
            self.mix[op.index()] as f64 / total as f64
        }
    }

    /// Total source-operand observations (including no-producer slots).
    pub fn operand_observations(&self) -> u64 {
        self.dep_distances.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_trace::VecTrace;
    use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

    fn profile_of(spec: &BenchmarkSpec) -> StatProfile {
        let mut generator = WorkloadGenerator::new(spec, 3);
        let trace = VecTrace::record(&mut generator, 40_000);
        StatProfile::from_trace(trace.insts(), CollectorConfig::default())
    }

    #[test]
    fn rates_are_probabilities() {
        let p = profile_of(&BenchmarkSpec::gcc());
        for r in [
            p.mispredict_rate,
            p.icache_short_rate,
            p.icache_long_rate,
            p.dcache_short_rate,
            p.dcache_long_rate,
        ] {
            assert!((0.0..=1.0).contains(&r), "{r}");
        }
        assert_eq!(p.instructions, 40_000);
        assert_eq!(p.mix.iter().sum::<u64>(), 40_000);
    }

    #[test]
    fn dependence_structure_transfers() {
        let vpr = profile_of(&BenchmarkSpec::vpr());
        let vortex = profile_of(&BenchmarkSpec::vortex());
        // vpr is chain-y: more short-distance operands than vortex.
        let short = |p: &StatProfile| {
            p.dep_distances[1..=2].iter().sum::<u64>() as f64 / p.operand_observations() as f64
        };
        assert!(short(&vpr) > short(&vortex));
    }

    #[test]
    fn memory_bound_benchmarks_show_long_miss_rates() {
        let mcf = profile_of(&BenchmarkSpec::mcf());
        let gzip = profile_of(&BenchmarkSpec::gzip());
        assert!(mcf.dcache_long_rate > 5.0 * gzip.dcache_long_rate.max(1e-6));
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let p = StatProfile::from_trace(&[], CollectorConfig::default());
        assert_eq!(p.instructions, 0);
        assert_eq!(p.mispredict_rate, 0.0);
        assert_eq!(p.operand_observations(), 0);
    }
}
