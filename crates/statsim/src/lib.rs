//! Statistical simulation — the related-work baseline (paper §1.2).
//!
//! Statistical simulation (Carl & Smith; Nussbaum & Smith; Eeckhout et
//! al. — the paper's refs. \[8–11\]) collects the same program
//! statistics the first-order model uses, then *synthesizes a trace*
//! from those statistics and runs it through a simple superscalar
//! simulator. The paper positions its model as "statistical simulation,
//! without the simulation", claiming similar overall accuracy; this
//! crate implements the baseline so the claim can be tested (see the
//! `statsim_compare` binary in `fosm-validate`).
//!
//! The flow:
//!
//! 1. [`StatProfile::from_trace`] — one pass over a real trace
//!    collecting the synthesis statistics: operation mix, dependence
//!    distances, and miss-event *rates* (not addresses).
//! 2. [`SynthesizedTrace`] — an unbounded stream of [`SynthInst`]
//!    records drawn from those distributions; miss events are carried
//!    as *flags* on the synthetic instructions (statistical simulation
//!    has no addresses to feed real caches with).
//! 3. [`StatMachine`] — a simple out-of-order simulator in the style of
//!    the paper's detailed machine, but driven by the miss flags
//!    instead of cache/predictor state.
//!
//! # Examples
//!
//! ```
//! use fosm_statsim::{StatMachine, StatProfile, SynthesizedTrace};
//! use fosm_trace::VecTrace;
//! use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 1);
//! let trace = VecTrace::record(&mut generator, 50_000);
//! let profile = StatProfile::from_trace(trace.insts(), Default::default());
//! let mut synth = SynthesizedTrace::new(&profile, 7);
//! let report = StatMachine::baseline().run(&mut synth, 50_000);
//! assert!(report.cpi() > 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod machine;
mod profile;
mod synth;

pub use machine::{StatMachine, StatReport};
pub use profile::{CollectorConfig, StatProfile, MAX_DEP_DISTANCE};
pub use synth::{SynthInst, SynthesizedTrace};
