//! Synthetic-trace generation from statistics.

use fosm_isa::Op;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::StatProfile;

/// One synthetic instruction: an operation, dependence distances, and
/// pre-drawn miss-event flags.
///
/// Statistical simulation carries miss events as flags because the
/// synthesized stream has no addresses or PCs to feed real caches and
/// predictors with — that is precisely the information the statistics
/// abstract away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SynthInst {
    /// Operation class (drawn from the mix).
    pub op: Op,
    /// Dependence distances of up to two source operands (0 = the
    /// operand has no in-window producer).
    pub dep_distance: [u32; 2],
    /// The instruction fetch misses L1I and hits L2.
    pub icache_short: bool,
    /// The instruction fetch misses to memory.
    pub icache_long: bool,
    /// For loads: misses L1D, hits L2.
    pub dcache_short: bool,
    /// For loads: misses to memory.
    pub dcache_long: bool,
    /// For conditional branches: mispredicted.
    pub mispredicted: bool,
}

/// An unbounded stream of [`SynthInst`]s drawn from a [`StatProfile`].
///
/// Deterministic in `(profile, seed)`.
#[derive(Debug, Clone)]
pub struct SynthesizedTrace {
    rng: SmallRng,
    // Cumulative distributions for O(log n) sampling.
    mix_cdf: Vec<(f64, Op)>,
    dep_cdf: Vec<(f64, u32)>,
    two_source_p: f64,
    mispredict_rate: f64,
    icache_short_rate: f64,
    icache_long_rate: f64,
    dcache_short_rate: f64,
    dcache_long_rate: f64,
}

impl SynthesizedTrace {
    /// Prepares a generator for the given statistics.
    pub fn new(profile: &StatProfile, seed: u64) -> Self {
        let total_mix: u64 = profile.mix.iter().sum();
        let mut mix_cdf = Vec::new();
        let mut acc = 0.0;
        for op in Op::ALL {
            let f = if total_mix == 0 {
                0.0
            } else {
                profile.mix[op.index()] as f64 / total_mix as f64
            };
            acc += f;
            mix_cdf.push((acc, op));
        }
        if total_mix == 0 {
            // Degenerate statistics: fall back to plain ALU ops.
            mix_cdf = vec![(1.0, Op::IntAlu)];
        } else if let Some(last) = mix_cdf.last_mut() {
            last.0 = 1.0; // absorb rounding
        }

        let total_deps: u64 = profile.dep_distances.iter().sum();
        let mut dep_cdf = Vec::new();
        let mut acc = 0.0;
        for (d, &count) in profile.dep_distances.iter().enumerate() {
            if count == 0 {
                continue;
            }
            acc += count as f64 / total_deps.max(1) as f64;
            dep_cdf.push((acc, d as u32));
        }
        if let Some(last) = dep_cdf.last_mut() {
            last.0 = 1.0;
        }

        // Mean operands per instruction determines how often the second
        // source slot is populated.
        let n = profile.instructions.max(1) as f64;
        let operands_per_inst = total_deps as f64 / n;
        SynthesizedTrace {
            rng: SmallRng::seed_from_u64(seed ^ 0x57a7_5e3d),
            mix_cdf,
            dep_cdf,
            two_source_p: (operands_per_inst - 1.0).clamp(0.0, 1.0),
            mispredict_rate: profile.mispredict_rate,
            icache_short_rate: profile.icache_short_rate,
            icache_long_rate: profile.icache_long_rate,
            dcache_short_rate: profile.dcache_short_rate,
            dcache_long_rate: profile.dcache_long_rate,
        }
    }

    fn sample_cdf<T: Copy>(cdf: &[(f64, T)], u: f64) -> Option<T> {
        let idx = cdf.partition_point(|&(c, _)| c < u);
        cdf.get(idx.min(cdf.len().saturating_sub(1)))
            .map(|&(_, v)| v)
    }

    fn draw_distance(&mut self) -> u32 {
        let u: f64 = self.rng.gen();
        Self::sample_cdf(&self.dep_cdf, u).unwrap_or(0)
    }

    /// Draws the next synthetic instruction.
    pub fn next_inst(&mut self) -> SynthInst {
        let u: f64 = self.rng.gen();
        let op = Self::sample_cdf(&self.mix_cdf, u).unwrap_or(Op::IntAlu);
        let d1 = self.draw_distance();
        let d2 = if self.rng.gen::<f64>() < self.two_source_p {
            self.draw_distance()
        } else {
            0
        };
        let r: f64 = self.rng.gen();
        let (icache_short, icache_long) = if r < self.icache_long_rate {
            (false, true)
        } else if r < self.icache_long_rate + self.icache_short_rate {
            (true, false)
        } else {
            (false, false)
        };
        let (mut dcache_short, mut dcache_long) = (false, false);
        if op == Op::Load {
            let r: f64 = self.rng.gen();
            if r < self.dcache_long_rate {
                dcache_long = true;
            } else if r < self.dcache_long_rate + self.dcache_short_rate {
                dcache_short = true;
            }
        }
        let mispredicted = op.is_cond_branch() && self.rng.gen::<f64>() < self.mispredict_rate;
        SynthInst {
            op,
            dep_distance: [d1, d2],
            icache_short,
            icache_long,
            dcache_short,
            dcache_long,
            mispredicted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CollectorConfig;
    use fosm_trace::VecTrace;
    use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

    fn profile() -> StatProfile {
        let mut generator = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 5);
        let trace = VecTrace::record(&mut generator, 40_000);
        StatProfile::from_trace(trace.insts(), CollectorConfig::default())
    }

    #[test]
    fn synthesis_reproduces_the_mix() {
        let p = profile();
        let mut synth = SynthesizedTrace::new(&p, 9);
        let n = 60_000;
        let mut loads = 0u64;
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        for _ in 0..n {
            let i = synth.next_inst();
            if i.op == Op::Load {
                loads += 1;
            }
            if i.op.is_cond_branch() {
                branches += 1;
                if i.mispredicted {
                    mispredicts += 1;
                }
            }
        }
        let load_frac = loads as f64 / n as f64;
        assert!(
            (load_frac - p.op_fraction(Op::Load)).abs() < 0.02,
            "load fraction {load_frac} vs {}",
            p.op_fraction(Op::Load)
        );
        let misp = mispredicts as f64 / branches.max(1) as f64;
        assert!(
            (misp - p.mispredict_rate).abs() < 0.03,
            "mispredict rate {misp} vs {}",
            p.mispredict_rate
        );
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = profile();
        let mut a = SynthesizedTrace::new(&p, 1);
        let mut b = SynthesizedTrace::new(&p, 1);
        for _ in 0..500 {
            assert_eq!(a.next_inst(), b.next_inst());
        }
        let mut c = SynthesizedTrace::new(&p, 2);
        let differs = (0..500).any(|_| a.next_inst() != c.next_inst());
        assert!(differs);
    }

    #[test]
    fn miss_flags_are_exclusive() {
        let p = profile();
        let mut synth = SynthesizedTrace::new(&p, 3);
        for _ in 0..5_000 {
            let i = synth.next_inst();
            assert!(!(i.icache_short && i.icache_long));
            assert!(!(i.dcache_short && i.dcache_long));
            if !matches!(i.op, Op::Load) {
                assert!(!i.dcache_short && !i.dcache_long);
            }
            if !i.op.is_cond_branch() {
                assert!(!i.mispredicted);
            }
        }
    }

    #[test]
    fn degenerate_profile_still_generates() {
        let empty = StatProfile::from_trace(&[], CollectorConfig::default());
        let mut synth = SynthesizedTrace::new(&empty, 0);
        let i = synth.next_inst();
        assert_eq!(i.op, Op::IntAlu); // falls back to the default class
    }
}
