//! Property-based tests for the statistical-simulation baseline.

use fosm_isa::NUM_OP_CLASSES;
use fosm_statsim::{StatMachine, StatProfile, SynthesizedTrace};
use proptest::prelude::*;

/// Random but internally consistent statistics.
fn profile_strategy() -> impl Strategy<Value = StatProfile> {
    (
        prop::collection::vec(0u64..1000, NUM_OP_CLASSES),
        prop::collection::vec(0u64..500, 1..40),
        0.0f64..0.3,
        0.0f64..0.05,
        0.0f64..0.2,
        0.0f64..0.1,
    )
        .prop_map(|(mix, deps, misp, ic, dc_short, dc_long)| {
            let mut mix_arr = [0u64; NUM_OP_CLASSES];
            for (slot, v) in mix_arr.iter_mut().zip(&mix) {
                *slot = *v;
            }
            let instructions = mix_arr.iter().sum::<u64>().max(1);
            StatProfile {
                mix: mix_arr,
                dep_distances: deps,
                instructions,
                mispredict_rate: misp,
                icache_short_rate: ic,
                icache_long_rate: ic / 4.0,
                dcache_short_rate: dc_short,
                dcache_long_rate: dc_long,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The statistical machine always terminates, retires exactly the
    /// requested instructions, and respects the width bound.
    #[test]
    fn machine_bounds(profile in profile_strategy(), seed in any::<u64>()) {
        let mut synth = SynthesizedTrace::new(&profile, seed);
        let r = StatMachine::baseline().run(&mut synth, 3_000);
        prop_assert_eq!(r.instructions, 3_000);
        prop_assert!(r.ipc() <= 4.0 + 1e-9);
        prop_assert!(r.cycles >= 3_000 / 4);
    }

    /// Synthesis + simulation is deterministic in (profile, seed).
    #[test]
    fn deterministic(profile in profile_strategy(), seed in any::<u64>()) {
        let a = StatMachine::baseline().run(&mut SynthesizedTrace::new(&profile, seed), 1_500);
        let b = StatMachine::baseline().run(&mut SynthesizedTrace::new(&profile, seed), 1_500);
        prop_assert_eq!(a, b);
    }

    /// More miss events never speed the machine up.
    #[test]
    fn misses_never_help(profile in profile_strategy()) {
        let clean = StatProfile {
            mispredict_rate: 0.0,
            icache_short_rate: 0.0,
            icache_long_rate: 0.0,
            dcache_short_rate: 0.0,
            dcache_long_rate: 0.0,
            ..profile.clone()
        };
        let dirty_cycles = StatMachine::baseline()
            .run(&mut SynthesizedTrace::new(&profile, 9), 2_000)
            .cycles;
        let clean_cycles = StatMachine::baseline()
            .run(&mut SynthesizedTrace::new(&clean, 9), 2_000)
            .cycles;
        // Different RNG draws make exact comparison noisy; allow a
        // small tolerance around equality for all-zero-rate inputs.
        prop_assert!(clean_cycles <= dirty_cycles + dirty_cycles / 10);
    }
}
