//! Machine configuration.

use fosm_branch::PredictorConfig;
use fosm_cache::{HierarchyConfig, TlbConfig};
use fosm_isa::{FuPool, LatencyTable};
use serde::{Deserialize, Serialize};

/// Full configuration of the simulated machine.
///
/// [`MachineConfig::baseline`] reproduces the paper's §1.1 baseline:
/// five front-end stages, width 4, a 48-entry window, a 128-entry ROB,
/// 4 KB L1 caches, a 512 KB L2 (8-cycle latency), 200-cycle memory, and
/// an 8K gshare predictor.
///
/// # Examples
///
/// ```
/// use fosm_sim::MachineConfig;
///
/// let cfg = MachineConfig::baseline();
/// assert_eq!(cfg.width, 4);
/// assert_eq!(cfg.win_size, 48);
/// cfg.validate().unwrap();
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Fetch = pipeline = dispatch = issue = retire width (`i`).
    pub width: u32,
    /// Issue-window entries.
    pub win_size: u32,
    /// Reorder-buffer entries.
    pub rob_size: u32,
    /// Front-end pipeline depth ∆P, in cycles.
    pub pipe_depth: u32,
    /// Functional-unit latencies.
    pub latencies: LatencyTable,
    /// L2 access latency (the ∆I of instruction misses and the latency
    /// of short data misses), in cycles.
    pub l2_latency: u32,
    /// Main-memory latency (the ∆D of long data misses), in cycles.
    pub mem_latency: u32,
    /// Cache hierarchy (levels set to `None` are ideal).
    pub hierarchy: HierarchyConfig,
    /// Branch predictor.
    pub predictor: PredictorConfig,
    /// Optional data TLB (paper §7 extension); `None` models an ideal
    /// TLB, as the paper's baseline does.
    #[serde(default)]
    pub dtlb: Option<TlbConfig>,
    /// Optional functional-unit limits (paper §7 extension); `None`
    /// models unbounded units of every class, as the paper does.
    #[serde(default)]
    pub fu: Option<FuPool>,
    /// Optional instruction fetch buffer (paper §7 extension): a
    /// prefetch queue between the I-cache and the pipeline that can
    /// hide some or all of the I-cache miss penalty. `None` couples
    /// fetch directly to the pipeline, as the paper's baseline does.
    #[serde(default)]
    pub fetch_buffer: Option<FetchBufferConfig>,
    /// Optional clustered issue window (paper §7 extension): the window
    /// and issue width are partitioned into clusters, and forwarding a
    /// result between clusters costs extra cycles. `None` models the
    /// paper's single homogeneous window.
    #[serde(default)]
    pub clusters: Option<ClusterConfig>,
}

/// How dispatch steers instructions to clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Steering {
    /// Cycle through clusters instruction by instruction.
    #[default]
    RoundRobin,
    /// Send each instruction to its first producer's cluster when that
    /// cluster has room (minimizing cross-cluster forwarding),
    /// otherwise to the least-loaded cluster.
    Dependence,
}

/// Geometry of a clustered issue window (paper §7, new feature 3:
/// "Partitioned issue windows and clustered functional units").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of clusters; window entries and issue width divide evenly
    /// across them.
    pub clusters: u32,
    /// Extra forwarding latency when a consumer reads a producer from a
    /// different cluster, in cycles.
    pub forward_delay: u32,
    /// Dispatch steering policy.
    pub steering: Steering,
}

impl ClusterConfig {
    /// A classic 2-cluster arrangement with 1-cycle inter-cluster
    /// forwarding (21264-flavoured).
    pub fn two_cluster() -> Self {
        ClusterConfig {
            clusters: 2,
            forward_delay: 1,
            steering: Steering::Dependence,
        }
    }

    /// Validates against a machine's width and window size.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated divisibility constraint.
    pub fn validate(&self, width: u32, win_size: u32) -> Result<(), String> {
        if self.clusters < 2 {
            return Err("a clustered window needs at least 2 clusters".into());
        }
        if !width.is_multiple_of(self.clusters) {
            return Err(format!(
                "issue width {width} must divide evenly into {} clusters",
                self.clusters
            ));
        }
        if !win_size.is_multiple_of(self.clusters) {
            return Err(format!(
                "window size {win_size} must divide evenly into {} clusters",
                self.clusters
            ));
        }
        Ok(())
    }
}

/// Geometry of the instruction fetch buffer (paper §7, new feature 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FetchBufferConfig {
    /// Buffer capacity in instructions.
    pub entries: u32,
    /// Prefetch bandwidth in instructions per cycle. Must exceed the
    /// pipeline width for the buffer to accumulate slack (real fetch
    /// units fetch whole cache lines per cycle).
    pub bandwidth: u32,
}

impl FetchBufferConfig {
    /// A 32-entry buffer fed at 8 instructions per cycle.
    pub fn baseline() -> Self {
        FetchBufferConfig {
            entries: 32,
            bandwidth: 8,
        }
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint.
    pub fn validate(&self, width: u32) -> Result<(), String> {
        if self.entries == 0 {
            return Err("fetch buffer must have at least one entry".into());
        }
        if self.bandwidth <= width {
            return Err(format!(
                "fetch bandwidth ({}) must exceed the pipeline width ({width}) for the buffer to hide misses",
                self.bandwidth
            ));
        }
        Ok(())
    }
}

impl MachineConfig {
    /// The paper's baseline processor (§1.1).
    pub fn baseline() -> Self {
        MachineConfig {
            width: 4,
            win_size: 48,
            rob_size: 128,
            pipe_depth: 5,
            latencies: LatencyTable::default(),
            l2_latency: 8,
            mem_latency: 200,
            hierarchy: HierarchyConfig::baseline(),
            predictor: PredictorConfig::Gshare { bits: 13 },
            dtlb: None,
            fu: None,
            fetch_buffer: None,
            clusters: None,
        }
    }

    /// Baseline with every miss-event source idealized: perfect caches
    /// and perfect branch prediction (the paper's simulation set 1).
    pub fn ideal() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::ideal(),
            predictor: PredictorConfig::Ideal,
            ..Self::baseline()
        }
    }

    /// Everything ideal *except* the branch predictor (simulation set 3).
    pub fn only_real_branch_predictor() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig::ideal(),
            ..Self::baseline()
        }
    }

    /// Everything ideal *except* the instruction cache (simulation set 4).
    pub fn only_real_icache() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig {
                l1i: HierarchyConfig::baseline().l1i,
                l1d: None,
                l2: HierarchyConfig::baseline().l2,
                next_line_prefetch: 0,
            },
            predictor: PredictorConfig::Ideal,
            ..Self::baseline()
        }
    }

    /// Everything ideal *except* the data cache (simulation set 5).
    pub fn only_real_dcache() -> Self {
        MachineConfig {
            hierarchy: HierarchyConfig {
                l1i: None,
                l1d: HierarchyConfig::baseline().l1d,
                l2: HierarchyConfig::baseline().l2,
                next_line_prefetch: 0,
            },
            predictor: PredictorConfig::Ideal,
            ..Self::baseline()
        }
    }

    /// Returns a copy with a different front-end depth (Fig. 9 / §6.1).
    pub fn with_pipe_depth(mut self, depth: u32) -> Self {
        self.pipe_depth = depth;
        self
    }

    /// Returns a copy with a different machine width.
    pub fn with_width(mut self, width: u32) -> Self {
        self.width = width;
        self
    }

    /// Returns a copy with a data TLB of the given geometry.
    pub fn with_dtlb(mut self, tlb: TlbConfig) -> Self {
        self.dtlb = Some(tlb);
        self
    }

    /// Returns a copy with limited functional units.
    pub fn with_fu_limits(mut self, fu: FuPool) -> Self {
        self.fu = Some(fu);
        self
    }

    /// Returns a copy with an instruction fetch buffer.
    pub fn with_fetch_buffer(mut self, buffer: FetchBufferConfig) -> Self {
        self.fetch_buffer = Some(buffer);
        self
    }

    /// Returns a copy with a clustered issue window.
    pub fn with_clusters(mut self, clusters: ClusterConfig) -> Self {
        self.clusters = Some(clusters);
        self
    }

    /// Validates structural constraints.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated constraint. The window
    /// must fit in the ROB, all sizes must be non-zero, and memory must
    /// be slower than the L2.
    pub fn validate(&self) -> Result<(), String> {
        if self.width == 0 {
            return Err("width must be non-zero".into());
        }
        if self.win_size == 0 || self.rob_size == 0 {
            return Err("window and ROB must be non-empty".into());
        }
        if self.win_size > self.rob_size {
            return Err(format!(
                "issue window ({}) cannot exceed the ROB ({})",
                self.win_size, self.rob_size
            ));
        }
        if self.pipe_depth == 0 {
            return Err("front-end pipeline must have at least one stage".into());
        }
        if self.mem_latency <= self.l2_latency {
            return Err("memory latency must exceed L2 latency".into());
        }
        if let Some(tlb) = &self.dtlb {
            tlb.validate().map_err(|e| e.to_string())?;
        }
        if let Some(fu) = &self.fu {
            fu.validate()?;
        }
        if let Some(buffer) = &self.fetch_buffer {
            buffer.validate(self.width)?;
        }
        if let Some(clusters) = &self.clusters {
            clusters.validate(self.width, self.win_size)?;
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_the_paper() {
        let c = MachineConfig::baseline();
        assert_eq!(
            (c.width, c.win_size, c.rob_size, c.pipe_depth),
            (4, 48, 128, 5)
        );
        assert_eq!((c.l2_latency, c.mem_latency), (8, 200));
        assert_eq!(c.predictor, PredictorConfig::Gshare { bits: 13 });
        c.validate().unwrap();
    }

    #[test]
    fn idealization_presets() {
        let ideal = MachineConfig::ideal();
        assert!(ideal.predictor.is_ideal());
        assert!(ideal.hierarchy.l1i.is_none() && ideal.hierarchy.l1d.is_none());

        let bp = MachineConfig::only_real_branch_predictor();
        assert!(!bp.predictor.is_ideal());
        assert!(bp.hierarchy.l1d.is_none());

        let ic = MachineConfig::only_real_icache();
        assert!(ic.predictor.is_ideal());
        assert!(ic.hierarchy.l1i.is_some() && ic.hierarchy.l1d.is_none());

        let dc = MachineConfig::only_real_dcache();
        assert!(dc.hierarchy.l1d.is_some() && dc.hierarchy.l1i.is_none());
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = MachineConfig::baseline();
        c.win_size = 256; // > rob_size
        assert!(c.validate().is_err());
        let mut c = MachineConfig::baseline();
        c.width = 0;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::baseline();
        c.mem_latency = 8;
        assert!(c.validate().is_err());
        let mut c = MachineConfig::baseline();
        c.pipe_depth = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builders_adjust_single_fields() {
        let c = MachineConfig::baseline().with_pipe_depth(9).with_width(8);
        assert_eq!(c.pipe_depth, 9);
        assert_eq!(c.width, 8);
        assert_eq!(c.win_size, 48);
    }
}
