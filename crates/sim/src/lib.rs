//! Detailed cycle-level out-of-order superscalar simulator.
//!
//! This crate is the *validation baseline* for the first-order model —
//! the stand-in for the detailed simulator Karkhanis & Smith compare
//! against in §1.1 and §5. It models exactly the machine the paper
//! describes:
//!
//! * a front-end pipeline of configurable depth ∆P feeding
//! * a single homogeneous issue window (oldest-first issue) and
//! * a separate reorder buffer, with
//! * equal fetch/dispatch/issue/retire widths `i`,
//! * an unbounded number of fully-pipelined functional units,
//! * a two-level cache hierarchy and a branch predictor, each
//!   independently idealizable ("everything ideal except X").
//!
//! Branch handling is trace-driven in the paper's style: when a
//! mispredicted branch is fetched, fetching of useful instructions
//! stops; it resumes when the branch resolves (issues), after which
//! correct-path instructions take ∆P cycles to reach the window.
//! Long data-cache misses block retirement until the data returns,
//! filling the ROB and stalling dispatch — the paper's dominant
//! long-miss mechanism (§4.3).
//!
//! # Examples
//!
//! ```
//! use fosm_sim::{Machine, MachineConfig};
//! use fosm_trace::VecTrace;
//! use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 1);
//! let mut trace = VecTrace::record(&mut gen, 20_000);
//! let report = Machine::new(MachineConfig::baseline()).run(&mut trace);
//! assert!(report.ipc() > 0.5 && report.ipc() <= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod machine;
mod report;

pub use config::{ClusterConfig, FetchBufferConfig, MachineConfig, Steering};
pub use fosm_branch::PredictorConfig;
pub use fosm_obs::event::{EventKind, TraceEvent};
pub use machine::Machine;
pub use report::SimReport;
