//! Simulation results and diagnostics.

use serde::{Deserialize, Serialize};

/// Results of one detailed simulation run.
///
/// Besides raw cycle/instruction counts, the report carries the
/// diagnostic averages the paper uses to justify its modeling
/// assumptions (§4.1, §4.3): how empty the window is when a
/// mispredicted branch resolves, and how old a missing load is in the
/// ROB when it issues.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct SimReport {
    /// Total simulated cycles.
    pub cycles: u64,
    /// Useful (retired) instructions.
    pub instructions: u64,

    /// Dynamic conditional branches.
    pub cond_branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,

    /// Instruction fetches that missed L1I and hit L2.
    pub icache_short_misses: u64,
    /// Instruction fetches that missed to memory.
    pub icache_long_misses: u64,
    /// Data accesses that missed L1D and hit L2 (short misses).
    pub dcache_short_misses: u64,
    /// Data accesses that missed to memory (long misses).
    pub dcache_long_misses: u64,
    /// Data-TLB misses (0 unless a TLB is configured).
    #[serde(default)]
    pub dtlb_misses: u64,

    /// Sum over mispredicted-branch resolutions of the number of other
    /// useful instructions still unissued in the window.
    pub window_insts_at_mispredict_sum: u64,
    /// Number of mispredicted-branch resolutions sampled.
    pub window_insts_at_mispredict_count: u64,

    /// Sum over long-miss loads of the number of instructions ahead of
    /// the load in the ROB when it issued.
    pub rob_ahead_of_long_miss_sum: u64,
    /// Number of long-miss loads sampled.
    pub rob_ahead_of_long_miss_count: u64,

    /// Sum of window occupancy sampled each cycle (for mean occupancy).
    pub window_occupancy_sum: u64,
    /// Sum of ROB occupancy sampled each cycle.
    pub rob_occupancy_sum: u64,
}

impl SimReport {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Branch misprediction rate over conditional branches.
    pub fn mispredict_rate(&self) -> f64 {
        if self.cond_branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.cond_branches as f64
        }
    }

    /// Total instruction-cache misses (short + long).
    pub fn icache_misses(&self) -> u64 {
        self.icache_short_misses + self.icache_long_misses
    }

    /// Mean useful instructions left in the window when a mispredicted
    /// branch issues (the paper reports ≈1.3). `None` if no branch
    /// mispredicted.
    pub fn mean_window_insts_at_mispredict(&self) -> Option<f64> {
        (self.window_insts_at_mispredict_count > 0).then(|| {
            self.window_insts_at_mispredict_sum as f64
                / self.window_insts_at_mispredict_count as f64
        })
    }

    /// Mean instructions ahead of a long-miss load in the ROB when it
    /// issues (the paper reports ≈9). `None` if no long miss occurred.
    pub fn mean_rob_ahead_of_long_miss(&self) -> Option<f64> {
        (self.rob_ahead_of_long_miss_count > 0).then(|| {
            self.rob_ahead_of_long_miss_sum as f64 / self.rob_ahead_of_long_miss_count as f64
        })
    }

    /// Mean issue-window occupancy over all cycles.
    pub fn mean_window_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.window_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Mean ROB occupancy over all cycles.
    pub fn mean_rob_occupancy(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_occupancy_sum as f64 / self.cycles as f64
        }
    }

    /// Flushes this run's retire/flush and miss-event totals into an
    /// observability registry under `<prefix>.…` (one bulk update per
    /// simulation, so the cycle loop stays uninstrumented).
    pub fn observe_into(&self, registry: &fosm_obs::Registry, prefix: &str) {
        registry.counter_add(&format!("{prefix}.cycles"), self.cycles);
        registry.counter_add(&format!("{prefix}.retired"), self.instructions);
        registry.counter_add(&format!("{prefix}.branches"), self.cond_branches);
        registry.counter_add(&format!("{prefix}.flushes"), self.mispredicts);
        registry.counter_add(
            &format!("{prefix}.icache.short_misses"),
            self.icache_short_misses,
        );
        registry.counter_add(
            &format!("{prefix}.icache.long_misses"),
            self.icache_long_misses,
        );
        registry.counter_add(
            &format!("{prefix}.dcache.short_misses"),
            self.dcache_short_misses,
        );
        registry.counter_add(
            &format!("{prefix}.dcache.long_misses"),
            self.dcache_long_misses,
        );
        registry.counter_add(&format!("{prefix}.dtlb.misses"), self.dtlb_misses);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_handle_empty_runs() {
        let r = SimReport::default();
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.cpi(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
        assert_eq!(r.mean_window_insts_at_mispredict(), None);
        assert_eq!(r.mean_rob_ahead_of_long_miss(), None);
    }

    #[test]
    fn derived_metrics() {
        let r = SimReport {
            cycles: 100,
            instructions: 250,
            cond_branches: 50,
            mispredicts: 5,
            icache_short_misses: 3,
            icache_long_misses: 1,
            window_insts_at_mispredict_sum: 13,
            window_insts_at_mispredict_count: 10,
            rob_ahead_of_long_miss_sum: 90,
            rob_ahead_of_long_miss_count: 10,
            window_occupancy_sum: 4800,
            rob_occupancy_sum: 12800,
            ..Default::default()
        };
        assert!((r.ipc() - 2.5).abs() < 1e-12);
        assert!((r.cpi() - 0.4).abs() < 1e-12);
        assert!((r.mispredict_rate() - 0.1).abs() < 1e-12);
        assert_eq!(r.icache_misses(), 4);
        assert!((r.mean_window_insts_at_mispredict().unwrap() - 1.3).abs() < 1e-12);
        assert!((r.mean_rob_ahead_of_long_miss().unwrap() - 9.0).abs() < 1e-12);
        assert!((r.mean_window_occupancy() - 48.0).abs() < 1e-12);
        assert!((r.mean_rob_occupancy() - 128.0).abs() < 1e-12);
    }
}
