//! The cycle-level machine.

use std::collections::VecDeque;

use fosm_branch::Predictor;
use fosm_cache::{AccessKind, AccessOutcome, Hierarchy, Tlb};
use fosm_isa::{FuClass, Inst, Op, NUM_REGS};
use fosm_obs::event::{EventKind, TraceEvent};
use fosm_trace::TraceSource;

use crate::{MachineConfig, SimReport};

/// Marks "no producer" in a dependence slot.
const NO_PRODUCER: u64 = u64::MAX;

/// An instruction in the front-end pipeline.
#[derive(Debug, Clone, Copy)]
struct PipeEntry {
    ready: u64,
    inst: Inst,
    seq: u64,
    mispredicted: bool,
}

/// An instruction waiting in the issue window.
#[derive(Debug, Clone, Copy)]
struct WinEntry {
    seq: u64,
    producers: [u64; 2],
    comp_latency: u32,
    fu_class: FuClass,
    cluster: u8,
    mispredicted: bool,
    long_miss_load: bool,
    issued: bool,
    /// Cycle the instruction entered the front-end pipe; anchors the
    /// cycle extent of a traced mispredict (fetch stops here).
    fetch_cycle: u64,
}

/// An instruction in the reorder buffer.
#[derive(Debug, Clone, Copy)]
struct RobEntry {
    issued: bool,
    done: u64,
}

/// Records an I-fetch miss event plus the interval boundary it
/// terminates (shared by the fetch-buffer and direct fetch paths).
fn push_icache_event(
    buf: &mut Vec<TraceEvent>,
    last_boundary_cycle: &mut u64,
    retired: u64,
    seq: u64,
    cycle: u64,
    stall_until: u64,
    delta: u64,
) {
    let onset = cycle.max(*last_boundary_cycle);
    buf.push(TraceEvent::new(
        EventKind::IntervalBoundary,
        retired,
        *last_boundary_cycle,
        onset,
        0,
    ));
    *last_boundary_cycle = onset;
    buf.push(TraceEvent::new(
        EventKind::ICacheMiss,
        seq,
        cycle,
        stall_until,
        delta,
    ));
}

/// The detailed out-of-order machine (see the crate docs for the
/// microarchitecture it models).
///
/// A `Machine` owns mutable predictor and cache state; create a fresh
/// machine per run (or per benchmark) so runs do not contaminate each
/// other.
///
/// # Examples
///
/// ```
/// use fosm_isa::{Inst, Op, Reg};
/// use fosm_sim::{Machine, MachineConfig};
/// use fosm_trace::VecTrace;
///
/// // A hundred independent single-cycle instructions on an ideal
/// // 4-wide machine retire at ~4 IPC.
/// let insts: Vec<Inst> = (0..100)
///     .map(|i| Inst::alu(i * 4, Op::IntAlu, Reg::new((i % 32) as u8), None, None))
///     .collect();
/// let report = Machine::new(MachineConfig::ideal()).run(&mut VecTrace::new(insts));
/// assert!(report.ipc() > 3.0);
/// ```
pub struct Machine {
    config: MachineConfig,
    predictor: Box<dyn Predictor>,
    hierarchy: Hierarchy,
    dtlb: Option<Tlb>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("config", &self.config)
            .field("predictor", &self.predictor.name())
            .finish_non_exhaustive()
    }
}

impl Machine {
    /// Builds a machine from a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MachineConfig::validate`];
    /// use [`Machine::try_new`] to handle invalid configurations.
    pub fn new(config: MachineConfig) -> Self {
        Self::try_new(config).expect("invalid machine configuration")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message for inconsistent configurations.
    pub fn try_new(config: MachineConfig) -> Result<Self, String> {
        config.validate()?;
        let hierarchy = Hierarchy::new(config.hierarchy).map_err(|e| e.to_string())?;
        let dtlb = match &config.dtlb {
            Some(cfg) => Some(Tlb::new(*cfg).map_err(|e| e.to_string())?),
            None => None,
        };
        Ok(Machine {
            predictor: config.predictor.build(),
            hierarchy,
            dtlb,
            config,
        })
    }

    /// The configuration this machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.config
    }

    /// Runs the machine over `trace` until the trace is exhausted and
    /// the pipeline drains, returning the report.
    ///
    /// When the global miss-event tracer is enabled (`FOSM_TRACE` /
    /// `--trace`), the run's events are flushed into it in one batch
    /// at the end; disabled (the default), the only tracing cost is a
    /// single atomic load per run.
    ///
    /// Bound unbounded sources with [`TraceSource::take`] before
    /// passing them in.
    pub fn run<S: TraceSource>(&mut self, trace: &mut S) -> SimReport {
        let _run_span = fosm_obs::span("sim.run");
        let tracer = fosm_obs::tracer();
        if tracer.enabled() {
            let mut events = Vec::new();
            let report = self.run_impl(trace, Some(&mut events));
            tracer.record_batch(&mut events);
            report
        } else {
            self.run_impl(trace, None)
        }
    }

    /// Like [`run`](Machine::run), but always collects this run's
    /// miss events and returns them to the caller instead of the
    /// global tracer. The report is identical to the untraced run's.
    pub fn run_traced<S: TraceSource>(&mut self, trace: &mut S) -> (SimReport, Vec<TraceEvent>) {
        let _run_span = fosm_obs::span("sim.run");
        let mut events = Vec::new();
        let report = self.run_impl(trace, Some(&mut events));
        (report, events)
    }

    fn run_impl<S: TraceSource>(
        &mut self,
        trace: &mut S,
        mut events: Option<&mut Vec<TraceEvent>>,
    ) -> SimReport {
        let cfg = &self.config;
        let width = cfg.width as usize;
        let mut report = SimReport::default();

        // Front end. The pipe holds `pipe_depth` stages of `width`
        // slots each; when dispatch backs up (window or ROB full) the
        // stages fill and fetch stalls. Without this bound the front
        // end acts as an unbounded implicit fetch buffer, silently
        // hiding I-cache-miss and branch-resolution stalls behind a
        // cushion no real machine has (an *explicit* cushion is the
        // opt-in `FetchBufferConfig` extension).
        let pipe_cap = cfg.pipe_depth as usize * width;
        let mut pipe: VecDeque<PipeEntry> = VecDeque::new();
        let mut pending_inst: Option<Inst> = None;
        let mut fetch_stall_until: u64 = 0;
        let mut blocked_on_branch = false;
        // Prefetch queue, used only when a fetch buffer is configured.
        let mut prefetch: VecDeque<(Inst, bool)> = VecDeque::new();
        let mut trace_done = false;
        let mut next_seq: u64 = 0;

        // Back end.
        let mut window: Vec<WinEntry> = Vec::with_capacity(cfg.win_size as usize);
        let mut rob: VecDeque<RobEntry> = VecDeque::with_capacity(cfg.rob_size as usize);
        let mut rob_front_seq: u64 = 0;
        let mut last_writer = [NO_PRODUCER; NUM_REGS];
        let mut done_by_seq: Vec<u64> = Vec::new();
        // Clustered-window state: which cluster each dispatched
        // instruction went to, and per-cluster occupancy.
        let num_clusters = cfg.clusters.map_or(1, |c| c.clusters as usize);
        let forward_delay = cfg.clusters.map_or(0, |c| c.forward_delay as u64);
        let cluster_win_cap = cfg.win_size as usize / num_clusters;
        let cluster_width = width / num_clusters;
        let mut cluster_by_seq: Vec<u8> = Vec::new();
        let mut cluster_occupancy = vec![0usize; num_clusters];
        let mut steer_cursor = 0usize;

        let mut cycle: u64 = 0;
        // Cycle the last traced interval closed at (monotonic; a miss
        // event whose onset precedes it clamps forward).
        let mut last_boundary_cycle: u64 = 0;
        loop {
            // ---- retire (in order, up to `width`) ----
            let mut retired = 0;
            while retired < width {
                match rob.front() {
                    Some(e) if e.issued && e.done <= cycle => {
                        rob.pop_front();
                        rob_front_seq += 1;
                        report.instructions += 1;
                        retired += 1;
                    }
                    _ => break,
                }
            }

            // ---- issue (oldest-first ready-first, up to `width`,
            //      bounded per functional-unit class if configured) ----
            let mut issued = 0;
            let mut fu_used = [0u32; FuClass::ALL.len()];
            let mut cluster_issued = vec![0usize; num_clusters];
            for i in 0..window.len() {
                if issued >= width {
                    break;
                }
                let e = window[i];
                debug_assert!(!e.issued);
                if num_clusters > 1 && cluster_issued[e.cluster as usize] >= cluster_width {
                    continue; // this cluster's issue ports are busy
                }
                if let Some(pool) = &cfg.fu {
                    if fu_used[e.fu_class.index()] >= pool.count(e.fu_class) {
                        continue; // all units of this class busy this cycle
                    }
                }
                let ready = e.producers.iter().all(|&p| {
                    p == NO_PRODUCER
                        || done_by_seq.get(p as usize).is_some_and(|&d| {
                            // Cross-cluster results arrive late.
                            let extra =
                                if num_clusters > 1 && cluster_by_seq[p as usize] != e.cluster {
                                    forward_delay
                                } else {
                                    0
                                };
                            d.saturating_add(extra) <= cycle
                        })
                });
                if !ready {
                    continue;
                }
                fu_used[e.fu_class.index()] += 1;
                cluster_issued[e.cluster as usize] += 1;
                cluster_occupancy[e.cluster as usize] -= 1;
                let done = cycle + e.comp_latency as u64;
                window[i].issued = true;
                issued += 1;
                done_by_seq[e.seq as usize] = done;
                let rob_idx = (e.seq - rob_front_seq) as usize;
                rob[rob_idx].issued = true;
                rob[rob_idx].done = done;

                if e.mispredicted {
                    // Branch resolution: flush is implicit (wrong-path
                    // instructions are never fetched); fetching of
                    // correct-path instructions resumes when the branch
                    // completes.
                    debug_assert!(blocked_on_branch);
                    blocked_on_branch = false;
                    fetch_stall_until = fetch_stall_until.max(done);
                    let remaining = window.iter().filter(|w| !w.issued).count() as u64;
                    report.window_insts_at_mispredict_sum += remaining;
                    report.window_insts_at_mispredict_count += 1;
                    if let Some(buf) = events.as_deref_mut() {
                        // Fetch stopped when the branch entered the
                        // pipe; useful instructions reach the window
                        // again a pipe refill after it resolves.
                        let onset = e.fetch_cycle.max(last_boundary_cycle);
                        buf.push(TraceEvent::new(
                            EventKind::IntervalBoundary,
                            report.instructions,
                            last_boundary_cycle,
                            onset,
                            0,
                        ));
                        last_boundary_cycle = onset;
                        buf.push(TraceEvent::new(
                            EventKind::BranchMispredict,
                            e.seq,
                            e.fetch_cycle,
                            done + cfg.pipe_depth as u64,
                            0,
                        ));
                    }
                }
                if e.long_miss_load {
                    report.rob_ahead_of_long_miss_sum += rob_idx as u64;
                    report.rob_ahead_of_long_miss_count += 1;
                    if let Some(buf) = events.as_deref_mut() {
                        let onset = cycle.max(last_boundary_cycle);
                        buf.push(TraceEvent::new(
                            EventKind::IntervalBoundary,
                            report.instructions,
                            last_boundary_cycle,
                            onset,
                            0,
                        ));
                        last_boundary_cycle = onset;
                        buf.push(TraceEvent::new(
                            EventKind::LongDCacheMiss,
                            e.seq,
                            cycle,
                            done,
                            cfg.mem_latency as u64,
                        ));
                    }
                }
            }
            if issued > 0 {
                window.retain(|e| !e.issued);
            }

            // ---- dispatch (in order, up to `width`) ----
            let mut dispatched = 0;
            while dispatched < width
                && rob.len() < cfg.rob_size as usize
                && window.len() < cfg.win_size as usize
            {
                let Some(front) = pipe.front() else { break };
                if front.ready > cycle {
                    break;
                }
                // Clustered dispatch: pick a target cluster before
                // committing to dispatch (in-order dispatch stalls if
                // the chosen cluster is full under round-robin).
                let peek_producers = {
                    let mut producers = [NO_PRODUCER; 2];
                    for (slot, src) in front.inst.sources().enumerate() {
                        producers[slot] = last_writer[src.index()];
                    }
                    producers
                };
                let cluster: u8 = if num_clusters > 1 {
                    use crate::config::Steering;
                    let steering = cfg.clusters.expect("checked").steering;
                    let pick = match steering {
                        Steering::RoundRobin => steer_cursor % num_clusters,
                        Steering::Dependence => {
                            let preferred = peek_producers
                                .iter()
                                .filter(|&&p| p != NO_PRODUCER)
                                .map(|&p| cluster_by_seq[p as usize] as usize)
                                .find(|&c| cluster_occupancy[c] < cluster_win_cap);
                            preferred.unwrap_or_else(|| {
                                // Least-loaded cluster.
                                (0..num_clusters)
                                    .min_by_key(|&c| cluster_occupancy[c])
                                    .expect("at least one cluster")
                            })
                        }
                    };
                    if cluster_occupancy[pick] >= cluster_win_cap {
                        break; // target cluster full: in-order dispatch stalls
                    }
                    steer_cursor += 1;
                    pick as u8
                } else {
                    0
                };
                let pe = pipe.pop_front().expect("checked non-empty");
                let inst = pe.inst;
                let producers = peek_producers;

                let mut long_miss_load = false;
                let comp_latency = match inst.op {
                    Op::Load => {
                        let addr = inst.mem_addr.expect("loads carry addresses");
                        // A data-TLB miss serializes a page walk in
                        // front of the cache access.
                        let walk = match &mut self.dtlb {
                            Some(tlb) => {
                                if tlb.access(addr) {
                                    0
                                } else {
                                    report.dtlb_misses += 1;
                                    tlb.config().walk_latency
                                }
                            }
                            None => 0,
                        };
                        walk + match self.hierarchy.access(AccessKind::Load, addr) {
                            AccessOutcome::L1 => cfg.latencies.latency(Op::Load),
                            AccessOutcome::L2 => {
                                report.dcache_short_misses += 1;
                                cfg.l2_latency
                            }
                            AccessOutcome::Memory => {
                                report.dcache_long_misses += 1;
                                long_miss_load = true;
                                cfg.mem_latency
                            }
                        }
                    }
                    Op::Store => {
                        // Stores retire through a write buffer: they
                        // warm the cache but never block completion.
                        let addr = inst.mem_addr.expect("stores carry addresses");
                        self.hierarchy.access(AccessKind::Store, addr);
                        1
                    }
                    op => cfg.latencies.latency(op),
                };

                if let Some(d) = inst.dest {
                    last_writer[d.index()] = pe.seq;
                }
                if done_by_seq.len() <= pe.seq as usize {
                    done_by_seq.resize(pe.seq as usize + 1, u64::MAX);
                }
                rob.push_back(RobEntry {
                    issued: false,
                    done: u64::MAX,
                });
                if cluster_by_seq.len() <= pe.seq as usize {
                    cluster_by_seq.resize(pe.seq as usize + 1, 0);
                }
                cluster_by_seq[pe.seq as usize] = cluster;
                cluster_occupancy[cluster as usize] += 1;
                window.push(WinEntry {
                    seq: pe.seq,
                    producers,
                    comp_latency,
                    fu_class: inst.op.fu_class(),
                    cluster,
                    mispredicted: pe.mispredicted,
                    long_miss_load,
                    issued: false,
                    fetch_cycle: pe.ready.saturating_sub(cfg.pipe_depth as u64),
                });
                dispatched += 1;
            }

            // ---- fetch ----
            // With a fetch buffer: first feed the pipe from the buffer
            // (up to `width`), then prefetch into the buffer (up to its
            // bandwidth) — so buffered instructions keep the pipeline
            // fed while an I-cache miss stalls the prefetcher.
            // Without one: fetch couples the I-cache directly to the
            // pipe, as in the paper's baseline.
            if let Some(fb) = cfg.fetch_buffer {
                let mut fed = 0;
                while fed < width && pipe.len() < pipe_cap {
                    let Some((inst, mispredicted)) = prefetch.pop_front() else {
                        break;
                    };
                    let seq = next_seq;
                    next_seq += 1;
                    pipe.push_back(PipeEntry {
                        ready: cycle + cfg.pipe_depth as u64,
                        inst,
                        seq,
                        mispredicted,
                    });
                    fed += 1;
                }
                if !blocked_on_branch && cycle >= fetch_stall_until && !trace_done {
                    let mut prefetched = 0;
                    while prefetched < fb.bandwidth as usize && prefetch.len() < fb.entries as usize
                    {
                        let inst = match pending_inst.take() {
                            Some(i) => i,
                            None => {
                                let Some(i) = trace.next_inst() else {
                                    trace_done = true;
                                    break;
                                };
                                match self.hierarchy.access(AccessKind::IFetch, i.pc) {
                                    AccessOutcome::L1 => i,
                                    AccessOutcome::L2 => {
                                        report.icache_short_misses += 1;
                                        fetch_stall_until = cycle + cfg.l2_latency as u64;
                                        pending_inst = Some(i);
                                        if let Some(buf) = events.as_deref_mut() {
                                            push_icache_event(
                                                buf,
                                                &mut last_boundary_cycle,
                                                report.instructions,
                                                next_seq,
                                                cycle,
                                                fetch_stall_until,
                                                cfg.l2_latency as u64,
                                            );
                                        }
                                        break;
                                    }
                                    AccessOutcome::Memory => {
                                        report.icache_long_misses += 1;
                                        fetch_stall_until = cycle + cfg.mem_latency as u64;
                                        pending_inst = Some(i);
                                        if let Some(buf) = events.as_deref_mut() {
                                            push_icache_event(
                                                buf,
                                                &mut last_boundary_cycle,
                                                report.instructions,
                                                next_seq,
                                                cycle,
                                                fetch_stall_until,
                                                cfg.mem_latency as u64,
                                            );
                                        }
                                        break;
                                    }
                                }
                            }
                        };
                        let mut mispredicted = false;
                        if inst.op.is_cond_branch() {
                            let taken = inst.branch.expect("branches carry outcomes").taken;
                            let correct = self.predictor.observe(inst.pc, taken);
                            report.cond_branches += 1;
                            if !correct {
                                report.mispredicts += 1;
                                mispredicted = true;
                            }
                        }
                        prefetch.push_back((inst, mispredicted));
                        prefetched += 1;
                        if mispredicted {
                            blocked_on_branch = true;
                            break;
                        }
                    }
                }
            } else if !blocked_on_branch && cycle >= fetch_stall_until && !trace_done {
                let mut fetched = 0;
                while fetched < width && pipe.len() < pipe_cap {
                    let inst = match pending_inst.take() {
                        Some(i) => i,
                        None => {
                            let Some(i) = trace.next_inst() else {
                                trace_done = true;
                                break;
                            };
                            match self.hierarchy.access(AccessKind::IFetch, i.pc) {
                                AccessOutcome::L1 => i,
                                AccessOutcome::L2 => {
                                    report.icache_short_misses += 1;
                                    fetch_stall_until = cycle + cfg.l2_latency as u64;
                                    pending_inst = Some(i);
                                    if let Some(buf) = events.as_deref_mut() {
                                        push_icache_event(
                                            buf,
                                            &mut last_boundary_cycle,
                                            report.instructions,
                                            next_seq,
                                            cycle,
                                            fetch_stall_until,
                                            cfg.l2_latency as u64,
                                        );
                                    }
                                    break;
                                }
                                AccessOutcome::Memory => {
                                    report.icache_long_misses += 1;
                                    fetch_stall_until = cycle + cfg.mem_latency as u64;
                                    pending_inst = Some(i);
                                    if let Some(buf) = events.as_deref_mut() {
                                        push_icache_event(
                                            buf,
                                            &mut last_boundary_cycle,
                                            report.instructions,
                                            next_seq,
                                            cycle,
                                            fetch_stall_until,
                                            cfg.mem_latency as u64,
                                        );
                                    }
                                    break;
                                }
                            }
                        }
                    };
                    let seq = next_seq;
                    next_seq += 1;
                    let mut mispredicted = false;
                    if inst.op.is_cond_branch() {
                        let taken = inst.branch.expect("branches carry outcomes").taken;
                        let correct = self.predictor.observe(inst.pc, taken);
                        report.cond_branches += 1;
                        if !correct {
                            report.mispredicts += 1;
                            mispredicted = true;
                        }
                    }
                    pipe.push_back(PipeEntry {
                        ready: cycle + cfg.pipe_depth as u64,
                        inst,
                        seq,
                        mispredicted,
                    });
                    fetched += 1;
                    if mispredicted {
                        // Fetching of useful instructions stops until
                        // the branch resolves.
                        blocked_on_branch = true;
                        break;
                    }
                }
            }

            report.window_occupancy_sum += window.len() as u64;
            report.rob_occupancy_sum += rob.len() as u64;
            cycle += 1;

            if trace_done
                && pipe.is_empty()
                && rob.is_empty()
                && prefetch.is_empty()
                && pending_inst.is_none()
            {
                break;
            }
        }

        report.cycles = cycle;
        if let Some(buf) = events {
            // Close the trailing interval (the steady-state tail after
            // the last miss event).
            buf.push(TraceEvent::new(
                EventKind::IntervalBoundary,
                report.instructions,
                last_boundary_cycle,
                cycle,
                0,
            ));
        }
        report.observe_into(fosm_obs::global(), "sim");
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PredictorConfig;
    use fosm_cache::{CacheConfig, HierarchyConfig, Replacement};
    use fosm_isa::Reg;
    use fosm_trace::VecTrace;

    fn independents(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new((i % 32) as u8),
                    None,
                    None,
                )
            })
            .collect()
    }

    fn chain(n: usize) -> Vec<Inst> {
        (0..n)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntAlu,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect()
    }

    fn run_ideal(insts: Vec<Inst>) -> SimReport {
        Machine::new(MachineConfig::ideal()).run(&mut VecTrace::new(insts))
    }

    #[test]
    fn independent_instructions_reach_full_width() {
        let r = run_ideal(independents(4000));
        assert_eq!(r.instructions, 4000);
        assert!(r.ipc() > 3.8, "ipc {}", r.ipc());
        assert!(r.ipc() <= 4.0 + 1e-9);
    }

    #[test]
    fn dependence_chain_runs_at_one_ipc() {
        let r = run_ideal(chain(2000));
        assert!((r.ipc() - 1.0).abs() < 0.05, "ipc {}", r.ipc());
    }

    #[test]
    fn multiply_chain_runs_at_one_over_latency() {
        let insts: Vec<Inst> = (0..900)
            .map(|i| {
                Inst::alu(
                    i as u64 * 4,
                    Op::IntMul,
                    Reg::new(1),
                    if i == 0 { None } else { Some(Reg::new(1)) },
                    None,
                )
            })
            .collect();
        let r = run_ideal(insts);
        // IntMul latency 3 -> one instruction every 3 cycles.
        assert!((r.ipc() - 1.0 / 3.0).abs() < 0.02, "ipc {}", r.ipc());
    }

    #[test]
    fn narrow_machine_halves_throughput() {
        let mut cfg = MachineConfig::ideal();
        cfg.width = 2;
        let r = Machine::new(cfg).run(&mut VecTrace::new(independents(4000)));
        assert!((r.ipc() - 2.0).abs() < 0.1, "ipc {}", r.ipc());
    }

    #[test]
    fn mispredicted_branch_costs_at_least_the_pipeline_depth() {
        // Independent instructions with a single always-mispredicted
        // branch in the middle (NeverTaken predictor, taken branch).
        let mut insts = independents(800);
        insts[400] = Inst::branch(400 * 4, Op::CondBranch, None, true, 401 * 4);
        let mut with_miss = MachineConfig::ideal();
        with_miss.predictor = PredictorConfig::NeverTaken;
        let r_miss = Machine::new(with_miss).run(&mut VecTrace::new(insts.clone()));
        let r_ideal = run_ideal(insts);
        assert_eq!(r_miss.mispredicts, 1);
        let penalty = r_miss.cycles as i64 - r_ideal.cycles as i64;
        // Paper: penalty = win_drain + pipe_depth + ramp_up >= pipe_depth.
        assert!(
            penalty >= 5,
            "penalty {penalty} should be at least the front-end depth"
        );
        assert!(penalty <= 30, "penalty {penalty} unreasonably large");
    }

    #[test]
    fn deeper_pipeline_raises_branch_penalty() {
        let mut insts = independents(800);
        for k in [200usize, 400, 600] {
            insts[k] = Inst::branch(k as u64 * 4, Op::CondBranch, None, true, (k as u64 + 1) * 4);
        }
        let mk = |depth| {
            let mut c = MachineConfig::ideal().with_pipe_depth(depth);
            c.predictor = PredictorConfig::NeverTaken;
            Machine::new(c).run(&mut VecTrace::new(insts.clone()))
        };
        let shallow = mk(5);
        let deep = mk(9);
        assert_eq!(shallow.mispredicts, 3);
        // Each of the 3 mispredictions should cost 4-8 extra cycles
        // (one per added stage for the refill, plus up to one more for
        // the branch's own travel when it resolves before the window
        // drains, as these dependence-free branches do).
        let delta = deep.cycles as i64 - shallow.cycles as i64;
        assert!((12..=24).contains(&delta), "delta {delta}, expected 12..24");
    }

    #[test]
    fn icache_miss_stalls_fetch_by_l2_latency() {
        // Tiny L1I (2 lines of 64 B) and huge L2: every 16th instruction
        // crosses a line; lines cycle so each crossing is a short miss.
        let l1i = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let mut cfg = MachineConfig::ideal();
        cfg.hierarchy = HierarchyConfig {
            l1i: Some(l1i),
            l1d: None,
            l2: None,
            next_line_prefetch: 0,
        };
        let r = Machine::new(cfg).run(&mut VecTrace::new(independents(3200)));
        assert!(
            r.icache_short_misses > 100,
            "misses {}",
            r.icache_short_misses
        );
        let ideal = run_ideal(independents(3200));
        let per_miss = (r.cycles as f64 - ideal.cycles as f64) / r.icache_short_misses as f64;
        // Paper §4.2: the I-cache miss penalty approximately equals the
        // miss delay (8 cycles here).
        assert!(
            (6.0..=9.5).contains(&per_miss),
            "per-miss penalty {per_miss}, expected ~8"
        );
    }

    #[test]
    fn long_data_miss_blocks_retirement_and_fills_rob() {
        // One cold load (tiny L1D and L2 -> miss to memory) followed by
        // independent instructions.
        let l1d = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let l2 = CacheConfig::new(256, 2, 64, Replacement::Lru).unwrap();
        let mut insts = vec![Inst::load(0, Reg::new(40), None, 0x9000)];
        insts.extend(independents(600).into_iter().map(|mut i| {
            i.pc += 4;
            i
        }));
        let mut cfg = MachineConfig::ideal();
        cfg.hierarchy = HierarchyConfig {
            l1i: None,
            l1d: Some(l1d),
            l2: Some(l2),
            next_line_prefetch: 0,
        };
        let r = Machine::new(cfg).run(&mut VecTrace::new(insts));
        assert_eq!(r.dcache_long_misses, 1);
        // Expected time: the load issues at ~cycle 7 and completes at
        // ~207; retirement then drains all 601 instructions at the
        // retire width, 601/4 ≈ 150 cycles -> ~357 total.
        assert!(r.cycles >= 340, "cycles {}", r.cycles);
        assert!(r.cycles <= 380, "cycles {}", r.cycles);
        // While blocked, the ROB should have filled.
        assert!(
            r.mean_rob_occupancy() > 60.0,
            "rob occ {}",
            r.mean_rob_occupancy()
        );
    }

    #[test]
    fn ideal_run_is_deterministic() {
        let a = run_ideal(independents(1000));
        let b = run_ideal(independents(1000));
        assert_eq!(a, b);
    }

    #[test]
    fn window_size_limits_extractable_parallelism() {
        // Interleave 8 chains; a tiny window cannot see across chains.
        let mut insts = Vec::new();
        for i in 0..4000u64 {
            let r = Reg::new((i % 8) as u8);
            insts.push(Inst::alu(i * 4, Op::IntAlu, r, Some(r), None));
        }
        let mut small = MachineConfig::ideal();
        small.width = 8;
        small.win_size = 2;
        let mut big = MachineConfig::ideal();
        big.width = 8;
        big.win_size = 48;
        let r_small = Machine::new(small).run(&mut VecTrace::new(insts.clone()));
        let r_big = Machine::new(big).run(&mut VecTrace::new(insts));
        assert!(
            r_big.ipc() > 2.0 * r_small.ipc(),
            "big {} vs small {}",
            r_big.ipc(),
            r_small.ipc()
        );
    }

    #[test]
    fn empty_trace_finishes_immediately() {
        let r = Machine::new(MachineConfig::ideal()).run(&mut VecTrace::default());
        assert_eq!(r.instructions, 0);
        assert!(r.cycles <= 2);
    }

    #[test]
    fn traced_run_reports_identically_and_collects_events() {
        let mut insts = independents(800);
        insts[400] = Inst::branch(400 * 4, Op::CondBranch, None, true, 401 * 4);
        let mut cfg = MachineConfig::ideal();
        cfg.predictor = PredictorConfig::NeverTaken;
        let untraced = Machine::new(cfg.clone()).run(&mut VecTrace::new(insts.clone()));
        let (traced, events) = Machine::new(cfg).run_traced(&mut VecTrace::new(insts));
        // Tracing must not perturb the simulation.
        assert_eq!(untraced, traced);
        let branches: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::BranchMispredict)
            .collect();
        assert_eq!(branches.len() as u64, traced.mispredicts);
        let b = branches[0];
        assert_eq!(b.inst, 400);
        assert!(b.end > b.start, "mispredict extent must be positive");
        assert!(b.predicted.is_nan(), "sim must not invent predictions");
        // Every miss event terminates an interval; plus the tail.
        let boundaries = events
            .iter()
            .filter(|e| e.kind == EventKind::IntervalBoundary)
            .count();
        assert_eq!(boundaries, branches.len() + 1);
    }

    #[test]
    fn traced_event_counts_match_report_counters() {
        // Tiny caches force both I-misses and a long D-miss.
        let l1i = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let l1d = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let l2 = CacheConfig::new(256, 2, 64, Replacement::Lru).unwrap();
        let mut insts = vec![Inst::load(0, Reg::new(40), None, 0x9000)];
        insts.extend(independents(600).into_iter().map(|mut i| {
            i.pc += 4;
            i
        }));
        let mut cfg = MachineConfig::ideal();
        cfg.hierarchy = HierarchyConfig {
            l1i: Some(l1i),
            l1d: Some(l1d),
            l2: Some(l2),
            next_line_prefetch: 0,
        };
        let (r, events) = Machine::new(cfg.clone()).run_traced(&mut VecTrace::new(insts));
        let count = |kind: EventKind| events.iter().filter(|e| e.kind == kind).count() as u64;
        assert_eq!(
            count(EventKind::ICacheMiss),
            r.icache_short_misses + r.icache_long_misses
        );
        assert_eq!(count(EventKind::LongDCacheMiss), r.dcache_long_misses);
        assert!(r.dcache_long_misses >= 1);
        // The long miss is charged the memory latency.
        let d = events
            .iter()
            .find(|e| e.kind == EventKind::LongDCacheMiss)
            .unwrap();
        assert_eq!(d.delta, cfg.mem_latency as u64);
        assert!(d.extent() >= cfg.mem_latency as u64);
        // Intervals tile the run: boundaries are monotonic and the
        // last one ends at the final cycle.
        let bounds: Vec<_> = events
            .iter()
            .filter(|e| e.kind == EventKind::IntervalBoundary)
            .collect();
        for pair in bounds.windows(2) {
            assert!(pair[0].end == pair[1].start, "intervals must tile");
        }
        assert_eq!(bounds.last().unwrap().end, r.cycles);
    }

    #[test]
    fn stores_do_not_block_retirement() {
        // Stores that miss to memory retire immediately via the write
        // buffer: total time stays ~n/width.
        let l1d = CacheConfig::new(128, 2, 64, Replacement::Lru).unwrap();
        let l2 = CacheConfig::new(256, 2, 64, Replacement::Lru).unwrap();
        let mut insts = Vec::new();
        for i in 0..400u64 {
            insts.push(Inst::store(i * 4, Reg::new(1), None, 0x10000 + i * 4096));
        }
        let mut cfg = MachineConfig::ideal();
        cfg.hierarchy = HierarchyConfig {
            l1i: None,
            l1d: Some(l1d),
            l2: Some(l2),
            next_line_prefetch: 0,
        };
        let r = Machine::new(cfg).run(&mut VecTrace::new(insts));
        assert_eq!(r.dcache_long_misses, 0, "store misses are not long misses");
        assert!(r.ipc() > 3.0, "ipc {}", r.ipc());
    }
}
