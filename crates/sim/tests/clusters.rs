//! Unit-level tests of the clustered-window mechanics on hand-built
//! traces, where the expected cycle counts can be reasoned out exactly.

use fosm_isa::{Inst, Op, Reg};
use fosm_sim::{ClusterConfig, Machine, MachineConfig, Steering};
use fosm_trace::VecTrace;

fn independents(n: usize) -> Vec<Inst> {
    (0..n)
        .map(|i| {
            Inst::alu(
                i as u64 * 4,
                Op::IntAlu,
                Reg::new((i % 32) as u8),
                None,
                None,
            )
        })
        .collect()
}

fn two_clusters(delay: u32, steering: Steering) -> MachineConfig {
    MachineConfig::ideal().with_clusters(ClusterConfig {
        clusters: 2,
        forward_delay: delay,
        steering,
    })
}

#[test]
fn per_cluster_issue_ports_cap_throughput() {
    // Independent work: a 4-wide machine split 2x2 still reaches 4 IPC
    // because both clusters issue 2 each.
    let r = Machine::new(two_clusters(0, Steering::RoundRobin))
        .run(&mut VecTrace::new(independents(4000)));
    assert!(r.ipc() > 3.7, "ipc {}", r.ipc());
}

#[test]
fn forwarding_delay_slows_cross_cluster_chains() {
    // A pure dependence chain: under round-robin steering every hop
    // crosses clusters, adding `delay` per instruction.
    let chain: Vec<Inst> = (0..600)
        .map(|i| {
            Inst::alu(
                i as u64 * 4,
                Op::IntAlu,
                Reg::new(1),
                if i == 0 { None } else { Some(Reg::new(1)) },
                None,
            )
        })
        .collect();
    let no_delay =
        Machine::new(two_clusters(0, Steering::RoundRobin)).run(&mut VecTrace::new(chain.clone()));
    let with_delay =
        Machine::new(two_clusters(2, Steering::RoundRobin)).run(&mut VecTrace::new(chain.clone()));
    // Every hop pays +2 cycles: IPC drops from ~1 to ~1/3.
    assert!(
        (no_delay.ipc() - 1.0).abs() < 0.05,
        "ipc {}",
        no_delay.ipc()
    );
    assert!(
        (with_delay.ipc() - 1.0 / 3.0).abs() < 0.05,
        "ipc {}",
        with_delay.ipc()
    );

    // Dependence steering keeps the chain mostly in one cluster; the
    // per-cluster window fills with waiting chain instructions and
    // spills a fraction to the other cluster, so the result sits just
    // below the penalty-free 1.0 but far above round-robin's 1/3.
    let steered =
        Machine::new(two_clusters(2, Steering::Dependence)).run(&mut VecTrace::new(chain));
    assert!(steered.ipc() > 0.85, "ipc {}", steered.ipc());
}

#[test]
fn cluster_capacity_fragmentation_can_stall_dispatch() {
    // Two independent chains under *dependence* steering both try to
    // live in their producers' clusters; with tiny per-cluster windows
    // the machine still makes progress and retires everything.
    let mut insts = Vec::new();
    for i in 0..1000u64 {
        let r = Reg::new((i % 2) as u8);
        insts.push(Inst::alu(i * 4, Op::IntAlu, r, Some(r), None));
    }
    let mut cfg = MachineConfig::ideal().with_clusters(ClusterConfig {
        clusters: 2,
        forward_delay: 1,
        steering: Steering::Dependence,
    });
    cfg.win_size = 4; // 2 entries per cluster
    let r = Machine::new(cfg).run(&mut VecTrace::new(insts));
    assert_eq!(r.instructions, 1000);
    // Two independent chains at 1 IPC each = 2 IPC.
    assert!(r.ipc() > 1.6, "ipc {}", r.ipc());
}

#[test]
fn four_clusters_divide_the_window_evenly() {
    let mut cfg = MachineConfig::ideal().with_width(8);
    cfg.win_size = 64;
    cfg = cfg.with_clusters(ClusterConfig {
        clusters: 4,
        forward_delay: 1,
        steering: Steering::RoundRobin,
    });
    cfg.validate().expect("8 and 64 divide by 4");
    let r = Machine::new(cfg).run(&mut VecTrace::new(independents(4000)));
    assert!(
        r.ipc() > 7.0,
        "independent work saturates all clusters: {}",
        r.ipc()
    );
}
