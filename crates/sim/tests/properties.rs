//! Property-based tests for the detailed simulator.

use fosm_isa::{Inst, Op, Reg};
use fosm_sim::{Machine, MachineConfig};
use fosm_trace::VecTrace;
use proptest::prelude::*;

/// Random register-dataflow traces (ALU ops only, no control/memory).
fn dataflow_trace() -> impl Strategy<Value = Vec<Inst>> {
    prop::collection::vec((0u8..32, 0u8..32, prop::option::of(0u8..32)), 4..200).prop_map(
        |triples| {
            triples
                .into_iter()
                .enumerate()
                .map(|(i, (d, s1, s2))| {
                    Inst::alu(
                        i as u64 * 4,
                        Op::IntAlu,
                        Reg::new(d),
                        Some(Reg::new(s1)),
                        s2.map(Reg::new),
                    )
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Structural bounds: every instruction retires, IPC never exceeds
    /// the width, and cycles are at least the retire-bandwidth bound.
    #[test]
    fn structural_bounds(insts in dataflow_trace(), width in 1u32..8) {
        let n = insts.len() as u64;
        let mut cfg = MachineConfig::ideal();
        cfg.width = width;
        let report = Machine::new(cfg).run(&mut VecTrace::new(insts));
        prop_assert_eq!(report.instructions, n);
        prop_assert!(report.ipc() <= width as f64 + 1e-9);
        prop_assert!(report.cycles >= n / width as u64);
    }

    /// Runs are deterministic.
    #[test]
    fn deterministic(insts in dataflow_trace()) {
        let a = Machine::new(MachineConfig::ideal()).run(&mut VecTrace::new(insts.clone()));
        let b = Machine::new(MachineConfig::ideal()).run(&mut VecTrace::new(insts));
        prop_assert_eq!(a, b);
    }

    /// Enlarging the window (resources) never slows the ideal machine.
    #[test]
    fn bigger_window_never_hurts(insts in dataflow_trace()) {
        let mut small = MachineConfig::ideal();
        small.win_size = 4;
        let mut big = MachineConfig::ideal();
        big.win_size = 48;
        let a = Machine::new(small).run(&mut VecTrace::new(insts.clone()));
        let b = Machine::new(big).run(&mut VecTrace::new(insts));
        prop_assert!(b.cycles <= a.cycles);
    }

    /// A deeper front end never speeds anything up, and on branch-free
    /// code it only adds a constant startup delay.
    #[test]
    fn pipeline_depth_costs_only_startup(insts in dataflow_trace(), extra in 1u32..20) {
        let shallow = MachineConfig::ideal().with_pipe_depth(2);
        let deep = MachineConfig::ideal().with_pipe_depth(2 + extra);
        let a = Machine::new(shallow).run(&mut VecTrace::new(insts.clone()));
        let b = Machine::new(deep).run(&mut VecTrace::new(insts));
        prop_assert_eq!(b.cycles, a.cycles + extra as u64,
            "branch-free code pays depth only once at startup");
    }

    /// Occupancy statistics stay within the configured structures.
    #[test]
    fn occupancies_within_bounds(insts in dataflow_trace()) {
        let cfg = MachineConfig::ideal();
        let (win, rob) = (cfg.win_size as f64, cfg.rob_size as f64);
        let report = Machine::new(cfg).run(&mut VecTrace::new(insts));
        prop_assert!(report.mean_window_occupancy() <= win);
        prop_assert!(report.mean_rob_occupancy() <= rob);
    }
}
