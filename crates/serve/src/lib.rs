//! Model-as-a-service daemon for the fosm toolchain.
//!
//! Everything else in this workspace is batch-shaped: one process, one
//! request, exit. That shape wastes the two most expensive artifacts in
//! the pipeline — recorded traces and functional profiles — whenever a
//! workflow issues many small model queries (interactive exploration,
//! CI matrices, parameter sweeps driven by external tools). `fosm
//! serve` keeps one process resident and makes the artifacts shared:
//!
//! * [`proto`] — the wire protocol: length-prefixed JSON frames over
//!   TCP, with structured errors for oversized, truncated, and
//!   malformed input;
//! * [`pool`] — a work-stealing worker pool (per-worker LIFO deques, a
//!   shared injector, FIFO stealing) that executes requests and
//!   explore shards;
//! * [`batch`] — leader–follower request batching that coalesces
//!   concurrent same-trace probe requests into one fused
//!   `profile_many` replay;
//! * [`service`] — the request handlers, shared verbatim between the
//!   daemon and the in-process `fosm client --local` path so responses
//!   are byte-identical either way;
//! * [`server`] — the TCP accept loop, connection handling, and
//!   graceful shutdown;
//! * [`client`] — a small blocking client used by `fosm client` and
//!   the load generator;
//! * [`loadgen`] — a closed-loop load generator recording latency
//!   percentiles and throughput into `BENCH_serve.json`;
//! * [`telemetry`] — request-lifecycle phase histograms and the
//!   bounded flight recorder behind `Request::Telemetry` / `fosm top`.
//!
//! Durability across restarts comes from `fosm-bench`'s disk-backed
//! artifact store; per-request observability comes from `fosm-obs`
//! scoped registries. This crate adds no new model code — it is purely
//! a concurrency and transport layer over the existing pipeline.

#![forbid(unsafe_code)]

pub mod batch;
pub mod client;
pub mod loadgen;
pub mod pool;
pub mod proto;
pub mod server;
pub mod service;
pub mod telemetry;
