//! The wire protocol: length-prefixed JSON frames.
//!
//! Every message on a connection — in either direction — is one
//! **frame**: a 4-byte big-endian `u32` length followed by exactly
//! that many bytes of UTF-8 JSON. The framing layer is deliberately
//! dumb (no versioning handshake, no compression, no multiplexing):
//! requests are answered in order on each connection, so a frame
//! boundary is also a request boundary, and a client that wants
//! concurrency opens more connections.
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (BE)  | payload: len bytes (JSON) |
//! +----------------+---------------------------+
//! ```
//!
//! Defensive properties, tested in `tests/proto.rs`:
//!
//! * a length above [`MAX_FRAME_LEN`] is rejected before any payload
//!   is read ([`FrameError::Oversized`]) — a garbage header cannot make
//!   the server allocate gigabytes;
//! * a stream that ends mid-header or mid-payload reads as
//!   [`FrameError::Truncated`], never a hang or a partial frame;
//! * payload bytes that are not valid JSON for the expected type
//!   decode to an error the server answers with a structured
//!   [`Response::Err`], never a panic.

use std::io::{Read, Write};

use fosm_core::params::ProcessorParams;
use serde::{Deserialize, Serialize};

/// Upper bound on a single frame's payload (8 MiB). Large enough for
/// any profile JSON this toolchain produces, small enough that a
/// malicious or corrupt length field cannot drive allocation.
pub const MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Size of the frame header (the big-endian payload length).
pub const HEADER_LEN: usize = 4;

/// A failure at the framing layer (below JSON decoding).
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The header announced a payload above [`MAX_FRAME_LEN`].
    Oversized {
        /// The announced payload length.
        announced: u32,
    },
    /// The stream ended inside a header or payload.
    Truncated {
        /// Bytes the frame still owed when the stream ended.
        missing: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport error: {e}"),
            FrameError::Oversized { announced } => write!(
                f,
                "frame announces {announced} bytes, above the {MAX_FRAME_LEN}-byte limit"
            ),
            FrameError::Truncated { missing } => {
                write!(f, "stream ended {missing} byte(s) short of a full frame")
            }
        }
    }
}

impl From<std::io::Error> for FrameError {
    fn from(e: std::io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame. The payload must fit [`MAX_FRAME_LEN`].
///
/// # Errors
///
/// [`FrameError::Oversized`] if the payload is too large, otherwise
/// any transport error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FrameError> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&len| len <= MAX_FRAME_LEN)
        .ok_or(FrameError::Oversized {
            announced: u32::try_from(payload.len()).unwrap_or(u32::MAX),
        })?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Reads one frame. Returns `Ok(None)` on a clean end of stream (EOF
/// exactly at a frame boundary); an EOF anywhere inside a frame is
/// [`FrameError::Truncated`].
///
/// # Errors
///
/// See [`FrameError`].
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    match read_exact_or_eof(r, &mut header)? {
        0 => return Ok(None),
        HEADER_LEN => {}
        got => {
            return Err(FrameError::Truncated {
                missing: HEADER_LEN - got,
            })
        }
    }
    let len = parse_len(&header)?;
    let mut payload = vec![0u8; len as usize];
    let got = read_exact_or_eof(r, &mut payload)?;
    if got < payload.len() {
        return Err(FrameError::Truncated {
            missing: payload.len() - got,
        });
    }
    Ok(Some(payload))
}

/// Validates a frame header, returning the announced payload length.
///
/// # Errors
///
/// [`FrameError::Oversized`] when the length exceeds [`MAX_FRAME_LEN`].
pub fn parse_len(header: &[u8; HEADER_LEN]) -> Result<u32, FrameError> {
    let len = u32::from_be_bytes(*header);
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { announced: len });
    }
    Ok(len)
}

/// Fills `buf` from `r`, stopping early only at end of stream; returns
/// the number of bytes actually read.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

// ---------------------------------------------------------------------
// Message types.
// ---------------------------------------------------------------------

/// The machine configuration a request runs under. Mirrors
/// [`ProcessorParams`] minus the latency table (requests always use
/// the paper's baseline latencies, like the CLI's machine flags).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineSpec {
    /// Fetch/dispatch/issue/retire width.
    pub width: u32,
    /// Issue-window entries.
    pub window: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Front-end pipeline depth, cycles.
    pub depth: u32,
    /// L2 access latency, cycles.
    pub l2: u32,
    /// Main-memory latency, cycles.
    pub mem: u32,
}

impl Default for MachineSpec {
    fn default() -> Self {
        MachineSpec::from_params(&ProcessorParams::baseline())
    }
}

impl MachineSpec {
    /// The spec matching an existing parameter set.
    pub fn from_params(params: &ProcessorParams) -> Self {
        MachineSpec {
            width: params.width,
            window: params.win_size,
            rob: params.rob_size,
            depth: params.pipe_depth,
            l2: params.l2_latency,
            mem: params.mem_latency,
        }
    }

    /// The validated model parameters this spec describes.
    ///
    /// # Errors
    ///
    /// Whatever [`ProcessorParams::validate`] rejects (zero width,
    /// window larger than the ROB, …).
    pub fn to_params(&self) -> Result<ProcessorParams, String> {
        let params = ProcessorParams {
            width: self.width,
            win_size: self.window,
            rob_size: self.rob,
            pipe_depth: self.depth,
            l2_latency: self.l2,
            mem_latency: self.mem,
            latencies: ProcessorParams::baseline().latencies,
        };
        params.validate()?;
        Ok(params)
    }
}

/// Arguments shared by `profile` and `model` requests: which workload
/// to analyze, under which machine, through which probe variant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileRequest {
    /// Built-in benchmark name (see `fosm bench-list`).
    pub bench: String,
    /// Trace length in instructions.
    pub insts: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Machine configuration.
    pub machine: MachineSpec,
    /// Probe variant: `full`, `ideal`, `branch`, `icache`, or `dcache`.
    pub probe: String,
}

/// Arguments of a `validate` request: one workload's differential
/// model-vs-simulator comparison.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValidateRequest {
    /// Built-in benchmark name.
    pub bench: String,
    /// Trace length in instructions.
    pub insts: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Machine configuration.
    pub machine: MachineSpec,
}

/// Arguments of an `explore` request: a design-space sweep over the
/// given machine-grid axes (an empty axis means the baseline sweep's
/// values for that axis).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExploreRequest {
    /// Built-in benchmark name.
    pub bench: String,
    /// Trace length in instructions.
    pub insts: u64,
    /// Workload generator seed.
    pub seed: u64,
    /// Issue-width axis.
    pub widths: Vec<u32>,
    /// Issue-window axis.
    pub windows: Vec<u32>,
    /// ROB axis.
    pub robs: Vec<u32>,
    /// Pipeline-depth axis.
    pub depths: Vec<u32>,
    /// L2-latency axis.
    pub l2s: Vec<u32>,
    /// Memory-latency axis.
    pub mems: Vec<u32>,
}

/// One request frame, client → server.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Liveness check; answers `pong`.
    Ping,
    /// Collect one probe variant's functional profile; answers the
    /// profile as pretty-printed JSON.
    Profile(ProfileRequest),
    /// Profile and evaluate the first-order model; answers the CPI
    /// stack rendering.
    Model(ProfileRequest),
    /// Differentially validate the model against the detailed
    /// simulator on one workload; answers the component table.
    Validate(ValidateRequest),
    /// Sweep the design space; answers the Pareto frontier as CSV.
    Explore(ExploreRequest),
    /// Server and store diagnostics (cache traffic, batching, …).
    Stats,
    /// Schema-versioned telemetry snapshot: per-kind latency phase
    /// histograms, pool/batch traffic, and the request flight
    /// recorder, as one line of JSON (`fosm top` renders it).
    Telemetry,
    /// Ask the daemon to stop accepting work and exit cleanly.
    Shutdown,
}

impl Request {
    /// Short lifecycle label for telemetry (`serve.total_us.<kind>`
    /// histogram names and flight-recorder rows).
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Profile(_) => "profile",
            Request::Model(_) => "model",
            Request::Validate(_) => "validate",
            Request::Explore(_) => "explore",
            Request::Stats => "stats",
            Request::Telemetry => "telemetry",
            Request::Shutdown => "shutdown",
        }
    }
}

/// One response frame, server → client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Response {
    /// The request succeeded; `body` is the rendered result and is
    /// exactly what `fosm client` prints on stdout.
    Ok {
        /// Rendered result text (JSON for `profile`, tables otherwise).
        body: String,
    },
    /// The request failed; the connection stays usable.
    Err {
        /// Stable machine-readable category (`malformed-request`,
        /// `bad-request`, `model-error`, `oversized-frame`,
        /// `shutting-down`).
        code: String,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// An `Ok` response around a rendered body.
    pub fn ok(body: impl Into<String>) -> Self {
        Response::Ok { body: body.into() }
    }

    /// An `Err` response with a stable code.
    pub fn err(code: &str, message: impl Into<String>) -> Self {
        Response::Err {
            code: code.to_string(),
            message: message.into(),
        }
    }
}

/// Serializes a request for framing.
///
/// # Panics
///
/// Never for the types above (serialization of plain data cannot
/// fail in the vendored serde).
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("requests serialize")
        .into_bytes()
}

/// Deserializes a request frame.
///
/// # Errors
///
/// A description of why the payload is not a valid request (not
/// UTF-8, not JSON, or not this protocol's shape).
pub fn decode_request(payload: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a valid request: {e}"))
}

/// Serializes a response for framing.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("responses serialize")
        .into_bytes()
}

/// Deserializes a response frame.
///
/// # Errors
///
/// A description of why the payload is not a valid response.
pub fn decode_response(payload: &[u8]) -> Result<Response, String> {
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    serde_json::from_str(text).map_err(|e| format!("payload is not a valid response: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").expect("write");
        write_frame(&mut buf, b"").expect("write empty");
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).expect("frame 1").unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).expect("frame 2").unwrap(), b"");
        assert!(read_frame(&mut r).expect("clean eof").is_none());
    }

    #[test]
    fn oversized_header_is_rejected_without_reading_payload() {
        let mut buf = (MAX_FRAME_LEN + 1).to_be_bytes().to_vec();
        buf.extend_from_slice(b"should never be read");
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Oversized { announced }) if announced == MAX_FRAME_LEN + 1
        ));
    }

    #[test]
    fn truncated_header_and_payload_are_detected() {
        let mut r: &[u8] = &[0, 0];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated { missing: 2 })
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, b"full payload").expect("write");
        buf.truncate(buf.len() - 4);
        let mut r = buf.as_slice();
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Truncated { missing: 4 })
        ));
    }

    #[test]
    fn request_and_response_round_trip() {
        let requests = [
            Request::Ping,
            Request::Profile(ProfileRequest {
                bench: "gzip".into(),
                insts: 20_000,
                seed: 42,
                machine: MachineSpec::default(),
                probe: "full".into(),
            }),
            Request::Stats,
            Request::Telemetry,
            Request::Shutdown,
        ];
        for req in &requests {
            let decoded = decode_request(&encode_request(req)).expect("request decodes");
            assert_eq!(&decoded, req);
        }
        for resp in [
            Response::ok("pong\n"),
            Response::err("bad-request", "unknown benchmark `nope`"),
        ] {
            let decoded = decode_response(&encode_response(&resp)).expect("response decodes");
            assert_eq!(decoded, resp);
        }
    }

    #[test]
    fn malformed_json_decodes_to_an_error_not_a_panic() {
        for garbage in [
            &b"not json at all"[..],
            b"{\"Unknown\": {}}",
            b"{\"Profile\": {\"bench\": 7}}",
            b"\xff\xfe",
        ] {
            assert!(decode_request(garbage).is_err());
        }
    }

    #[test]
    fn machine_spec_round_trips_params() {
        let spec = MachineSpec::default();
        let params = spec.to_params().expect("baseline validates");
        assert_eq!(MachineSpec::from_params(&params), spec);
        let bad = MachineSpec { width: 0, ..spec };
        assert!(bad.to_params().is_err());
    }
}
