//! Persistent work-stealing worker pool.
//!
//! The figure binaries fan out with `fosm_bench::par::par_map`, which
//! spawns scoped threads per call — fine for a batch job, wasteful for
//! a daemon answering thousands of small requests. This pool keeps a
//! fixed set of **persistent** workers alive for the process lifetime
//! and distributes work in the Chase–Lev shape:
//!
//! * each worker owns a deque; the owner pushes and pops at the
//!   **back** (LIFO, cache-warm), thieves steal from the **front**
//!   (FIFO, oldest first);
//! * work submitted from outside the pool lands in a shared injector
//!   queue that idle workers drain;
//! * an idle worker scans: own deque → injector → steal sweep over the
//!   other deques (starting at its right neighbor, so thieves spread
//!   out) → park on a condvar.
//!
//! Unlike the classical lock-free Chase–Lev deque, each queue here is
//! a `Mutex<VecDeque>`: the workspace forbids `unsafe`, and the jobs
//! this pool carries are request-grained (microseconds to seconds), so
//! an uncontended lock per transfer is noise. What the structure keeps
//! from Chase–Lev is the *topology* — owner-local LIFO ends, stealing
//! from the cold end, no central queue on the hot path — which is what
//! prevents a long `explore` fan-out from serializing behind a single
//! lock.
//!
//! Blocking on the pool from inside the pool is the classic
//! starvation trap, so [`WorkerPool::run_many`] makes the caller a
//! *participant*: it pushes the sub-jobs onto its own deque (or the
//! injector, from outside the pool) and then runs jobs itself until
//! its batch completes. A worker is never parked waiting for work that
//! only it could run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// A unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// Distinguishes pools so a worker of one pool submitting to another
/// uses the injector, not a deque index that belongs to the wrong pool.
static NEXT_POOL_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// `(pool id, worker index)` when the current thread is a worker.
    static WORKER: std::cell::Cell<Option<(u64, usize)>> = const { std::cell::Cell::new(None) };
}

/// Coordination state guarded by the park mutex.
#[derive(Debug, Default)]
struct Park {
    /// Set once by [`WorkerPool::shutdown`]; workers drain and exit.
    shutdown: bool,
}

struct Shared {
    id: u64,
    injector: Mutex<VecDeque<Job>>,
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs pushed but not yet taken, across all queues. Checked under
    /// the park mutex before sleeping, so a push (which increments
    /// first, then notifies under the mutex) can never be missed.
    pending: AtomicUsize,
    park: Mutex<Park>,
    wake: Condvar,
    /// Total jobs executed (all workers + participants), for stats.
    executed: AtomicU64,
    /// Jobs taken from another worker's deque, for stats.
    steals: AtomicU64,
    /// Times a worker parked on the condvar with nothing to do.
    parks: AtomicU64,
    /// Jobs executed by a [`WorkerPool::run_many`] caller while
    /// participating in its own batch.
    caller_runs: AtomicU64,
}

impl Shared {
    /// Takes one job: own deque's back (if `me` is a worker), then the
    /// injector's front, then a steal sweep over the other deques.
    fn find_work(&self, me: Option<usize>) -> Option<Job> {
        if let Some(idx) = me {
            if let Some(job) = self.deques[idx].lock().expect("pool deque").pop_back() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().expect("pool injector").pop_front() {
            self.pending.fetch_sub(1, Ordering::Relaxed);
            return Some(job);
        }
        let n = self.deques.len();
        let start = me.map_or(0, |idx| idx + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().expect("pool deque").pop_front() {
                self.pending.fetch_sub(1, Ordering::Relaxed);
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Queues one job from the calling thread and wakes a worker.
    fn push(&self, job: Job) {
        let me = WORKER.with(|w| w.get());
        let queue = match me {
            Some((pool, idx)) if pool == self.id => &self.deques[idx],
            _ => &self.injector,
        };
        self.pending.fetch_add(1, Ordering::Relaxed);
        queue.lock().expect("pool queue").push_back(job);
        // Touch the park mutex before notifying: a worker between its
        // pending check and its wait would otherwise miss the signal.
        drop(self.park.lock().expect("pool park"));
        self.wake.notify_one();
    }

    fn run(&self, job: Job) {
        job();
        self.executed.fetch_add(1, Ordering::Relaxed);
    }
}

/// Pool traffic counters, for the daemon's `stats` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads.
    pub workers: usize,
    /// Jobs executed since the pool started.
    pub executed: u64,
    /// Jobs that moved between workers via stealing.
    pub steals: u64,
    /// Times a worker parked with nothing to do.
    pub parks: u64,
    /// Jobs a `run_many` caller executed while waiting on its batch.
    pub caller_runs: u64,
    /// Jobs queued but not yet taken, at stats time.
    pub queue_depth: usize,
}

/// The worker pool. Dropping it without [`WorkerPool::shutdown`]
/// shuts it down implicitly (joining all workers).
pub struct WorkerPool {
    shared: Arc<Shared>,
    worker_count: usize,
    /// Join handles, behind a lock so [`WorkerPool::shutdown`] works
    /// through the shared references a daemon holds.
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.worker_count)
            .finish()
    }
}

impl WorkerPool {
    /// Starts `workers` persistent worker threads (at least 1).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            park: Mutex::new(Park::default()),
            wake: Condvar::new(),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            parks: AtomicU64::new(0),
            caller_runs: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|idx| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("fosm-serve-worker-{idx}"))
                    .spawn(move || worker_loop(&shared, idx))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool {
            shared,
            worker_count: workers,
            workers: Mutex::new(handles),
        }
    }

    /// Queues `job` for execution on some worker. From a worker thread
    /// of this pool, the job goes to that worker's own deque (LIFO
    /// end); from anywhere else, to the injector.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.shared.push(Box::new(job));
    }

    /// Queues `job` and returns a handle that blocks until its result
    /// is available.
    pub fn submit<T: Send + 'static>(
        &self,
        job: impl FnOnce() -> T + Send + 'static,
    ) -> TaskHandle<T> {
        let cell = Arc::new(TaskCell {
            slot: Mutex::new(None),
            done: Condvar::new(),
        });
        let out = Arc::clone(&cell);
        self.execute(move || {
            let value = job();
            *out.slot.lock().expect("task slot") = Some(value);
            out.done.notify_all();
        });
        TaskHandle { cell }
    }

    /// Runs every thunk and returns their results in input order. The
    /// calling thread *participates*: it queues the thunks (own deque
    /// for a worker, injector otherwise) and then executes pool jobs —
    /// its own batch or any other queued work — until the batch is
    /// complete. Safe to call from inside a pool job; the caller can
    /// never deadlock waiting for itself, and a batch queued by one
    /// worker is stolen by idle ones.
    pub fn run_many<T, F>(&self, thunks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let n = thunks.len();
        if n == 0 {
            return Vec::new();
        }
        struct Batch<T> {
            slots: Vec<Mutex<Option<T>>>,
            remaining: AtomicUsize,
        }
        let batch = Arc::new(Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
        });
        for (i, thunk) in thunks.into_iter().enumerate() {
            let batch = Arc::clone(&batch);
            self.shared.push(Box::new(move || {
                let value = thunk();
                *batch.slots[i].lock().expect("run_many slot") = Some(value);
                batch.remaining.fetch_sub(1, Ordering::Release);
            }));
        }
        // Participate until the whole batch is done. When no work is
        // available (the last jobs are mid-flight on other workers),
        // back off briefly instead of burning a core.
        let me = WORKER.with(|w| w.get()).and_then(|(pool, idx)| {
            if pool == self.shared.id {
                Some(idx)
            } else {
                None
            }
        });
        while batch.remaining.load(Ordering::Acquire) > 0 {
            match self.shared.find_work(me) {
                Some(job) => {
                    self.shared.caller_runs.fetch_add(1, Ordering::Relaxed);
                    self.shared.run(job);
                }
                None => std::thread::sleep(std::time::Duration::from_micros(100)),
            }
        }
        // A worker may still hold its Arc clone for an instant after
        // the final decrement (the closure drops after the store), so
        // results are taken through the locks, not by unwrapping the
        // Arc.
        batch
            .slots
            .iter()
            .map(|slot| {
                slot.lock()
                    .expect("run_many slot poisoned")
                    .take()
                    .expect("all batch jobs completed")
            })
            .collect()
    }

    /// Current traffic counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.worker_count,
            executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            parks: self.shared.parks.load(Ordering::Relaxed),
            caller_runs: self.shared.caller_runs.load(Ordering::Relaxed),
            queue_depth: self.shared.pending.load(Ordering::Relaxed),
        }
    }

    /// Drains all queued work, stops the workers, and joins them. The
    /// pool accepts no work afterwards (jobs pushed after shutdown are
    /// executed by nobody); callers sequence submissions before this.
    /// Idempotent, and callable through shared references (the daemon
    /// holds the pool in an `Arc`).
    pub fn shutdown(&self) {
        {
            let mut park = self.shared.park.lock().expect("pool park");
            if park.shutdown {
                return;
            }
            park.shutdown = true;
        }
        self.shared.wake.notify_all();
        let handles: Vec<_> = self
            .workers
            .lock()
            .expect("pool handles")
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, idx: usize) {
    WORKER.with(|w| w.set(Some((shared.id, idx))));
    loop {
        if let Some(job) = shared.find_work(Some(idx)) {
            shared.run(job);
            continue;
        }
        let park = shared.park.lock().expect("pool park");
        if park.shutdown {
            // Drain-then-exit: leave the lock, take any straggler work,
            // and only stop once every queue is empty.
            drop(park);
            match shared.find_work(Some(idx)) {
                Some(job) => shared.run(job),
                None => return,
            }
            continue;
        }
        if shared.pending.load(Ordering::Relaxed) == 0 {
            shared.parks.fetch_add(1, Ordering::Relaxed);
            let _unused = shared
                .wake
                .wait_timeout(park, std::time::Duration::from_millis(50))
                .expect("pool park");
        }
    }
}

/// Completion cell behind [`TaskHandle`].
struct TaskCell<T> {
    slot: Mutex<Option<T>>,
    done: Condvar,
}

/// Handle to a [`WorkerPool::submit`] job's result.
pub struct TaskHandle<T> {
    cell: Arc<TaskCell<T>>,
}

impl<T> TaskHandle<T> {
    /// Blocks until the job completes and returns its result.
    pub fn wait(self) -> T {
        let mut slot = self.cell.slot.lock().expect("task slot");
        while slot.is_none() {
            slot = self.cell.done.wait(slot).expect("task slot");
        }
        slot.take().expect("checked above")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::sync::Barrier;

    #[test]
    fn executes_every_job() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicU32::new(0));
        let handles: Vec<_> = (0..100)
            .map(|_| {
                let counter = Arc::clone(&counter);
                pool.submit(move || counter.fetch_add(1, Ordering::Relaxed))
            })
            .collect();
        for h in handles {
            h.wait();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.stats().executed, 100);
    }

    #[test]
    fn submit_returns_results() {
        let pool = WorkerPool::new(2);
        let h1 = pool.submit(|| 6 * 7);
        let h2 = pool.submit(|| "text".to_string());
        assert_eq!(h1.wait(), 42);
        assert_eq!(h2.wait(), "text");
    }

    #[test]
    fn run_many_preserves_input_order() {
        let pool = WorkerPool::new(3);
        let thunks: Vec<_> = (0..32).map(|i| move || i * 2).collect();
        let results = pool.run_many(thunks);
        assert_eq!(results, (0..32).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn batch_from_one_worker_is_stolen_by_others() {
        // A job on worker A fans out a batch whose jobs all rendezvous
        // on one barrier. The batch lands on A's own deque; A itself
        // can run at most one job at a time, so the barrier can only be
        // crossed if other workers STEAL the rest. A hang here means
        // stealing is broken (the test would time out).
        const FAN: usize = 4;
        let pool = Arc::new(WorkerPool::new(FAN));
        let inner = Arc::clone(&pool);
        let results = pool
            .submit(move || {
                let barrier = Arc::new(Barrier::new(FAN));
                let thunks: Vec<_> = (0..FAN)
                    .map(|i| {
                        let barrier = Arc::clone(&barrier);
                        move || {
                            barrier.wait();
                            i
                        }
                    })
                    .collect();
                inner.run_many(thunks)
            })
            .wait();
        assert_eq!(results, vec![0, 1, 2, 3]);
        assert!(
            pool.stats().steals >= FAN as u64 - 1,
            "batch must have been stolen, stats: {:?}",
            pool.stats()
        );
        // The barrier needs all FAN jobs in flight at once; with the
        // other workers each blocked on one, the run_many caller must
        // have executed at least one itself.
        assert!(
            pool.stats().caller_runs >= 1,
            "caller participation must be counted, stats: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn parks_accumulate_and_queue_drains() {
        let pool = WorkerPool::new(2);
        pool.run_many((0..8).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(pool.stats().queue_depth, 0, "no work left queued");
        // Idle workers park on the condvar (50 ms timeout); give them
        // a couple of cycles.
        std::thread::sleep(std::time::Duration::from_millis(120));
        assert!(
            pool.stats().parks > 0,
            "idle workers must park, stats: {:?}",
            pool.stats()
        );
    }

    #[test]
    fn run_many_works_from_outside_the_pool() {
        let pool = WorkerPool::new(2);
        let results = pool.run_many((0..8).map(|i| move || i + 1).collect::<Vec<_>>());
        assert_eq!(results, (1..=8).collect::<Vec<_>>());
    }

    #[test]
    fn shutdown_drains_queued_work_and_joins() {
        let pool = WorkerPool::new(2);
        let counter = Arc::new(AtomicU32::new(0));
        for _ in 0..50 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.shutdown();
        assert_eq!(counter.load(Ordering::Relaxed), 50, "shutdown must drain");
        assert!(
            pool.workers.lock().expect("pool handles").is_empty(),
            "all workers joined"
        );
        // Idempotent.
        pool.shutdown();
    }
}
