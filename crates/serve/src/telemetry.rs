//! Request-lifecycle telemetry: phase histograms + flight recorder.
//!
//! The daemon's `Stats` response is a point-in-time key/value dump —
//! totals, no distributions, no per-request attribution. This module
//! is the diagnosable counterpart, applying the paper's discipline of
//! attributing cycles to discrete penalty events to the service
//! itself: every request's wall-clock is decomposed into disjoint
//! phases and stamped into per-request-kind histograms, and the last N
//! requests are kept verbatim in a bounded **flight recorder** so a
//! slow or failed request can be inspected after the fact.
//!
//! Phase definitions (all microseconds, per request):
//!
//! * `queue_us` — submitted to the worker pool → a worker picked the
//!   job up;
//! * `batch_wait_us` — wall-clock the job spent parked inside the
//!   [`Batcher`](crate::batch::Batcher) (follower waiting for its
//!   leader's broadcast, or leader waiting out the batching window);
//! * `exec_us` — job wall-clock minus `batch_wait_us`: time actually
//!   computing;
//! * `respond_us` — writing the response frame;
//! * `total_us` — request frame fully read → response frame written.
//!
//! The first three phases are disjoint sub-intervals of the total, so
//! `queue + batch_wait + exec ≤ total` holds per record and therefore
//! per histogram sum — the reconciliation the CI smoke test asserts.
//!
//! Telemetry is on by default and costs a few `Instant` reads plus
//! lock-free histogram records per request; `fosm serve
//! --no-telemetry` disables recording for overhead A/B runs (the
//! serve-bench script gates the on/off p99 delta at 5%).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use fosm_obs::json::push_str_literal;
use fosm_obs::Registry;

/// Version tag of the telemetry snapshot schema (the `fosm_telemetry`
/// field of the JSON body).
pub const TELEMETRY_SCHEMA_VERSION: u64 = 1;

/// Default flight-recorder capacity (records kept).
pub const DEFAULT_FLIGHT_CAP: usize = 256;

/// One finished request, as kept by the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestRecord {
    /// Monotonic sequence number, assigned at record time (1-based).
    pub seq: u64,
    /// Request kind: `ping`, `profile`, `model`, `validate`,
    /// `explore`, `stats`, `telemetry`, `shutdown`, or `malformed`.
    pub kind: &'static str,
    /// `ok`, or the structured error code the client received.
    pub outcome: String,
    /// Pool queue wait, µs.
    pub queue_us: u64,
    /// Batcher wait (leader window + follower park), µs.
    pub batch_wait_us: u64,
    /// Compute time (job wall minus batch wait), µs.
    pub exec_us: u64,
    /// Response frame write, µs.
    pub respond_us: u64,
    /// Frame read complete → response written, µs.
    pub total_us: u64,
    /// Response payload size, bytes.
    pub resp_bytes: u64,
    /// True when no fresh trace replay was charged to this request's
    /// worker thread (every profile it needed was memoized or computed
    /// by a batch leader on its behalf).
    pub cache_hit: bool,
}

impl RequestRecord {
    fn write_json(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"kind\":");
        push_str_literal(out, self.kind);
        out.push_str(",\"outcome\":");
        push_str_literal(out, &self.outcome);
        for (key, value) in [
            ("queue_us", self.queue_us),
            ("batch_wait_us", self.batch_wait_us),
            ("exec_us", self.exec_us),
            ("respond_us", self.respond_us),
            ("total_us", self.total_us),
            ("resp_bytes", self.resp_bytes),
        ] {
            out.push_str(",\"");
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str(",\"cache_hit\":");
        out.push_str(if self.cache_hit { "true" } else { "false" });
        out.push('}');
    }
}

/// Ring-buffer state behind the flight recorder's lock.
#[derive(Debug, Default)]
struct FlightInner {
    records: VecDeque<RequestRecord>,
    /// Records evicted to make room (total - kept).
    dropped: u64,
    next_seq: u64,
}

/// A bounded ring of the last N [`RequestRecord`]s. Unlike the event
/// tracer (which keeps the *head* of a run and drops the tail), the
/// flight recorder keeps the *tail* — drop-oldest — because its job is
/// post-hoc inspection of the most recent traffic.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    inner: Mutex<FlightInner>,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` records (at least 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            capacity: capacity.max(1),
            inner: Mutex::new(FlightInner::default()),
        }
    }

    /// Record capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Appends one record, assigning its sequence number; evicts the
    /// oldest record when full.
    pub fn push(&self, mut record: RequestRecord) {
        let mut inner = self.inner.lock().expect("flight recorder lock");
        inner.next_seq += 1;
        record.seq = inner.next_seq;
        if inner.records.len() == self.capacity {
            inner.records.pop_front();
            inner.dropped += 1;
        }
        inner.records.push_back(record);
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<RequestRecord> {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .records
            .iter()
            .cloned()
            .collect()
    }

    /// Records evicted so far.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("flight recorder lock").dropped
    }

    /// Retained record count.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("flight recorder lock")
            .records
            .len()
    }

    /// True when nothing has been recorded (or everything evicted).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resolves the flight-recorder capacity from `FOSM_FLIGHT_CAP`,
/// reusing the `FOSM_TRACE_CAP` strict-parse convention: unset/empty
/// means the default; a malformed value — zero, non-numeric,
/// overflowing — is warned about on stderr and falls back to
/// [`DEFAULT_FLIGHT_CAP`] rather than silently mis-sizing the ring.
pub fn flight_cap(raw: Option<&str>) -> usize {
    match fosm_obs::event::parse_trace_cap(raw) {
        Ok(Some(cap)) => cap,
        Ok(None) => DEFAULT_FLIGHT_CAP,
        Err(why) => {
            eprintln!(
                "warning: ignoring FOSM_FLIGHT_CAP ({why}); \
                 using the default capacity of {DEFAULT_FLIGHT_CAP} records"
            );
            DEFAULT_FLIGHT_CAP
        }
    }
}

/// The daemon's telemetry state: an on/off switch, a private registry
/// holding the phase histograms, and the flight recorder. Owned by the
/// [`Service`](crate::service::Service); the server stamps finished
/// requests here.
#[derive(Debug)]
pub struct Telemetry {
    enabled: AtomicBool,
    registry: Registry,
    flight: FlightRecorder,
}

impl Telemetry {
    /// Telemetry with the flight capacity taken from `FOSM_FLIGHT_CAP`
    /// (see [`flight_cap`]). Enabled until [`set_enabled`] says
    /// otherwise.
    ///
    /// [`set_enabled`]: Telemetry::set_enabled
    pub fn from_env() -> Telemetry {
        Telemetry::with_capacity(flight_cap(std::env::var("FOSM_FLIGHT_CAP").ok().as_deref()))
    }

    /// Telemetry with an explicit flight capacity.
    pub fn with_capacity(capacity: usize) -> Telemetry {
        Telemetry {
            enabled: AtomicBool::new(true),
            registry: Registry::new(),
            flight: FlightRecorder::new(capacity),
        }
    }

    /// Whether recording is on.
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turns recording on or off (`fosm serve --no-telemetry`).
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// The registry holding the phase histograms (and anything a
    /// request's scoped snapshot absorbed into it).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The flight recorder.
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// Stamps one finished request: per-kind phase histograms plus a
    /// flight record. No-op when disabled.
    pub fn record(&self, record: RequestRecord) {
        if !self.enabled() {
            return;
        }
        let kind = record.kind;
        for (phase, value) in [
            ("queue_us", record.queue_us),
            ("batch_wait_us", record.batch_wait_us),
            ("exec_us", record.exec_us),
            ("respond_us", record.respond_us),
            ("total_us", record.total_us),
            ("resp_bytes", record.resp_bytes),
        ] {
            self.registry
                .hist_record(&format!("serve.{phase}.{kind}"), value);
        }
        self.flight.push(record);
    }

    /// Folds a finished request's scoped snapshot in (batch occupancy
    /// histograms, batcher wait counters, …). No-op when disabled.
    pub fn absorb(&self, snap: &fosm_obs::Snapshot) {
        if self.enabled() {
            self.registry.absorb(snap);
        }
    }

    /// Renders the flight recorder as an aligned table for stderr;
    /// `None` when telemetry is off or nothing was recorded.
    pub fn flight_dump(&self, reason: &str) -> Option<String> {
        if !self.enabled() {
            return None;
        }
        let records = self.flight.records();
        if records.is_empty() {
            return None;
        }
        let mut out = format!(
            "fosm-serve flight recorder ({} record(s), {} dropped) — {reason}\n\
             {:>6}  {:<10} {:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  cache\n",
            records.len(),
            self.flight.dropped(),
            "seq",
            "kind",
            "outcome",
            "total_us",
            "queue_us",
            "batch_us",
            "exec_us",
            "resp_us",
            "bytes",
        );
        for r in &records {
            out.push_str(&format!(
                "{:>6}  {:<10} {:<18} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}  {}\n",
                r.seq,
                r.kind,
                r.outcome,
                r.total_us,
                r.queue_us,
                r.batch_wait_us,
                r.exec_us,
                r.respond_us,
                r.resp_bytes,
                if r.cache_hit { "hit" } else { "miss" },
            ));
        }
        Some(out)
    }

    /// Writes the `"hists"` and `"flight"` sections of the telemetry
    /// body (the [`Service`](crate::service::Service) wraps them with
    /// the pool/batch/store summary it owns).
    pub fn write_json_sections(&self, out: &mut String) {
        out.push_str("\"hists\":{");
        let snap = self.registry.snapshot();
        for (i, (name, hist)) in snap.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            push_str_literal(out, name);
            out.push(':');
            hist.write_json(out);
        }
        out.push_str("},\"flight\":{\"capacity\":");
        out.push_str(&self.flight.capacity().to_string());
        out.push_str(",\"dropped\":");
        out.push_str(&self.flight.dropped().to_string());
        out.push_str(",\"records\":[");
        for (i, record) in self.flight.records().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            record.write_json(out);
        }
        out.push_str("]}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(kind: &'static str, outcome: &str, total_us: u64) -> RequestRecord {
        RequestRecord {
            seq: 0,
            kind,
            outcome: outcome.to_string(),
            queue_us: 1,
            batch_wait_us: 2,
            exec_us: 3,
            respond_us: 4,
            total_us,
            resp_bytes: 5,
            cache_hit: false,
        }
    }

    #[test]
    fn ring_drops_oldest_past_capacity() {
        let flight = FlightRecorder::new(3);
        for i in 0..5 {
            flight.push(record("ping", "ok", i));
        }
        let kept = flight.records();
        assert_eq!(kept.len(), 3);
        assert_eq!(flight.dropped(), 2);
        // Oldest evicted: seqs 3..=5 survive, oldest first.
        assert_eq!(kept.iter().map(|r| r.seq).collect::<Vec<_>>(), [3, 4, 5]);
        assert_eq!(
            kept.iter().map(|r| r.total_us).collect::<Vec<_>>(),
            [2, 3, 4]
        );
    }

    #[test]
    fn flight_cap_strict_parse_and_fallback() {
        assert_eq!(flight_cap(None), DEFAULT_FLIGHT_CAP);
        assert_eq!(flight_cap(Some("")), DEFAULT_FLIGHT_CAP);
        assert_eq!(flight_cap(Some("  8 ")), 8);
        // Zero and non-numeric values fall back (with a stderr
        // warning) instead of silently mis-sizing the ring.
        assert_eq!(flight_cap(Some("0")), DEFAULT_FLIGHT_CAP);
        assert_eq!(flight_cap(Some("lots")), DEFAULT_FLIGHT_CAP);
    }

    #[test]
    fn record_stamps_per_kind_histograms_for_ok_and_err() {
        let t = Telemetry::with_capacity(16);
        t.record(record("profile", "ok", 10));
        t.record(record("profile", "bad-request", 20));
        t.record(record("ping", "ok", 1));
        let snap = t.registry().snapshot();
        assert_eq!(snap.hists["serve.total_us.profile"].count, 2);
        assert_eq!(snap.hists["serve.total_us.ping"].count, 1);
        assert_eq!(snap.hists["serve.queue_us.profile"].count, 2);
        let outcomes: Vec<_> = t
            .flight()
            .records()
            .iter()
            .map(|r| r.outcome.clone())
            .collect();
        assert_eq!(outcomes, ["ok", "bad-request", "ok"]);
    }

    #[test]
    fn disabled_telemetry_records_nothing() {
        let t = Telemetry::with_capacity(16);
        t.set_enabled(false);
        t.record(record("ping", "ok", 1));
        assert!(t.flight().is_empty());
        assert!(t.registry().snapshot().hists.is_empty());
        assert!(t.flight_dump("test").is_none());
    }

    #[test]
    fn flight_dump_lists_every_record() {
        let t = Telemetry::with_capacity(4);
        assert!(t.flight_dump("empty").is_none());
        t.record(record("model", "ok", 123));
        t.record(record("stats", "model-error", 9));
        let dump = t.flight_dump("unit test").expect("non-empty dump");
        assert!(dump.starts_with("fosm-serve flight recorder (2 record(s), 0 dropped)"));
        assert!(dump.contains("model"));
        assert!(dump.contains("model-error"));
    }

    #[test]
    fn json_sections_parse_and_carry_records() {
        let t = Telemetry::with_capacity(2);
        t.record(record("ping", "ok", 7));
        let mut body = String::from("{");
        t.write_json_sections(&mut body);
        body.push('}');
        let v: serde::Value = serde_json::from_str(&body).expect("valid JSON");
        let hists = v.get("hists").expect("hists section");
        assert!(hists.get("serve.total_us.ping").is_some());
        let flight = v.get("flight").expect("flight section");
        assert!(flight.get("capacity").is_some());
        assert!(body.contains("\"capacity\":2"));
        assert!(body.contains("\"kind\":\"ping\""));
        assert!(body.contains("\"cache_hit\":false"));
    }
}
