//! Request batching: coalescing concurrent profile requests into one
//! fused trace replay.
//!
//! Collecting a functional profile replays the whole recorded trace,
//! and the replay cost is dominated by trace traversal, not by the
//! probe machinery riding on it — which is exactly why the core layer
//! grew `profile_many` (one traversal, N probes). The daemon sees the
//! complementary opportunity: *independent clients* asking for
//! different probe variants of the **same trace** at the **same
//! time**. Each request alone would pay a full replay; together they
//! need one.
//!
//! [`Batcher`] implements leader–follower coalescing keyed by
//! `(trace, model params)`:
//!
//! * the first request for a key opens a batch and becomes its
//!   **leader**; it waits out a short batching window (default
//!   [`DEFAULT_WINDOW`]) during which **followers** with the same key
//!   append their probes to the open batch;
//! * when the window closes, the leader atomically closes the batch
//!   (later arrivals open a fresh one), runs **exactly one**
//!   [`ArtifactStore::profile_many`] pass over all accumulated probes,
//!   and hands each follower its result;
//! * a failure (invalid probe configuration) is broadcast to the whole
//!   batch — every member requested the same trace, so the failure is
//!   common property.
//!
//! The batching window trades latency for throughput: a window of
//! `w` adds at most `w` to an isolated request's latency, but under
//! concurrent load the fused replay divides the dominant cost by the
//! batch size. The daemon's default (2 ms) is far below the cost of
//! even a small replay.
//!
//! For deterministic tests, [`Batcher::with_manual_gate`] replaces the
//! timed window with an explicit gate: the leader blocks until
//! [`Batcher::release_gate`], so a test can pile K concurrent requests
//! into one batch and then prove exactly one fused pass ran.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use fosm_bench::store::ArtifactStore;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{Probe, ProbeBank, ProgramProfile};
use fosm_workloads::BenchmarkSpec;

/// Default batching window for the daemon.
pub const DEFAULT_WINDOW: Duration = Duration::from_millis(2);

/// What one batch coalesces over: the exact trace identity plus the
/// model parameters (probes with different params cannot share a
/// `profile_many` call).
type BatchKey = (String, u64, u64, String);

/// One open batch. Shared between its leader and followers; the map
/// only holds it while the batch is accepting members.
struct Cell {
    state: Mutex<CellState>,
    done: Condvar,
}

struct CellState {
    /// Probes accumulated so far (leader's first).
    probes: Vec<Probe>,
    /// Set when the leader closes the batch; new arrivals must open a
    /// fresh one.
    closed: bool,
    /// The per-probe results, in `probes` order, once computed.
    result: Option<Result<Vec<Arc<ProgramProfile>>, String>>,
}

/// Timing source for the leader's wait: a real window, or a manual
/// gate a test releases explicitly.
enum Gate {
    Window(Duration),
    Manual {
        state: Mutex<bool>,
        released: Condvar,
    },
}

/// Batching traffic counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Fused `profile_many` passes executed.
    pub passes: u64,
    /// Requests that joined an existing batch (each saved one replay).
    pub coalesced: u64,
}

/// The request coalescer. One per daemon, shared by all workers.
pub struct Batcher {
    open: Mutex<HashMap<BatchKey, Arc<Cell>>>,
    gate: Gate,
    passes: AtomicU64,
    coalesced: AtomicU64,
}

impl std::fmt::Debug for Batcher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Batcher").finish_non_exhaustive()
    }
}

impl Batcher {
    /// A batcher whose leaders wait out `window` before computing.
    pub fn new(window: Duration) -> Batcher {
        Batcher {
            open: Mutex::new(HashMap::new()),
            gate: Gate::Window(window),
            passes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// A batcher whose leaders block until [`release_gate`]
    /// (test-only determinism; see the module docs).
    ///
    /// [`release_gate`]: Batcher::release_gate
    pub fn with_manual_gate() -> Batcher {
        Batcher {
            open: Mutex::new(HashMap::new()),
            gate: Gate::Manual {
                state: Mutex::new(false),
                released: Condvar::new(),
            },
            passes: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// Opens the manual gate, letting the currently blocked leader
    /// close its batch and compute. The gate re-latches for the next
    /// batch. No-op on a window batcher.
    pub fn release_gate(&self) {
        if let Gate::Manual { state, released } = &self.gate {
            *state.lock().expect("batch gate") = true;
            released.notify_all();
        }
    }

    /// Probes currently parked in the open batch for a key (test
    /// introspection; racy by nature, use only under a closed gate).
    pub fn open_batch_len(
        &self,
        params: &ProcessorParams,
        spec: &BenchmarkSpec,
        insts: u64,
        seed: u64,
    ) -> usize {
        let key = batch_key(params, spec, insts, seed);
        self.open
            .lock()
            .expect("batcher map")
            .get(&key)
            .map_or(0, |cell| {
                cell.state.lock().expect("batch cell").probes.len()
            })
    }

    /// Current traffic counters.
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            passes: self.passes.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
        }
    }

    /// The profile of `probe` on `(spec, insts, seed)` under `params`,
    /// coalesced with any concurrent request for the same trace and
    /// params. Blocks for at most the batching window plus the fused
    /// replay (or a memoized lookup, which skips the replay entirely).
    ///
    /// # Errors
    ///
    /// Collection errors (invalid probe configurations), broadcast to
    /// every member of the batch.
    pub fn profile(
        &self,
        store: &ArtifactStore,
        params: &ProcessorParams,
        probe: Probe,
        spec: &BenchmarkSpec,
        insts: u64,
        seed: u64,
    ) -> Result<Arc<ProgramProfile>, String> {
        let key = batch_key(params, spec, insts, seed);
        loop {
            let (cell, my_index) = {
                let mut open = self.open.lock().expect("batcher map");
                match open.get(&key) {
                    Some(cell) => {
                        let cell = Arc::clone(cell);
                        // Join under the cell lock; if the leader
                        // closed the batch between the map lookup and
                        // here, retry with a fresh batch.
                        let mut state = cell.state.lock().expect("batch cell");
                        if state.closed {
                            continue;
                        }
                        state.probes.push(probe.clone());
                        let index = state.probes.len() - 1;
                        drop(state);
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        fosm_obs::counter_add("serve.batch.coalesced", 1);
                        (cell, index)
                    }
                    None => {
                        let cell = Arc::new(Cell {
                            state: Mutex::new(CellState {
                                probes: vec![probe.clone()],
                                closed: false,
                                result: None,
                            }),
                            done: Condvar::new(),
                        });
                        open.insert(key.clone(), Arc::clone(&cell));
                        drop(open);
                        return self.lead(store, params, spec, insts, seed, &key, &cell);
                    }
                }
            };
            // Follower: wait for the leader's broadcast. The park time
            // is charged to this request's `batch_wait` phase via the
            // scoped registry.
            let wait_start = std::time::Instant::now();
            let mut state = cell.state.lock().expect("batch cell");
            while state.result.is_none() {
                state = cell.done.wait(state).expect("batch cell");
            }
            let result = state.result.as_ref().expect("checked above");
            let outcome = match result {
                Ok(profiles) => Ok(Arc::clone(&profiles[my_index])),
                Err(e) => Err(e.clone()),
            };
            drop(state);
            fosm_obs::counter_add(
                "serve.batch_wait_ns",
                u64::try_from(wait_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
            );
            return outcome;
        }
    }

    /// Leader path: wait out the gate, close the batch, run the one
    /// fused pass, broadcast.
    #[allow(clippy::too_many_arguments)]
    fn lead(
        &self,
        store: &ArtifactStore,
        params: &ProcessorParams,
        spec: &BenchmarkSpec,
        insts: u64,
        seed: u64,
        key: &BatchKey,
        cell: &Arc<Cell>,
    ) -> Result<Arc<ProgramProfile>, String> {
        let gate_start = std::time::Instant::now();
        match &self.gate {
            Gate::Window(window) => {
                if !window.is_zero() {
                    std::thread::sleep(*window);
                }
            }
            Gate::Manual { state, released } => {
                let mut opened = state.lock().expect("batch gate");
                while !*opened {
                    opened = released.wait(opened).expect("batch gate");
                }
                // Consume the release: the next leader waits again.
                *opened = false;
            }
        }
        // The leader's window is wait, not compute: charge it to the
        // request's `batch_wait` phase like a follower's park.
        fosm_obs::counter_add(
            "serve.batch_wait_ns",
            u64::try_from(gate_start.elapsed().as_nanos()).unwrap_or(u64::MAX),
        );
        // Close: out of the map first, so arrivals after this point
        // start a new batch; then the cell, so arrivals that already
        // hold the Arc see `closed` and retry.
        self.open.lock().expect("batcher map").remove(key);
        let probes = {
            let mut state = cell.state.lock().expect("batch cell");
            state.closed = true;
            state.probes.clone()
        };
        let bank: ProbeBank = probes.into();
        self.passes.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("serve.batch.passes", 1);
        fosm_obs::hist_record("serve.batch.occupancy", bank.len() as u64);
        let result = store
            .profile_many(params, &bank, spec, insts, seed)
            .map_err(|e| e.to_string());
        let my_profile = match &result {
            Ok(profiles) => Ok(Arc::clone(&profiles[0])),
            Err(e) => Err(e.clone()),
        };
        let mut state = cell.state.lock().expect("batch cell");
        state.result = Some(result);
        drop(state);
        cell.done.notify_all();
        my_profile
    }
}

/// The coalescing key. Embeds full `Debug` renderings, like the
/// artifact store's keys, so distinct configurations can never fuse.
fn batch_key(params: &ProcessorParams, spec: &BenchmarkSpec, insts: u64, seed: u64) -> BatchKey {
    (format!("{spec:?}"), insts, seed, format!("{params:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_branch::PredictorConfig;
    use fosm_cache::HierarchyConfig;

    fn variant(name: &str, i: usize) -> Probe {
        // Five distinct functional configurations so a fused batch
        // exercises genuinely different probes.
        let probe = Probe::new(format!("{name}-{i}"));
        match i % 5 {
            0 => probe,
            1 => probe
                .with_hierarchy(HierarchyConfig::ideal())
                .with_predictor(PredictorConfig::Ideal),
            2 => probe.with_hierarchy(HierarchyConfig::ideal()),
            3 => probe.with_predictor(PredictorConfig::Ideal),
            _ => probe.with_hierarchy(HierarchyConfig::baseline().with_next_line_prefetch(1)),
        }
    }

    #[test]
    fn k_concurrent_requests_fuse_into_exactly_one_pass() {
        const K: usize = 5;
        let store = ArtifactStore::new();
        let batcher = Batcher::with_manual_gate();
        let params = ProcessorParams::baseline();
        let spec = BenchmarkSpec::gzip();
        // All K request threads route their instrumentation into one
        // shared registry, so the core fused-pass counter is exact.
        let registry = Arc::new(fosm_obs::Registry::new());

        let profiles = std::thread::scope(|s| {
            let handles: Vec<_> = (0..K)
                .map(|i| {
                    let batcher = &batcher;
                    let store = &store;
                    let params = &params;
                    let spec = &spec;
                    let registry = Arc::clone(&registry);
                    s.spawn(move || {
                        let _scope = fosm_obs::scoped_registry(registry);
                        batcher.profile(store, params, variant("probe", i), spec, 3_000, 7)
                    })
                })
                .collect();
            // Wait until every request has parked in the one open
            // batch, then open the gate.
            while batcher.open_batch_len(&params, &spec, 3_000, 7) < K {
                std::thread::yield_now();
            }
            batcher.release_gate();
            handles
                .into_iter()
                .map(|h| h.join().expect("request thread"))
                .collect::<Vec<_>>()
        });

        for (i, profile) in profiles.iter().enumerate() {
            let profile = profile.as_ref().expect("profile collected");
            assert_eq!(profile.name, format!("probe-{i}"));
        }
        let stats = batcher.stats();
        assert_eq!(stats.passes, 1, "exactly one fused pass");
        assert_eq!(stats.coalesced as usize, K - 1);
        // The store saw one profile_many call covering all K probes.
        let store_stats = store.stats();
        assert_eq!(store_stats.profile_misses as usize, K);
        assert_eq!(store_stats.profile_inserts as usize, K);
        // And the core replay fused K states into one traversal:
        // `profile.fused_passes_saved` counts states beyond the first.
        assert_eq!(
            registry.counter("profile.fused_passes_saved") as usize,
            K - 1
        );
        // Telemetry: the one pass recorded its occupancy, and both the
        // leader's gate wait and the followers' parks were charged to
        // the batch_wait phase.
        let occupancy = registry
            .hist_snapshot("serve.batch.occupancy")
            .expect("occupancy recorded");
        assert_eq!(occupancy.count, 1);
        assert_eq!(occupancy.max, K as u64);
        assert!(registry.counter("serve.batch_wait_ns") > 0);
    }

    #[test]
    fn batch_results_match_unbatched_collection() {
        let store = ArtifactStore::new();
        let reference_store = ArtifactStore::new();
        let batcher = Batcher::new(Duration::ZERO);
        let params = ProcessorParams::baseline();
        let spec = BenchmarkSpec::gzip();
        for i in 0..5 {
            let probe = variant("v", i);
            let batched = batcher
                .profile(&store, &params, probe.clone(), &spec, 2_000, 3)
                .expect("batched profile");
            let direct = reference_store
                .profile_many(&params, &ProbeBank::from(vec![probe]), &spec, 2_000, 3)
                .expect("direct profile")
                .pop()
                .expect("one probe, one profile");
            assert_eq!(*batched, *direct);
        }
    }

    #[test]
    fn different_traces_do_not_fuse() {
        let store = ArtifactStore::new();
        let batcher = Batcher::new(Duration::ZERO);
        let params = ProcessorParams::baseline();
        let spec = BenchmarkSpec::gzip();
        batcher
            .profile(&store, &params, variant("a", 0), &spec, 2_000, 3)
            .expect("first");
        batcher
            .profile(&store, &params, variant("b", 1), &spec, 2_000, 4)
            .expect("second");
        assert_eq!(batcher.stats().passes, 2);
        assert_eq!(batcher.stats().coalesced, 0);
    }

    #[test]
    fn failure_is_broadcast_to_the_whole_batch() {
        let store = ArtifactStore::new();
        let batcher = Batcher::new(Duration::ZERO);
        let params = ProcessorParams {
            // A window the profiler must reject (window > ROB).
            win_size: 4096,
            rob_size: 16,
            ..ProcessorParams::baseline()
        };
        let spec = BenchmarkSpec::gzip();
        let result = batcher.profile(&store, &params, variant("bad", 0), &spec, 1_000, 1);
        assert!(result.is_err(), "invalid params must fail, not panic");
    }
}
