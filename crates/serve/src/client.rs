//! A small blocking client for the daemon's protocol.
//!
//! Used by `fosm client`, the load generator, and the serve tests.
//! [`call`] is the one-shot path (connect, one request, one response);
//! [`Connection`] keeps a connection open for request pipelines, and
//! exposes [`Connection::send_raw`] so tests can put arbitrary bytes
//! on the wire and observe the server's structured error handling.

use std::net::TcpStream;
use std::time::Duration;

use crate::proto::{decode_response, encode_request, read_frame, write_frame, Request, Response};

/// How long connecting may take before the client gives up.
const CONNECT_TIMEOUT: Duration = Duration::from_secs(5);

/// One-shot request: connect to `addr`, send `req`, await the response.
///
/// # Errors
///
/// A description of the connection, framing, or decoding failure.
pub fn call(addr: &str, req: &Request) -> Result<Response, String> {
    Connection::open(addr)?.send(req)
}

/// A persistent connection to a daemon.
#[derive(Debug)]
pub struct Connection {
    stream: TcpStream,
}

impl Connection {
    /// Connects to `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// A description of why the connection failed.
    pub fn open(addr: &str) -> Result<Connection, String> {
        let sock_addr: std::net::SocketAddr = addr
            .parse()
            .map_err(|e| format!("bad address `{addr}`: {e}"))?;
        let stream = TcpStream::connect_timeout(&sock_addr, CONNECT_TIMEOUT)
            .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
        stream
            .set_nodelay(true)
            .map_err(|e| format!("cannot configure socket: {e}"))?;
        Ok(Connection { stream })
    }

    /// Sends one request and blocks for its response.
    ///
    /// # Errors
    ///
    /// A description of the framing or decoding failure (including the
    /// server closing the connection without answering).
    pub fn send(&mut self, req: &Request) -> Result<Response, String> {
        self.send_raw(&encode_request(req))
    }

    /// Sends an arbitrary payload as one frame and blocks for the
    /// response frame. The protocol-abuse entry point for tests.
    ///
    /// # Errors
    ///
    /// As [`send`](Self::send).
    pub fn send_raw(&mut self, payload: &[u8]) -> Result<Response, String> {
        write_frame(&mut self.stream, payload).map_err(|e| format!("send failed: {e}"))?;
        match read_frame(&mut self.stream).map_err(|e| format!("receive failed: {e}"))? {
            Some(frame) => decode_response(&frame),
            None => Err("server closed the connection without answering".into()),
        }
    }
}
