//! The TCP daemon: accept loop, per-connection framing, shutdown.
//!
//! Threading model: one accept thread, one lightweight thread per
//! connection, and all actual work on the shared
//! [`WorkerPool`](crate::pool::WorkerPool). A connection thread only
//! frames bytes — it decodes a request, submits it to the pool, blocks
//! on the result, and writes the response frame — so a slow request
//! never stalls the accept loop, and concurrency is bounded by the
//! pool, not the connection count.
//!
//! Each request job runs under its own `fosm_obs` scoped registry
//! (per-request span roots and counters, no cross-request bleed) and
//! merges its instrumentation into the process-global registry when it
//! finishes, so long-lived workers never share mutable observability
//! state between overlapping requests.
//!
//! Shutdown is cooperative and complete: a `shutdown` request (or
//! [`ServerHandle::stop`]) sets the stop flag, pokes the accept loop
//! awake with a loopback connection, and [`ServerHandle::join`] then
//! joins the accept thread, every connection thread, and the worker
//! pool — exiting with no leaked threads is part of the CI smoke
//! contract.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::proto::{
    decode_request, encode_response, parse_len, write_frame, FrameError, Request, Response,
    HEADER_LEN,
};
use crate::service::Service;

/// How often an idle connection read wakes up to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<Service>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
/// accepting connections against `service`.
///
/// # Errors
///
/// Whatever binding the listener fails with.
pub fn start(service: Arc<Service>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("fosm-serve-accept".into())
            .spawn(move || accept_loop(&listener, &service, &stop, &conns, addr))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        stop,
        service,
        accept: Some(accept),
        conns,
    })
}

impl ServerHandle {
    /// The bound address (with the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop: no new connections, existing ones
    /// drain. Returns immediately; pair with [`ServerHandle::join`].
    pub fn stop(&self) {
        request_stop(&self.stop, self.addr);
    }

    /// Blocks until the daemon has fully stopped: accept thread,
    /// every connection thread, and the worker pool all joined.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("server conns").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.service.shutdown();
    }

    /// Convenience: [`stop`](Self::stop) then [`join`](Self::join).
    pub fn stop_and_join(self) {
        self.stop();
        self.join();
    }
}

/// Sets the stop flag and pokes the accept loop awake with a loopback
/// connection so it observes the flag immediately.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&addr, POLL_INTERVAL);
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    addr: SocketAddr,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    // The stream may be the shutdown poke itself;
                    // either way, no new conversations.
                    drop(stream);
                    return;
                }
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let handle = std::thread::Builder::new()
                    .name("fosm-serve-conn".into())
                    .spawn(move || serve_connection(stream, &service, &stop, addr))
                    .expect("spawn connection thread");
                conns.lock().expect("server conns").push(handle);
            }
            Err(_) if stop.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

/// What one idle-tolerant frame read produced.
enum ConnRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream at a frame boundary.
    Closed,
    /// The stop flag went up while the connection was idle (or
    /// mid-frame during shutdown); drop the connection.
    Stopping,
    /// Framing violation or transport failure.
    Failed(FrameError),
}

/// Reads one frame with a poll-interval read timeout so an idle
/// connection notices shutdown, without ever mis-reading a slow
/// writer's frame as truncated.
fn read_frame_idle(stream: &mut TcpStream, stop: &AtomicBool) -> ConnRead {
    let mut header = [0u8; HEADER_LEN];
    match fill(stream, &mut header, stop) {
        Fill::Done => {}
        Fill::Eof(0) => return ConnRead::Closed,
        Fill::Eof(got) => {
            return ConnRead::Failed(FrameError::Truncated {
                missing: HEADER_LEN - got,
            })
        }
        Fill::Stopping => return ConnRead::Stopping,
        Fill::Failed(e) => return ConnRead::Failed(FrameError::Io(e)),
    }
    let len = match parse_len(&header) {
        Ok(len) => len,
        Err(e) => return ConnRead::Failed(e),
    };
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, stop) {
        Fill::Done => ConnRead::Frame(payload),
        Fill::Eof(got) => ConnRead::Failed(FrameError::Truncated {
            missing: payload.len() - got,
        }),
        Fill::Stopping => ConnRead::Stopping,
        Fill::Failed(e) => ConnRead::Failed(FrameError::Io(e)),
    }
}

/// Outcome of filling a buffer under the poll-interval timeout.
enum Fill {
    Done,
    /// Stream ended after this many bytes.
    Eof(usize),
    Stopping,
    Failed(std::io::Error),
}

fn fill(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Fill::Eof(filled),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Fill::Stopping;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Fill::Failed(e),
        }
    }
    Fill::Done
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame_idle(&mut stream, stop) {
            ConnRead::Frame(payload) => payload,
            ConnRead::Closed | ConnRead::Stopping => return,
            ConnRead::Failed(e) => {
                // A garbage header gets a structured answer before the
                // connection closes (the remaining bytes are
                // unframeable, so it cannot stay open); a truncated or
                // broken stream has nobody left to answer.
                if let FrameError::Oversized { .. } = e {
                    respond(
                        &mut stream,
                        &Response::err("oversized-frame", e.to_string()),
                    );
                }
                return;
            }
        };
        let response = match decode_request(&payload) {
            // Malformed JSON is an *answer*, not a disconnect: framing
            // is intact, so the connection stays usable.
            Err(why) => Response::err("malformed-request", why),
            Ok(Request::Shutdown) => {
                let response = service.execute(&Request::Shutdown);
                respond(&mut stream, &response);
                request_stop(stop, addr);
                return;
            }
            Ok(_) if stop.load(Ordering::SeqCst) => {
                Response::err("shutting-down", "daemon is shutting down")
            }
            Ok(req) => {
                // Run on the pool under a per-request registry; merge
                // the request's instrumentation into the global
                // registry once it completes.
                let service = Arc::clone(service);
                let pool = Arc::clone(service.pool());
                let task = pool.submit(move || {
                    let registry = Arc::new(fosm_obs::Registry::new());
                    let response = {
                        let _scope = fosm_obs::scoped_registry(Arc::clone(&registry));
                        service.execute(&req)
                    };
                    fosm_obs::global().absorb(&registry.snapshot());
                    response
                });
                task.wait()
            }
        };
        if !respond(&mut stream, &response) {
            return;
        }
    }
}

/// Writes one response frame; `false` when the peer is gone.
fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(stream, &encode_response(response)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::proto::{MachineSpec, ProfileRequest};
    use fosm_bench::store::ArtifactStore;

    fn start_test_server() -> ServerHandle {
        let service = Arc::new(Service::new(
            Arc::new(ArtifactStore::new()),
            2,
            Duration::ZERO,
        ));
        start(service, "127.0.0.1:0").expect("bind test server")
    }

    fn profile_req() -> Request {
        Request::Profile(ProfileRequest {
            bench: "gzip".into(),
            insts: 3_000,
            seed: 7,
            machine: MachineSpec::default(),
            probe: "full".into(),
        })
    }

    #[test]
    fn ping_over_the_wire() {
        let server = start_test_server();
        let resp = client::call(&server.addr().to_string(), &Request::Ping).expect("ping");
        assert_eq!(resp, Response::ok("pong\n"));
        server.stop_and_join();
    }

    #[test]
    fn daemon_response_matches_in_process_execution() {
        let server = start_test_server();
        let over_wire = client::call(&server.addr().to_string(), &profile_req()).expect("profile");
        server.stop_and_join();
        let local =
            Service::new(Arc::new(ArtifactStore::new()), 1, Duration::ZERO).execute(&profile_req());
        assert_eq!(over_wire, local, "wire and local bodies must be identical");
    }

    #[test]
    fn malformed_json_gets_an_error_and_the_connection_survives() {
        let server = start_test_server();
        let mut conn = client::Connection::open(&server.addr().to_string()).expect("connect");
        let resp = conn.send_raw(b"this is not json").expect("raw send");
        assert!(
            matches!(&resp, Response::Err { code, .. } if code == "malformed-request"),
            "got {resp:?}"
        );
        // Same connection still answers real requests.
        let resp = conn.send(&Request::Ping).expect("ping after garbage");
        assert_eq!(resp, Response::ok("pong\n"));
        server.stop_and_join();
    }

    #[test]
    fn shutdown_request_stops_the_daemon_cleanly() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let resp = client::call(&addr, &Request::Shutdown).expect("shutdown");
        assert_eq!(resp, Response::ok("shutting down\n"));
        server.join();
        // The port no longer answers.
        assert!(client::call(&addr, &Request::Ping).is_err());
    }

    #[test]
    fn concurrent_clients_all_get_correct_answers() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let expected = client::call(&addr, &profile_req()).expect("reference response");
        let responses: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let addr = addr.clone();
                    s.spawn(move || client::call(&addr, &profile_req()).expect("profile"))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        for resp in responses {
            assert_eq!(resp, expected);
        }
        server.stop_and_join();
    }
}
