//! The TCP daemon: accept loop, per-connection framing, shutdown.
//!
//! Threading model: one accept thread, one lightweight thread per
//! connection, and all actual work on the shared
//! [`WorkerPool`](crate::pool::WorkerPool). A connection thread only
//! frames bytes — it decodes a request, submits it to the pool, blocks
//! on the result, and writes the response frame — so a slow request
//! never stalls the accept loop, and concurrency is bounded by the
//! pool, not the connection count.
//!
//! Each request job runs under its own `fosm_obs` scoped registry
//! (per-request span roots and counters, no cross-request bleed) and
//! merges its instrumentation into the process-global registry when it
//! finishes, so long-lived workers never share mutable observability
//! state between overlapping requests. The connection thread also
//! stamps every finished request into the service's
//! [`telemetry`](crate::telemetry) — per-kind phase histograms plus a
//! flight record — and the flight recorder is dumped to stderr on
//! connection failures and at clean shutdown.
//!
//! Shutdown is cooperative and complete: a `shutdown` request (or
//! [`ServerHandle::stop`]) sets the stop flag, pokes the accept loop
//! awake with a loopback connection, and [`ServerHandle::join`] then
//! joins the accept thread, every connection thread, and the worker
//! pool — exiting with no leaked threads is part of the CI smoke
//! contract.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::proto::{
    decode_request, encode_response, parse_len, write_frame, FrameError, Request, Response,
    HEADER_LEN,
};
use crate::service::Service;
use crate::telemetry::RequestRecord;

/// How often an idle connection read wakes up to check the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(250);

/// A running daemon.
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    service: Arc<Service>,
    accept: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl std::fmt::Debug for ServerHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerHandle")
            .field("addr", &self.addr)
            .finish_non_exhaustive()
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and starts
/// accepting connections against `service`.
///
/// # Errors
///
/// Whatever binding the listener fails with.
pub fn start(service: Arc<Service>, addr: &str) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let conns = Arc::new(Mutex::new(Vec::new()));

    let accept = {
        let service = Arc::clone(&service);
        let stop = Arc::clone(&stop);
        let conns = Arc::clone(&conns);
        std::thread::Builder::new()
            .name("fosm-serve-accept".into())
            .spawn(move || accept_loop(&listener, &service, &stop, &conns, addr))
            .expect("spawn accept thread")
    };

    Ok(ServerHandle {
        addr,
        stop,
        service,
        accept: Some(accept),
        conns,
    })
}

impl ServerHandle {
    /// The bound address (with the actual port when `:0` was asked).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Asks the daemon to stop: no new connections, existing ones
    /// drain. Returns immediately; pair with [`ServerHandle::join`].
    pub fn stop(&self) {
        request_stop(&self.stop, self.addr);
    }

    /// Blocks until the daemon has fully stopped: accept thread,
    /// every connection thread, and the worker pool all joined.
    pub fn join(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        let handles: Vec<_> = self.conns.lock().expect("server conns").drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        self.service.shutdown();
        // Every request is answered by now; leave the tail of the
        // traffic on stderr for post-mortems.
        if let Some(dump) = self.service.telemetry().flight_dump("clean shutdown") {
            eprint!("{dump}");
        }
    }

    /// Convenience: [`stop`](Self::stop) then [`join`](Self::join).
    pub fn stop_and_join(self) {
        self.stop();
        self.join();
    }
}

/// Sets the stop flag and pokes the accept loop awake with a loopback
/// connection so it observes the flag immediately.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    stop.store(true, Ordering::SeqCst);
    let _ = TcpStream::connect_timeout(&addr, POLL_INTERVAL);
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    addr: SocketAddr,
) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stop.load(Ordering::SeqCst) {
                    // The stream may be the shutdown poke itself;
                    // either way, no new conversations.
                    drop(stream);
                    return;
                }
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let handle = std::thread::Builder::new()
                    .name("fosm-serve-conn".into())
                    .spawn(move || serve_connection(stream, &service, &stop, addr))
                    .expect("spawn connection thread");
                conns.lock().expect("server conns").push(handle);
            }
            Err(_) if stop.load(Ordering::SeqCst) => return,
            Err(_) => continue,
        }
    }
}

/// What one idle-tolerant frame read produced.
enum ConnRead {
    /// A complete frame payload.
    Frame(Vec<u8>),
    /// Clean end of stream at a frame boundary.
    Closed,
    /// The stop flag went up while the connection was idle (or
    /// mid-frame during shutdown); drop the connection.
    Stopping,
    /// Framing violation or transport failure.
    Failed(FrameError),
}

/// Reads one frame with a poll-interval read timeout so an idle
/// connection notices shutdown, without ever mis-reading a slow
/// writer's frame as truncated.
fn read_frame_idle(stream: &mut TcpStream, stop: &AtomicBool) -> ConnRead {
    let mut header = [0u8; HEADER_LEN];
    match fill(stream, &mut header, stop) {
        Fill::Done => {}
        Fill::Eof(0) => return ConnRead::Closed,
        Fill::Eof(got) => {
            return ConnRead::Failed(FrameError::Truncated {
                missing: HEADER_LEN - got,
            })
        }
        Fill::Stopping => return ConnRead::Stopping,
        Fill::Failed(e) => return ConnRead::Failed(FrameError::Io(e)),
    }
    let len = match parse_len(&header) {
        Ok(len) => len,
        Err(e) => return ConnRead::Failed(e),
    };
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, stop) {
        Fill::Done => ConnRead::Frame(payload),
        Fill::Eof(got) => ConnRead::Failed(FrameError::Truncated {
            missing: payload.len() - got,
        }),
        Fill::Stopping => ConnRead::Stopping,
        Fill::Failed(e) => ConnRead::Failed(FrameError::Io(e)),
    }
}

/// Outcome of filling a buffer under the poll-interval timeout.
enum Fill {
    Done,
    /// Stream ended after this many bytes.
    Eof(usize),
    Stopping,
    Failed(std::io::Error),
}

fn fill(stream: &mut TcpStream, buf: &mut [u8], stop: &AtomicBool) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => return Fill::Eof(filled),
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Fill::Stopping;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Fill::Failed(e),
        }
    }
    Fill::Done
}

fn serve_connection(
    mut stream: TcpStream,
    service: &Arc<Service>,
    stop: &Arc<AtomicBool>,
    addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    loop {
        let payload = match read_frame_idle(&mut stream, stop) {
            ConnRead::Frame(payload) => payload,
            ConnRead::Closed | ConnRead::Stopping => return,
            ConnRead::Failed(e) => {
                // A garbage header gets a structured answer before the
                // connection closes (the remaining bytes are
                // unframeable, so it cannot stay open); a truncated or
                // broken stream has nobody left to answer.
                if let FrameError::Oversized { .. } = e {
                    respond(
                        &mut stream,
                        &Response::err("oversized-frame", e.to_string()),
                    );
                }
                // An error path is exactly what the flight recorder is
                // for: leave the recent traffic on stderr.
                if let Some(dump) = service
                    .telemetry()
                    .flight_dump(&format!("connection failed: {e}"))
                {
                    eprint!("{dump}");
                }
                return;
            }
        };
        // Lifecycle zero point: the request frame is fully read.
        let received = Instant::now();
        match decode_request(&payload) {
            // Malformed JSON is an *answer*, not a disconnect: framing
            // is intact, so the connection stays usable.
            Err(why) => {
                let response = Response::err("malformed-request", why);
                if !finish(
                    &mut stream,
                    service,
                    "malformed",
                    received,
                    Phases::default(),
                    &response,
                ) {
                    return;
                }
            }
            Ok(Request::Shutdown) => {
                let response = service.execute(&Request::Shutdown);
                finish(
                    &mut stream,
                    service,
                    "shutdown",
                    received,
                    Phases::default(),
                    &response,
                );
                request_stop(stop, addr);
                return;
            }
            Ok(req) if stop.load(Ordering::SeqCst) => {
                let response = Response::err("shutting-down", "daemon is shutting down");
                if !finish(
                    &mut stream,
                    service,
                    req.kind(),
                    received,
                    Phases::default(),
                    &response,
                ) {
                    return;
                }
            }
            Ok(req) => {
                // Run on the pool under a per-request registry; merge
                // the request's instrumentation into the global
                // registry once it completes. The job measures its own
                // queue wait and wall time; the batcher charges its
                // waits to the `serve.batch_wait_ns` counter of the
                // request's scoped registry, which the phases below
                // subtract back out of execute time.
                let kind = req.kind();
                let service_job = Arc::clone(service);
                let pool = Arc::clone(service.pool());
                let submitted = Instant::now();
                let task = pool.submit(move || {
                    let queue_us = micros(submitted.elapsed());
                    let started = Instant::now();
                    let registry = Arc::new(fosm_obs::Registry::new());
                    let response = {
                        let _scope = fosm_obs::scoped_registry(Arc::clone(&registry));
                        service_job.execute(&req)
                    };
                    let snap = registry.snapshot();
                    fosm_obs::global().absorb(&snap);
                    (response, snap, queue_us, micros(started.elapsed()))
                });
                let (response, snap, queue_us, job_us) = task.wait();
                service.telemetry().absorb(&snap);
                let batch_wait_us = snap
                    .counters
                    .get("serve.batch_wait_ns")
                    .copied()
                    .unwrap_or(0)
                    / 1_000;
                let phases = Phases {
                    queue_us,
                    batch_wait_us,
                    exec_us: job_us.saturating_sub(batch_wait_us),
                    // "Hit" = no fresh trace replay was charged to this
                    // request's own worker thread (memoized, or a batch
                    // leader computed it on this request's behalf).
                    cache_hit: snap
                        .counters
                        .get("store.profile.memo_misses")
                        .copied()
                        .unwrap_or(0)
                        == 0,
                };
                if !finish(&mut stream, service, kind, received, phases, &response) {
                    return;
                }
            }
        }
    }
}

/// The phase attribution of one request, before the response write.
#[derive(Debug, Default)]
struct Phases {
    queue_us: u64,
    batch_wait_us: u64,
    exec_us: u64,
    cache_hit: bool,
}

/// Saturating `Duration` → whole microseconds.
fn micros(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Writes the response frame, stamps the request's telemetry record,
/// and reports whether the connection is still usable.
fn finish(
    stream: &mut TcpStream,
    service: &Arc<Service>,
    kind: &'static str,
    received: Instant,
    phases: Phases,
    response: &Response,
) -> bool {
    let payload = encode_response(response);
    let write_start = Instant::now();
    let sent = write_frame(stream, &payload).is_ok();
    let respond_us = micros(write_start.elapsed());
    let outcome = match response {
        Response::Ok { .. } => "ok".to_string(),
        Response::Err { code, .. } => code.clone(),
    };
    service.telemetry().record(RequestRecord {
        seq: 0,
        kind,
        outcome,
        queue_us: phases.queue_us,
        batch_wait_us: phases.batch_wait_us,
        exec_us: phases.exec_us,
        respond_us,
        total_us: micros(received.elapsed()),
        resp_bytes: payload.len() as u64,
        cache_hit: phases.cache_hit,
    });
    sent
}

/// Writes one response frame; `false` when the peer is gone.
fn respond(stream: &mut TcpStream, response: &Response) -> bool {
    write_frame(stream, &encode_response(response)).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client;
    use crate::proto::{MachineSpec, ProfileRequest};
    use fosm_bench::store::ArtifactStore;

    fn start_test_server() -> ServerHandle {
        let service = Arc::new(Service::new(
            Arc::new(ArtifactStore::new()),
            2,
            Duration::ZERO,
        ));
        start(service, "127.0.0.1:0").expect("bind test server")
    }

    fn profile_req() -> Request {
        Request::Profile(ProfileRequest {
            bench: "gzip".into(),
            insts: 3_000,
            seed: 7,
            machine: MachineSpec::default(),
            probe: "full".into(),
        })
    }

    #[test]
    fn ping_over_the_wire() {
        let server = start_test_server();
        let resp = client::call(&server.addr().to_string(), &Request::Ping).expect("ping");
        assert_eq!(resp, Response::ok("pong\n"));
        server.stop_and_join();
    }

    #[test]
    fn daemon_response_matches_in_process_execution() {
        let server = start_test_server();
        let over_wire = client::call(&server.addr().to_string(), &profile_req()).expect("profile");
        server.stop_and_join();
        let local =
            Service::new(Arc::new(ArtifactStore::new()), 1, Duration::ZERO).execute(&profile_req());
        assert_eq!(over_wire, local, "wire and local bodies must be identical");
    }

    #[test]
    fn malformed_json_gets_an_error_and_the_connection_survives() {
        let server = start_test_server();
        let mut conn = client::Connection::open(&server.addr().to_string()).expect("connect");
        let resp = conn.send_raw(b"this is not json").expect("raw send");
        assert!(
            matches!(&resp, Response::Err { code, .. } if code == "malformed-request"),
            "got {resp:?}"
        );
        // Same connection still answers real requests.
        let resp = conn.send(&Request::Ping).expect("ping after garbage");
        assert_eq!(resp, Response::ok("pong\n"));
        server.stop_and_join();
    }

    #[test]
    fn shutdown_request_stops_the_daemon_cleanly() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let resp = client::call(&addr, &Request::Shutdown).expect("shutdown");
        assert_eq!(resp, Response::ok("shutting down\n"));
        server.join();
        // The port no longer answers.
        assert!(client::call(&addr, &Request::Ping).is_err());
    }

    fn num(v: &serde::Value) -> u64 {
        match v {
            serde::Value::Num(raw) => raw.parse().expect("integer field"),
            other => panic!("not a number: {other:?}"),
        }
    }

    fn hist_field(v: &serde::Value, hist: &str, field: &str) -> u64 {
        let hists = v.get("hists").expect("hists section");
        let h = hists
            .get(hist)
            .unwrap_or_else(|| panic!("missing hist `{hist}`"));
        num(h.get(field).expect("hist field"))
    }

    #[test]
    fn telemetry_reconciles_phases_and_records_both_outcomes() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        // One Ok profile, one structured failure, one ping.
        client::call(&addr, &profile_req()).expect("profile");
        let bad = Request::Profile(ProfileRequest {
            bench: "nope".into(),
            insts: 1_000,
            seed: 1,
            machine: MachineSpec::default(),
            probe: "full".into(),
        });
        match client::call(&addr, &bad).expect("bad profile answered") {
            Response::Err { code, .. } => assert_eq!(code, "bad-request"),
            Response::Ok { body } => panic!("unexpected success: {body}"),
        }
        client::call(&addr, &Request::Ping).expect("ping");

        let body = match client::call(&addr, &Request::Telemetry).expect("telemetry") {
            Response::Ok { body } => body,
            Response::Err { code, message } => panic!("telemetry failed {code}: {message}"),
        };
        let v: serde::Value = serde_json::from_str(body.trim_end()).expect("telemetry is JSON");
        assert_eq!(num(v.get("fosm_telemetry").expect("schema tag")), 1);

        // Phase histograms reconcile per request kind: the disjoint
        // sub-phases can never sum past the measured total.
        for (kind, expected_count) in [("profile", 2), ("ping", 1)] {
            let count = hist_field(&v, &format!("serve.total_us.{kind}"), "count");
            assert_eq!(count, expected_count, "total_us count for {kind}");
            let queue = hist_field(&v, &format!("serve.queue_us.{kind}"), "sum");
            let batch = hist_field(&v, &format!("serve.batch_wait_us.{kind}"), "sum");
            let exec = hist_field(&v, &format!("serve.exec_us.{kind}"), "sum");
            let total = hist_field(&v, &format!("serve.total_us.{kind}"), "sum");
            assert!(
                queue + batch + exec <= total,
                "{kind}: queue {queue} + batch {batch} + exec {exec} > total {total}"
            );
        }

        // The flight recorder holds both outcomes, in arrival order.
        let records = match v.get("flight").and_then(|f| f.get("records")) {
            Some(serde::Value::Seq(records)) => records.clone(),
            other => panic!("flight.records missing: {other:?}"),
        };
        let outcomes: Vec<String> = records
            .iter()
            .map(|r| match r.get("outcome") {
                Some(serde::Value::Str(s)) => s.clone(),
                other => panic!("outcome missing: {other:?}"),
            })
            .collect();
        assert!(outcomes.contains(&"ok".to_string()), "{outcomes:?}");
        assert!(
            outcomes.contains(&"bad-request".to_string()),
            "{outcomes:?}"
        );
        server.stop_and_join();
    }

    #[test]
    fn concurrent_clients_all_get_correct_answers() {
        let server = start_test_server();
        let addr = server.addr().to_string();
        let expected = client::call(&addr, &profile_req()).expect("reference response");
        let responses: Vec<_> = std::thread::scope(|s| {
            (0..8)
                .map(|_| {
                    let addr = addr.clone();
                    s.spawn(move || client::call(&addr, &profile_req()).expect("profile"))
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect()
        });
        for resp in responses {
            assert_eq!(resp, expected);
        }
        server.stop_and_join();
    }
}
