//! Closed-loop load generator for the daemon.
//!
//! Drives N concurrent clients, each with its own connection and a
//! deterministic mixed request stream (profile and model requests over
//! two workloads and all five probe variants), and records per-request
//! latency plus wall-clock throughput. The numbers land in
//! `BENCH_serve.json` in exactly the vendored criterion shim's
//! baseline format, so the same `--check` semantics (fail above
//! [`criterion::REGRESSION_LIMIT_PCT`]% slowdown) gate daemon latency
//! that already gate the micro-benchmarks.
//!
//! Two comparison hooks keep the numbers honest:
//!
//! * **verify** — every daemon response can be compared byte-for-byte
//!   against a caller-supplied oracle (the CLI passes an in-process
//!   [`Service`](crate::service::Service), the same code the daemon
//!   runs);
//! * **sequential baseline** — [`run_sequential`] times the identical
//!   flattened request stream through a caller-supplied one-shot
//!   runner (the CLI spawns `fosm client --local` subprocesses), which
//!   is what the daemon's speedup is measured against.

use std::time::{Duration, Instant};

use fosm_obs::{Histogram, HistogramSnapshot};

use crate::client::Connection;
use crate::proto::{MachineSpec, ProfileRequest, Request, Response};

/// Benchmarks the generated stream cycles through.
const BENCHES: [&str; 2] = ["gzip", "gcc"];

/// Probe variants the generated stream cycles through.
const PROBES: [&str; 5] = ["full", "ideal", "branch", "icache", "dcache"];

/// The deterministic request stream: `clients` lists of `per_client`
/// requests each. Consecutive requests of one client cycle through
/// probe variants and alternate profile/model, while different clients
/// start at different offsets — so at any instant the daemon sees a
/// mix of identical-trace requests (batching fodder) and distinct
/// ones.
pub fn plan(clients: usize, per_client: usize, insts: u64, seed: u64) -> Vec<Vec<Request>> {
    (0..clients)
        .map(|c| {
            (0..per_client)
                .map(|i| {
                    let k = c + i * clients;
                    let p = ProfileRequest {
                        bench: BENCHES[(i / PROBES.len()) % BENCHES.len()].to_string(),
                        insts,
                        seed,
                        machine: MachineSpec::default(),
                        probe: PROBES[k % PROBES.len()].to_string(),
                    };
                    if k.is_multiple_of(2) {
                        Request::Profile(p)
                    } else {
                        Request::Model(p)
                    }
                })
                .collect()
        })
        .collect()
}

/// One phase's measurements.
#[derive(Debug, Clone)]
pub struct RunStats {
    /// Requests completed.
    pub requests: usize,
    /// Wall-clock time for the whole phase.
    pub wall: Duration,
    /// Per-request latencies, unordered.
    pub latencies: Vec<Duration>,
}

impl RunStats {
    /// The `q`-th latency percentile (0–100), by nearest-rank over the
    /// sorted samples.
    ///
    /// Defined for every input: with no samples the result is
    /// [`Duration::ZERO`]; `q` is clamped into `[0, 100]` (so `q = 0`
    /// is exactly the minimum, `q = 100` exactly the maximum, and
    /// out-of-range values saturate rather than indexing out of
    /// bounds); a NaN `q` reads as 0.
    pub fn percentile(&self, q: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 100.0) };
        let rank = ((q / 100.0) * (sorted.len() - 1) as f64).round() as usize;
        sorted[rank.min(sorted.len() - 1)]
    }

    /// Mean nanoseconds per request, by wall clock (the throughput
    /// figure: total work over total time, not mean latency).
    pub fn ns_per_request(&self) -> f64 {
        self.wall.as_nanos() as f64 / self.requests.max(1) as f64
    }

    /// The latencies folded into the shared log2-bucketed
    /// [`HistogramSnapshot`] (nanoseconds) — the same mergeable
    /// primitive the daemon's telemetry and `fosm top` report on, so
    /// loadgen summaries and server-side phase histograms read on one
    /// scale and can be merged or diffed by the same tooling.
    ///
    /// Quantiles from the snapshot are bucket upper bounds: they land
    /// in the same power-of-two bucket as the exact nearest-rank
    /// [`Self::percentile`], which stays the oracle behind the
    /// `BENCH_serve.json` entries (bucket quantization would make a
    /// percentage regression gate flaky).
    pub fn latency_hist(&self) -> HistogramSnapshot {
        let hist = Histogram::new();
        for latency in &self.latencies {
            hist.record(u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX));
        }
        hist.snapshot()
    }

    /// One human line summarising the phase from the histogram:
    /// request count plus bucketed p50/p99 upper bounds in
    /// microseconds. Rendered next to the exact `BENCH_serve.json`
    /// numbers so drift between the two summaries would be visible in
    /// the bench log itself.
    pub fn hist_summary(&self, label: &str) -> String {
        let snap = self.latency_hist();
        format!(
            "{label}: {} requests, hist p50 <= {} us, p99 <= {} us",
            snap.count,
            snap.quantile(0.50) / 1_000,
            snap.quantile(0.99) / 1_000,
        )
    }
}

/// Runs `plan` against the daemon at `addr`: one thread and one
/// connection per client, requests pipelined in order. With `verify`,
/// every response is compared byte-for-byte against the oracle and any
/// mismatch fails the run.
///
/// # Errors
///
/// Connection or protocol failures, an error response from the daemon,
/// or a verification mismatch.
pub fn run_concurrent(
    addr: &str,
    plan: &[Vec<Request>],
    verify: Option<&(dyn Fn(&Request) -> Response + Sync)>,
) -> Result<RunStats, String> {
    let start = Instant::now();
    let per_client: Vec<Result<Vec<Duration>, String>> = std::thread::scope(|s| {
        plan.iter()
            .map(|requests| {
                s.spawn(move || {
                    let mut conn = Connection::open(addr)?;
                    let mut latencies = Vec::with_capacity(requests.len());
                    for req in requests {
                        let t0 = Instant::now();
                        let resp = conn.send(req)?;
                        latencies.push(t0.elapsed());
                        if let Response::Err { code, message } = &resp {
                            return Err(format!("daemon answered {code}: {message}"));
                        }
                        if let Some(oracle) = verify {
                            let expected = oracle(req);
                            if resp != expected {
                                return Err(format!(
                                    "response mismatch for {req:?}: daemon and local \
                                     execution disagree"
                                ));
                            }
                        }
                    }
                    Ok(latencies)
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("loadgen client thread"))
            .collect()
    });
    let wall = start.elapsed();
    let mut latencies = Vec::new();
    for result in per_client {
        latencies.extend(result?);
    }
    Ok(RunStats {
        requests: latencies.len(),
        wall,
        latencies,
    })
}

/// Times the same requests run strictly one after another through a
/// caller-supplied one-shot runner (the daemon-less baseline).
///
/// # Errors
///
/// The first runner failure.
pub fn run_sequential(
    plan: &[Vec<Request>],
    one_shot: &dyn Fn(&Request) -> Result<Response, String>,
) -> Result<RunStats, String> {
    let start = Instant::now();
    let mut latencies = Vec::new();
    for requests in plan {
        for req in requests {
            let t0 = Instant::now();
            let resp = one_shot(req)?;
            latencies.push(t0.elapsed());
            if let Response::Err { code, message } = resp {
                return Err(format!("one-shot run answered {code}: {message}"));
            }
        }
    }
    Ok(RunStats {
        requests: latencies.len(),
        wall: start.elapsed(),
        latencies,
    })
}

/// Renders a `BENCH_<group>.json` body in the criterion shim's exact
/// baseline format, so the shim's `--check` tooling and this file are
/// interchangeable.
pub fn bench_json(group: &str, entries: &[(String, f64)]) -> String {
    let mut body = String::from("{\n");
    body.push_str(&format!("  \"group\": \"{group}\",\n"));
    body.push_str("  \"benchmarks\": {\n");
    for (i, (id, ns)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        body.push_str(&format!(
            "    \"{id}\": {{\"ns_per_iter\": {ns:.1}}}{sep}\n"
        ));
    }
    body.push_str("  }\n}\n");
    body
}

/// Extracts `(id, ns_per_iter)` pairs from a baseline body (same
/// line-oriented scan as the criterion shim: the format is our own
/// output, so this is exact).
pub fn parse_bench_json(body: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in body.lines() {
        let Some(rest) = line.trim_start().strip_prefix('"') else {
            continue;
        };
        let Some((id, rest)) = rest.split_once('"') else {
            continue;
        };
        if id == "group" {
            continue;
        }
        let Some(rest) = rest.split_once("\"ns_per_iter\":").map(|(_, v)| v) else {
            continue;
        };
        let number: String = rest
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
            .collect();
        if let Ok(ns) = number.parse() {
            out.push((id.to_string(), ns));
        }
    }
    out
}

/// Compares current entries against a baseline body with the criterion
/// shim's `--check` semantics: one verdict line per entry, prefixed
/// `REGRESSION` when more than [`criterion::REGRESSION_LIMIT_PCT`]%
/// slower. Entries missing on either side are reported, not failed.
pub fn check_report(current: &[(String, f64)], baseline_body: &str) -> Vec<String> {
    let limit = criterion::REGRESSION_LIMIT_PCT;
    let baseline = parse_bench_json(baseline_body);
    let mut lines = Vec::new();
    for (id, ns) in current {
        match baseline.iter().find(|(base_id, _)| base_id == id) {
            None => lines.push(format!("{id}: new benchmark, no baseline entry")),
            Some((_, base_ns)) => {
                let delta_pct = 100.0 * (ns - base_ns) / base_ns;
                if delta_pct > limit {
                    lines.push(format!(
                        "REGRESSION {id}: {ns:.1} ns vs baseline {base_ns:.1} ns \
                         ({delta_pct:+.1}%, limit +{limit:.0}%)"
                    ));
                } else {
                    lines.push(format!(
                        "{id}: {ns:.1} ns vs baseline {base_ns:.1} ns ({delta_pct:+.1}%)"
                    ));
                }
            }
        }
    }
    for (id, _) in &baseline {
        if !current.iter().any(|(cur_id, _)| cur_id == id) {
            lines.push(format!("{id}: in baseline but not measured this run"));
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_deterministic_and_mixed() {
        let a = plan(8, 8, 20_000, 42);
        let b = plan(8, 8, 20_000, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.iter().all(|c| c.len() == 8));
        let flat: Vec<&Request> = a.iter().flatten().collect();
        assert!(flat.iter().any(|r| matches!(r, Request::Profile(_))));
        assert!(flat.iter().any(|r| matches!(r, Request::Model(_))));
        // Concurrent first requests cover several probe variants, so
        // batching sees a same-trace mix, not 8 copies of one probe.
        let first_probes: std::collections::BTreeSet<&str> = a
            .iter()
            .map(|c| match &c[0] {
                Request::Profile(p) | Request::Model(p) => p.probe.as_str(),
                _ => unreachable!("plan only emits profile/model"),
            })
            .collect();
        assert!(first_probes.len() >= 4, "got {first_probes:?}");
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let stats = RunStats {
            requests: 100,
            wall: Duration::from_secs(1),
            latencies: (1..=100).map(Duration::from_millis).collect(),
        };
        // Rank 0.5 * 99 = 49.5 rounds up to index 50.
        assert_eq!(stats.percentile(50.0), Duration::from_millis(51));
        assert_eq!(stats.percentile(99.0), Duration::from_millis(99));
        assert_eq!(stats.percentile(100.0), Duration::from_millis(100));
    }

    #[test]
    fn percentile_edges_are_defined_for_every_input() {
        let empty = RunStats {
            requests: 0,
            wall: Duration::ZERO,
            latencies: Vec::new(),
        };
        for q in [0.0, 50.0, 100.0, -5.0, 250.0, f64::NAN] {
            assert_eq!(empty.percentile(q), Duration::ZERO);
        }

        let stats = RunStats {
            requests: 3,
            wall: Duration::from_secs(1),
            latencies: vec![
                Duration::from_millis(30),
                Duration::from_millis(10),
                Duration::from_millis(20),
            ],
        };
        // q = 0 is exactly the minimum (unsorted input is sorted first).
        assert_eq!(stats.percentile(0.0), Duration::from_millis(10));
        // Out-of-range and NaN quantiles saturate instead of panicking.
        assert_eq!(stats.percentile(-1.0), Duration::from_millis(10));
        assert_eq!(stats.percentile(f64::NAN), Duration::from_millis(10));
        assert_eq!(stats.percentile(101.0), Duration::from_millis(30));
        assert_eq!(stats.percentile(f64::INFINITY), Duration::from_millis(30));

        let single = RunStats {
            requests: 1,
            wall: Duration::from_secs(1),
            latencies: vec![Duration::from_millis(7)],
        };
        for q in [0.0, 50.0, 100.0] {
            assert_eq!(single.percentile(q), Duration::from_millis(7));
        }
    }

    #[test]
    fn latency_hist_matches_counts_and_summary_renders() {
        let stats = RunStats {
            requests: 100,
            wall: Duration::from_secs(1),
            latencies: (1..=100).map(Duration::from_micros).collect(),
        };
        let snap = stats.latency_hist();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.min(), 1_000);
        assert_eq!(snap.max, 100_000);
        let line = stats.hist_summary("serve");
        assert!(line.starts_with("serve: 100 requests"), "{line}");
        assert!(line.contains("p99 <= "), "{line}");

        let empty = RunStats {
            requests: 0,
            wall: Duration::ZERO,
            latencies: Vec::new(),
        };
        assert!(empty.latency_hist().is_empty());
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The bucketed quantile is an upper bound on the exact
            /// nearest-rank percentile and lives in the same
            /// power-of-two bucket — "within one bucket" made precise.
            #[test]
            fn hist_quantile_brackets_exact_percentile(
                mut samples in prop::collection::vec(0u64..5_000_000, 1..200),
                q in 0.0f64..=100.0,
            ) {
                let stats = RunStats {
                    requests: samples.len(),
                    wall: Duration::from_secs(1),
                    latencies: samples.iter().copied().map(Duration::from_nanos).collect(),
                };
                let from_hist = stats.latency_hist().quantile(q / 100.0);
                samples.sort_unstable();
                // Same nearest-rank convention as
                // HistogramSnapshot::quantile (1-based ceil rank), so
                // the only divergence left to bound is the bucketing.
                let len = samples.len() as u64;
                let rank = (((q / 100.0) * len as f64).ceil() as u64).clamp(1, len);
                let exact = samples[(rank - 1) as usize];
                prop_assert!(from_hist >= exact, "hist {} < exact {}", from_hist, exact);
                prop_assert_eq!(
                    fosm_obs::hist::bucket_of(from_hist),
                    fosm_obs::hist::bucket_of(exact),
                    "hist quantile left the exact value's bucket"
                );
            }
        }
    }

    #[test]
    fn bench_json_round_trips_through_the_parser() {
        let entries = vec![
            ("serve/p50".to_string(), 1234.5),
            ("serve/p99".to_string(), 9876.5),
            ("oneshot/ns_per_req".to_string(), 55555.0),
        ];
        let parsed = parse_bench_json(&bench_json("serve", &entries));
        assert_eq!(parsed, entries);
    }

    #[test]
    fn check_report_flags_only_regressions_beyond_the_limit() {
        let baseline = bench_json(
            "serve",
            &[("a".to_string(), 1000.0), ("b".to_string(), 1000.0)],
        );
        let lines = check_report(
            &[
                (
                    "a".to_string(),
                    1000.0 * (1.0 + criterion::REGRESSION_LIMIT_PCT / 100.0) + 1.0,
                ),
                ("b".to_string(), 1100.0),
            ],
            &baseline,
        );
        assert!(lines[0].starts_with("REGRESSION a:"), "{lines:?}");
        assert!(!lines[1].starts_with("REGRESSION"), "{lines:?}");
    }
}
