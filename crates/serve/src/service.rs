//! Request handlers, shared by the daemon and the in-process client.
//!
//! [`Service::execute`] is the single entry point for every request,
//! whether it arrived over a socket (`fosm serve`) or in-process
//! (`fosm client --local`). That sharing is the byte-identity
//! contract: a response body is exactly what the equivalent one-shot
//! invocation prints, because both paths run this code — there is no
//! separate "daemon rendering" to drift.
//!
//! The handlers themselves are thin: they translate protocol types
//! into the existing pipeline (workload specs, probes, the memoizing
//! artifact store, the first-order model) and render with the same
//! format strings as `crates/cli`. Concurrency lives in the layers
//! this service composes — the [`Batcher`](crate::batch::Batcher)
//! coalesces same-trace profile work, and `explore` fans its grid
//! shards out over the [`WorkerPool`](crate::pool::WorkerPool).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fosm_bench::store::ArtifactStore;
use fosm_branch::PredictorConfig;
use fosm_cache::HierarchyConfig;
use fosm_core::model::FirstOrderModel;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{Probe, ProgramProfile};
use fosm_sim::MachineConfig;
use fosm_validate::ToleranceSpec;
use fosm_workloads::BenchmarkSpec;

use crate::batch::{BatchStats, Batcher};
use crate::pool::{PoolStats, WorkerPool};
use crate::proto::{ExploreRequest, ProfileRequest, Request, Response, ValidateRequest};
use crate::telemetry::{Telemetry, TELEMETRY_SCHEMA_VERSION};

/// The request executor: artifact store + batcher + worker pool.
pub struct Service {
    store: Arc<ArtifactStore>,
    batcher: Arc<Batcher>,
    pool: Arc<WorkerPool>,
    telemetry: Arc<Telemetry>,
    requests: AtomicU64,
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("pool", &self.pool)
            .finish_non_exhaustive()
    }
}

impl Service {
    /// A service over `store` with `workers` pool threads and the
    /// given batching window.
    pub fn new(store: Arc<ArtifactStore>, workers: usize, window: Duration) -> Service {
        Service {
            store,
            batcher: Arc::new(Batcher::new(window)),
            pool: Arc::new(WorkerPool::new(workers)),
            telemetry: Arc::new(Telemetry::from_env()),
            requests: AtomicU64::new(0),
        }
    }

    /// A single-threaded service over a fresh store (the
    /// `fosm client --local` path): no batching window, one worker.
    /// With `FOSM_CACHE_DIR` set, the store is disk-backed, so local
    /// runs share artifacts with a daemon pointed at the same
    /// directory.
    pub fn local() -> Service {
        let store = ArtifactStore::new();
        if let Some(disk) = fosm_bench::disk::DiskCache::from_env() {
            store.attach_disk(Arc::new(disk));
        }
        Service::new(Arc::new(store), 1, Duration::ZERO)
    }

    /// The worker pool, for the server's request dispatch.
    pub fn pool(&self) -> &Arc<WorkerPool> {
        &self.pool
    }

    /// The artifact store backing this service.
    pub fn store(&self) -> &Arc<ArtifactStore> {
        &self.store
    }

    /// The telemetry state (phase histograms + flight recorder).
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Stops the worker pool (drains queued work, joins threads).
    pub fn shutdown(&self) {
        self.pool.shutdown();
    }

    /// Executes one request to completion and renders the response.
    /// Never panics on malformed input — every failure is a structured
    /// [`Response::Err`].
    pub fn execute(&self, req: &Request) -> Response {
        self.requests.fetch_add(1, Ordering::Relaxed);
        fosm_obs::counter_add("serve.requests", 1);
        let result = match req {
            Request::Ping => Ok("pong\n".to_string()),
            Request::Profile(p) => self.profile(p),
            Request::Model(p) => self.model(p),
            Request::Validate(v) => self.validate(v),
            Request::Explore(e) => self.explore(e),
            Request::Stats => Ok(self.stats_body()),
            Request::Telemetry => Ok(self.telemetry_body()),
            Request::Shutdown => Ok("shutting down\n".to_string()),
        };
        match result {
            Ok(body) => Response::ok(body),
            Err(resp) => resp,
        }
    }

    /// Resolves a profile request down to validated pipeline inputs.
    fn resolve(
        &self,
        p: &ProfileRequest,
    ) -> Result<(BenchmarkSpec, ProcessorParams, Probe), Response> {
        let spec = find_benchmark(&p.bench).map_err(|e| Response::err("bad-request", e))?;
        let params = p
            .machine
            .to_params()
            .map_err(|e| Response::err("bad-request", e))?;
        let probe =
            probe_variant(&p.probe, &p.bench).map_err(|e| Response::err("bad-request", e))?;
        Ok((spec, params, probe))
    }

    /// The profile this request describes, through the batcher.
    fn collect(
        &self,
        p: &ProfileRequest,
    ) -> Result<(ProcessorParams, Arc<ProgramProfile>), Response> {
        let (spec, params, probe) = self.resolve(p)?;
        let profile = self
            .batcher
            .profile(&self.store, &params, probe, &spec, p.insts, p.seed)
            .map_err(|e| Response::err("model-error", e))?;
        Ok((params, profile))
    }

    /// `profile`: the functional profile as pretty-printed JSON (the
    /// same serialization `fosm profile` writes).
    fn profile(&self, p: &ProfileRequest) -> Result<String, Response> {
        let (_, profile) = self.collect(p)?;
        let json = serde_json::to_string_pretty(&*profile)
            .map_err(|e| Response::err("model-error", e.to_string()))?;
        Ok(format!("{json}\n"))
    }

    /// `model`: profile + first-order evaluation, rendered with the
    /// same format strings as `fosm model`.
    fn model(&self, p: &ProfileRequest) -> Result<String, Response> {
        let (params, profile) = self.collect(p)?;
        let est = FirstOrderModel::new(params)
            .evaluate(&profile)
            .map_err(|e| Response::err("model-error", e.to_string()))?;
        let mut out = format!("first-order model estimate for `{}`:\n", profile.name);
        for (component, cpi) in est.cpi_stack() {
            out.push_str(&format!("  {component:<10} {cpi:>7.4} CPI\n"));
        }
        out.push_str(&format!(
            "  {:<10} {:>7.4} CPI   ({:.3} IPC)\n",
            "total",
            est.total_cpi(),
            est.total_ipc()
        ));
        out.push_str(&format!(
            "  penalties: branch {:.1}, icache {:.1}, dcache/miss {:.1} cycles\n",
            est.branch_penalty, est.icache_penalty, est.dcache_penalty_per_miss
        ));
        Ok(out)
    }

    /// `validate`: one workload's differential comparison, rendered
    /// as `fosm validate --bench <name>`'s component table.
    fn validate(&self, v: &ValidateRequest) -> Result<String, Response> {
        let spec = find_benchmark(&v.bench).map_err(|e| Response::err("bad-request", e))?;
        let params = v
            .machine
            .to_params()
            .map_err(|e| Response::err("bad-request", e))?;
        let config = MachineConfig {
            width: params.width,
            win_size: params.win_size,
            rob_size: params.rob_size,
            pipe_depth: params.pipe_depth,
            l2_latency: params.l2_latency,
            mem_latency: params.mem_latency,
            ..MachineConfig::baseline()
        };
        config
            .validate()
            .map_err(|e| Response::err("bad-request", e))?;
        let cases = vec![fosm_validate::CaseSpec {
            config,
            bench: spec,
            trace_len: v.insts,
            seed: v.seed,
        }];
        let tol = ToleranceSpec::gate();
        // One case; the sweep's own fan-out would fight the request
        // pool for cores, so it runs single-threaded here.
        let options = fosm_validate::differential::SweepOptions {
            threads: 1,
            statsim: false,
        };
        let results = fosm_validate::differential::sweep(&self.store, &cases, &tol, options)
            .map_err(|e| Response::err("model-error", format!("validation sweep failed: {e}")))?;
        let report = fosm_validate::ValidationReport::new(v.insts, v.seed, tol, results);
        Ok(report.render_table())
    }

    /// `explore`: a grid sweep sharded over the worker pool (one shard
    /// per width-axis value), answered as a frontier summary plus CSV.
    fn explore(&self, e: &ExploreRequest) -> Result<String, Response> {
        let spec = find_benchmark(&e.bench).map_err(|err| Response::err("bad-request", err))?;
        let base = fosm_explore::MachineGrid::baseline_sweep();
        let pick = |axis: &[u32], default: Vec<u32>| {
            if axis.is_empty() {
                default
            } else {
                axis.to_vec()
            }
        };
        let grid = fosm_explore::MachineGrid {
            widths: pick(&e.widths, base.widths),
            win_sizes: pick(&e.windows, base.win_sizes),
            rob_sizes: pick(&e.robs, base.rob_sizes),
            pipe_depths: pick(&e.depths, base.pipe_depths),
            l2_latencies: pick(&e.l2s, base.l2_latencies),
            mem_latencies: pick(&e.mems, base.mem_latencies),
        };
        grid.validate()
            .map_err(|err| Response::err("bad-request", err.to_string()))?;

        let axes = fosm_explore::HardwareAxes::baseline_only();
        let variants = axes.variants();
        let variant = variants[0];
        let params = ProcessorParams::baseline();
        let probe = Probe::new(format!("{}:explore", e.bench))
            .with_hierarchy(HierarchyConfig::baseline())
            .with_predictor(PredictorConfig::baseline());
        let profile = self
            .batcher
            .profile(&self.store, &params, probe, &spec, e.insts, e.seed)
            .map_err(|err| Response::err("model-error", err))?;

        // One shard per width-axis value: 'static thunks over Arc'd
        // inputs, fanned out on the pool (the calling worker
        // participates, so this is safe from inside a request job).
        let model = FirstOrderModel::new(params);
        let thunks: Vec<_> = grid
            .widths
            .iter()
            .map(|&width| {
                let model = model.clone();
                let profile = Arc::clone(&profile);
                let subgrid = fosm_explore::MachineGrid {
                    widths: vec![width],
                    ..grid.clone()
                };
                move || {
                    fosm_explore::sweep_profile(
                        &model,
                        &profile,
                        &subgrid,
                        &variant,
                        fosm_explore::ShardTag {
                            workload: 0,
                            variant: 0,
                        },
                    )
                    .map_err(|err| err.to_string())
                }
            })
            .collect();
        let shards = self
            .pool
            .run_many(thunks)
            .into_iter()
            .collect::<Result<Vec<_>, String>>()
            .map_err(|err| Response::err("model-error", err))?;

        let configs: u64 = shards.iter().map(|s| s.configs).sum();
        let frontier = fosm_explore::merge_frontiers(&shards);
        let workload_names = vec![e.bench.clone()];
        let rows = fosm_explore::frontier_rows(frontier.points(), &workload_names, &variants);
        let mut out = format!(
            "explored {configs} configs: 1 workload(s) x 1 hardware variant(s) x {} grid points\n",
            grid.len()
        );
        out.push_str(&format!("pareto frontier: {} point(s)\n", frontier.len()));
        out.push_str(&fosm_explore::frontier_csv(&rows));
        Ok(out)
    }

    /// `stats`: deterministic key/value diagnostics. The CI cache-reuse
    /// job greps `store.disk_hit` here, so the line set and spelling
    /// are a stable interface.
    fn stats_body(&self) -> String {
        let pool: PoolStats = self.pool.stats();
        let batch: BatchStats = self.batcher.stats();
        let store = self.store.stats();
        let disk = self.store.disk().map(|d| d.stats()).unwrap_or_default();
        let mut out = String::new();
        for (key, value) in [
            ("serve.requests", self.requests.load(Ordering::Relaxed)),
            ("pool.workers", pool.workers as u64),
            ("pool.executed", pool.executed),
            ("pool.steals", pool.steals),
            ("batch.passes", batch.passes),
            ("batch.coalesced", batch.coalesced),
            ("store.trace_hit", store.trace_hits),
            ("store.trace_miss", store.trace_misses),
            ("store.profile_hit", store.profile_hits),
            ("store.profile_miss", store.profile_misses),
            ("store.disk_hit", disk.hits),
            ("store.disk_miss", disk.misses),
            ("store.disk_insert", disk.inserts),
            ("store.disk_evict", disk.evictions),
            ("store.disk_corrupt", disk.corruptions),
        ] {
            out.push_str(&format!("{key} {value}\n"));
        }
        out
    }

    /// `telemetry`: one line of schema-versioned JSON — request totals,
    /// pool/batch traffic, per-kind phase histograms, and the flight
    /// recorder. Unlike `stats` (a frozen byte interface), this body
    /// is versioned by its `fosm_telemetry` field and may grow fields
    /// within a version.
    fn telemetry_body(&self) -> String {
        let pool: PoolStats = self.pool.stats();
        let batch: BatchStats = self.batcher.stats();
        // Export the live queue depth as a gauge too: under a request
        // scope it lands in the scoped registry and is absorbed into
        // the global manifest (last write wins).
        fosm_obs::gauge_set("serve.pool.queue_depth", pool.queue_depth as f64);
        let mut out = String::with_capacity(1024);
        out.push_str("{\"fosm_telemetry\":");
        out.push_str(&TELEMETRY_SCHEMA_VERSION.to_string());
        out.push_str(",\"enabled\":");
        out.push_str(if self.telemetry.enabled() {
            "true"
        } else {
            "false"
        });
        out.push_str(",\"requests\":");
        out.push_str(&self.requests.load(Ordering::Relaxed).to_string());
        out.push_str(",\"pool\":{");
        for (i, (key, value)) in [
            ("workers", pool.workers as u64),
            ("executed", pool.executed),
            ("steals", pool.steals),
            ("parks", pool.parks),
            ("caller_runs", pool.caller_runs),
            ("queue_depth", pool.queue_depth as u64),
        ]
        .into_iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(key);
            out.push_str("\":");
            out.push_str(&value.to_string());
        }
        out.push_str("},\"batch\":{\"passes\":");
        out.push_str(&batch.passes.to_string());
        out.push_str(",\"coalesced\":");
        out.push_str(&batch.coalesced.to_string());
        out.push_str("},");
        self.telemetry.write_json_sections(&mut out);
        out.push_str("}\n");
        out
    }
}

/// Looks up a built-in benchmark by name (same error text as the CLI).
pub fn find_benchmark(name: &str) -> Result<BenchmarkSpec, String> {
    BenchmarkSpec::all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `fosm bench-list`)"))
}

/// Builds one named probe variant over the baseline hierarchy. Mirrors
/// the CLI's `--probes` variants: the full machine plus the four
/// single-source idealizations from the validation suite.
///
/// # Errors
///
/// An unknown variant name.
pub fn probe_variant(name: &str, trace: &str) -> Result<Probe, String> {
    let hierarchy = HierarchyConfig::baseline();
    let ideal = HierarchyConfig::ideal();
    let probe = Probe::new(format!("{trace}:{name}"));
    Ok(match name {
        "full" => probe.with_hierarchy(hierarchy),
        "ideal" => probe
            .with_hierarchy(ideal)
            .with_predictor(PredictorConfig::Ideal),
        "branch" => probe.with_hierarchy(ideal),
        "icache" => probe
            .with_hierarchy(HierarchyConfig {
                l1i: hierarchy.l1i,
                l1d: None,
                l2: hierarchy.l2,
                next_line_prefetch: 0,
            })
            .with_predictor(PredictorConfig::Ideal),
        "dcache" => probe
            .with_hierarchy(HierarchyConfig {
                l1i: None,
                l1d: hierarchy.l1d,
                l2: hierarchy.l2,
                next_line_prefetch: hierarchy.next_line_prefetch,
            })
            .with_predictor(PredictorConfig::Ideal),
        other => {
            return Err(format!(
                "unknown probe `{other}` (expected full, ideal, branch, icache, or dcache)"
            ))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::proto::MachineSpec;

    fn test_service() -> Service {
        Service::new(Arc::new(ArtifactStore::new()), 2, Duration::ZERO)
    }

    fn profile_req(probe: &str) -> ProfileRequest {
        ProfileRequest {
            bench: "gzip".into(),
            insts: 3_000,
            seed: 7,
            machine: MachineSpec::default(),
            probe: probe.into(),
        }
    }

    fn body(resp: Response) -> String {
        match resp {
            Response::Ok { body } => body,
            Response::Err { code, message } => panic!("unexpected error {code}: {message}"),
        }
    }

    #[test]
    fn ping_pongs() {
        assert_eq!(body(test_service().execute(&Request::Ping)), "pong\n");
    }

    #[test]
    fn profile_returns_pretty_json_with_trailing_newline() {
        let out = body(test_service().execute(&Request::Profile(profile_req("full"))));
        assert!(out.starts_with('{') && out.ends_with("}\n"));
        let parsed: ProgramProfile =
            serde_json::from_str(out.trim_end()).expect("body is a profile");
        assert_eq!(parsed.name, "gzip:full");
    }

    #[test]
    fn model_renders_the_cpi_stack() {
        let out = body(test_service().execute(&Request::Model(profile_req("full"))));
        assert!(out.starts_with("first-order model estimate for `gzip:full`:\n"));
        assert!(out.contains(" CPI   ("));
        assert!(out.contains("penalties: branch "));
    }

    #[test]
    fn identical_requests_are_byte_identical_and_memoized() {
        let service = test_service();
        let first = body(service.execute(&Request::Model(profile_req("full"))));
        let second = body(service.execute(&Request::Model(profile_req("full"))));
        assert_eq!(first, second);
        let stats = service.store.stats();
        assert_eq!(stats.profile_hits, 1, "second request memoized");
    }

    #[test]
    fn unknown_benchmark_and_probe_are_bad_requests() {
        let service = test_service();
        for req in [
            Request::Profile(ProfileRequest {
                bench: "nope".into(),
                ..profile_req("full")
            }),
            Request::Profile(profile_req("bogus")),
        ] {
            match service.execute(&req) {
                Response::Err { code, .. } => assert_eq!(code, "bad-request"),
                Response::Ok { body } => panic!("unexpected success: {body}"),
            }
        }
    }

    #[test]
    fn invalid_machine_is_a_bad_request() {
        let mut req = profile_req("full");
        req.machine.width = 0;
        match test_service().execute(&Request::Profile(req)) {
            Response::Err { code, .. } => assert_eq!(code, "bad-request"),
            Response::Ok { body } => panic!("unexpected success: {body}"),
        }
    }

    #[test]
    fn explore_returns_a_frontier_csv() {
        let req = ExploreRequest {
            bench: "gzip".into(),
            insts: 3_000,
            seed: 7,
            widths: vec![2, 4],
            windows: vec![16, 32],
            robs: vec![128],
            depths: vec![5],
            l2s: vec![12],
            mems: vec![200],
        };
        let out = body(test_service().execute(&Request::Explore(req)));
        assert!(out.starts_with("explored 4 configs:"));
        assert!(out
            .contains("workload,icache,dcache,predictor,width,window,rob,depth,l2,mem,ipc,cost\n"));
        assert!(out.contains("gzip,"));
    }

    #[test]
    fn telemetry_body_is_schema_versioned_json() {
        let service = test_service();
        service.execute(&Request::Ping);
        service.telemetry().record(crate::telemetry::RequestRecord {
            seq: 0,
            kind: "ping",
            outcome: "ok".into(),
            queue_us: 1,
            batch_wait_us: 0,
            exec_us: 2,
            respond_us: 1,
            total_us: 5,
            resp_bytes: 20,
            cache_hit: true,
        });
        let out = body(service.execute(&Request::Telemetry));
        assert!(out.starts_with("{\"fosm_telemetry\":1,"));
        assert!(out.ends_with("}\n"));
        let v: serde::Value = serde_json::from_str(out.trim_end()).expect("valid JSON");
        let pool = v.get("pool").expect("pool section");
        assert!(pool.get("queue_depth").is_some());
        assert!(pool.get("caller_runs").is_some());
        assert!(v.get("batch").and_then(|b| b.get("passes")).is_some());
        let hists = v.get("hists").expect("hists section");
        assert!(hists.get("serve.total_us.ping").is_some());
        assert!(v.get("flight").and_then(|f| f.get("records")).is_some());
    }

    #[test]
    fn stats_lists_the_stable_counter_keys() {
        let service = test_service();
        service.execute(&Request::Ping);
        let out = body(service.execute(&Request::Stats));
        for key in [
            "serve.requests ",
            "pool.workers 2",
            "batch.passes ",
            "store.disk_hit 0",
            "store.disk_corrupt 0",
        ] {
            assert!(out.contains(key), "stats missing `{key}`:\n{out}");
        }
    }
}
