//! Protocol hardening tests: property-based framing round-trips, and
//! raw-socket abuse against a live daemon. The unit-level happy paths
//! live in `src/proto.rs`; these drive arbitrary payloads through the
//! framing layer and put deliberately broken bytes on a real TCP
//! connection, asserting the server always answers with a structured
//! error (or drops the connection) and never panics, hangs, or leaks
//! the failure into a later request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use fosm_bench::store::ArtifactStore;
use fosm_serve::proto::{
    read_frame, write_frame, FrameError, Request, Response, HEADER_LEN, MAX_FRAME_LEN,
};
use fosm_serve::server::{start, ServerHandle};
use fosm_serve::service::Service;
use proptest::prelude::*;

fn start_test_server() -> ServerHandle {
    let service = Arc::new(Service::new(
        Arc::new(ArtifactStore::new()),
        2,
        Duration::ZERO,
    ));
    start(service, "127.0.0.1:0").expect("bind test server")
}

proptest! {
    /// Any payload (any bytes, any length up to well past typical
    /// requests) survives a write/read round-trip bit-exactly, and
    /// consecutive frames never bleed into each other.
    #[test]
    fn framing_round_trips_arbitrary_payloads(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..4096), 1..8)
    ) {
        let mut wire = Vec::new();
        for payload in &payloads {
            write_frame(&mut wire, payload).expect("write");
        }
        let mut r = wire.as_slice();
        for payload in &payloads {
            let got = read_frame(&mut r).expect("read").expect("frame present");
            prop_assert_eq!(&got, payload);
        }
        prop_assert!(read_frame(&mut r).expect("clean eof").is_none());
    }

    /// Truncating a valid stream at any byte boundary inside the final
    /// frame reads as `Truncated` (never a hang, never a short frame).
    #[test]
    fn any_truncation_is_detected(
        payload in prop::collection::vec(any::<u8>(), 1..512),
        cut_fraction in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let full = wire.len();
        // Cut strictly inside the frame: [1, full - 1] bytes kept.
        let keep = 1 + ((full - 2) as f64 * cut_fraction) as usize;
        wire.truncate(keep);
        let mut r = wire.as_slice();
        let missing = full - keep;
        match read_frame(&mut r) {
            Err(FrameError::Truncated { missing: got }) => {
                let expected = if keep < HEADER_LEN { HEADER_LEN - keep } else { missing };
                prop_assert_eq!(got, expected);
            }
            other => prop_assert!(false, "expected Truncated, got {:?}", other.map(|_| ())),
        }
    }
}

/// An oversized header gets a structured `oversized-frame` answer
/// before the connection closes, and the server stays up for the
/// next client.
#[test]
fn oversized_header_is_answered_then_connection_closed() {
    let server = start_test_server();
    let addr = server.addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&(MAX_FRAME_LEN + 1).to_be_bytes())
        .expect("send hostile header");
    let frame = read_frame(&mut stream)
        .expect("server answers before closing")
        .expect("one response frame");
    let resp = fosm_serve::proto::decode_response(&frame).expect("structured response");
    assert!(
        matches!(&resp, Response::Err { code, .. } if code == "oversized-frame"),
        "got {resp:?}"
    );
    // The connection is closed afterwards (the remaining bytes are
    // unframeable), but the server still accepts new clients.
    let resp = fosm_serve::client::call(&addr.to_string(), &Request::Ping).expect("server alive");
    assert_eq!(resp, Response::ok("pong\n"));
    server.stop_and_join();
}

/// A client that sends half a frame and disconnects must not wedge the
/// server.
#[test]
fn midframe_disconnect_does_not_wedge_the_server() {
    let server = start_test_server();
    let addr = server.addr();

    for fragment in [&[0x00u8, 0x00][..], &[0x00, 0x00, 0x00, 0x10, 0xAA][..]] {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(fragment).expect("send fragment");
        drop(stream);
    }
    let resp = fosm_serve::client::call(&addr.to_string(), &Request::Ping).expect("server alive");
    assert_eq!(resp, Response::ok("pong\n"));
    server.stop_and_join();
}

/// Malformed JSON inside a well-formed frame is answered with
/// `malformed-request` and the *same connection* keeps working — a
/// framing-level success must not poison the session.
#[test]
fn malformed_payloads_get_structured_errors_on_a_live_connection() {
    let server = start_test_server();
    let mut conn =
        fosm_serve::client::Connection::open(&server.addr().to_string()).expect("connect");
    for garbage in [
        &b"not json at all"[..],
        b"{\"Unknown\": {}}",
        b"{\"Profile\": {\"bench\": 7}}",
        b"\xff\xfe\xfd",
        b"",
    ] {
        let resp = conn.send_raw(garbage).expect("server answers garbage");
        assert!(
            matches!(&resp, Response::Err { code, .. } if code == "malformed-request"),
            "payload {garbage:?} got {resp:?}"
        );
    }
    let resp = conn.send(&Request::Ping).expect("connection survives");
    assert_eq!(resp, Response::ok("pong\n"));
    server.stop_and_join();
}

/// A zero-length frame is valid framing (empty payload) and decodes to
/// a malformed-request answer, not a protocol desync: the length
/// prefix alone delimits frames.
#[test]
fn responses_stay_aligned_after_an_empty_frame() {
    let server = start_test_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    // Two frames back-to-back: empty, then a valid ping.
    write_frame(&mut stream, b"").expect("empty frame");
    write_frame(
        &mut stream,
        &fosm_serve::proto::encode_request(&Request::Ping),
    )
    .expect("ping frame");
    let first = read_frame(&mut stream)
        .expect("first answer")
        .expect("frame");
    let second = read_frame(&mut stream)
        .expect("second answer")
        .expect("frame");
    let first = fosm_serve::proto::decode_response(&first).expect("decodes");
    let second = fosm_serve::proto::decode_response(&second).expect("decodes");
    assert!(matches!(&first, Response::Err { code, .. } if code == "malformed-request"));
    assert_eq!(second, Response::ok("pong\n"));
    // Close our half; the server should notice EOF, not block forever.
    drop(stream);
    server.stop_and_join();
}

/// Reading from a socket the server closed mid-stream must surface as
/// a clean result on our side too (sanity check of the test helper).
#[test]
fn server_shutdown_closes_idle_connections() {
    let server = start_test_server();
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    server.stop_and_join();
    // After a full shutdown our idle connection reads EOF (len 0), not
    // a hang.
    let mut buf = [0u8; 1];
    match stream.read(&mut buf) {
        Ok(0) => {}
        Ok(n) => panic!("unexpected {n} bytes from a stopped server"),
        Err(e) => panic!("read after shutdown failed: {e}"),
    }
}
