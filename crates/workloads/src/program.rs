//! Static synthetic programs: functions, blocks, loops, calls.
//!
//! A [`SyntheticProgram`] is the *code* of a synthetic benchmark: a set
//! of functions made of basic blocks with stable PCs. Operation classes
//! and control structure are fixed at build time (so instruction-cache
//! and branch-predictor behaviour see a realistic, recurring PC stream);
//! registers, addresses, and branch outcomes are drawn dynamically by
//! the [`WorkloadGenerator`](crate::WorkloadGenerator).

use fosm_isa::Op;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::{BenchmarkSpec, MemClass};

/// Bytes per instruction in the synthetic ISA.
pub(crate) const INST_BYTES: u64 = 4;

/// One static (non-terminator) instruction slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StaticInst {
    /// Operation class (never a branch; terminators own control flow).
    pub op: Op,
    /// For memory operations: the access-pattern class and, for
    /// streams, which stream this instruction advances.
    pub mem: Option<(MemClass, u32)>,
}

/// How a basic block ends.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Terminator {
    /// Fall through to the next block (no instruction emitted).
    FallThrough,
    /// Backward conditional branch re-executing this block; `trips` is
    /// the block's static trip count (jitter applied dynamically).
    Loop {
        /// Static trip count (≥ 2).
        trips: u32,
    },
    /// Forward conditional branch skipping the next block when taken.
    Skip {
        /// Probability the branch is taken (ignored when `period > 0`).
        p_taken: f64,
        /// Whether this is a "hard" (data-dependent) branch.
        hard: bool,
        /// When non-zero, the branch follows a deterministic periodic
        /// pattern (taken once every `period` executions) instead of an
        /// i.i.d. Bernoulli draw — the history-correlated behaviour
        /// that lets gshare-class predictors beat per-branch bias.
        period: u32,
    },
    /// Call to another function, then continue at the next block.
    Call {
        /// Index of the callee in [`SyntheticProgram::functions`].
        callee: u32,
    },
    /// Return to the caller (always the final block's terminator).
    Return,
}

/// A basic block: straight-line body plus terminator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Block {
    /// PC of the first body instruction.
    pub pc: u64,
    /// Straight-line body.
    pub body: Vec<StaticInst>,
    /// Control-flow terminator.
    pub term: Terminator,
}

impl Block {
    /// PC of the terminator instruction (directly after the body).
    pub fn term_pc(&self) -> u64 {
        self.pc + self.body.len() as u64 * INST_BYTES
    }

    /// Bytes of code this block occupies (body + terminator if any).
    pub fn code_bytes(&self) -> u64 {
        let term_bytes = match self.term {
            Terminator::FallThrough => 0,
            _ => INST_BYTES,
        };
        self.body.len() as u64 * INST_BYTES + term_bytes
    }
}

/// A function: a straight sequence of blocks ending in a `Return` block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Index of this function within the program.
    pub index: u32,
    /// The function's blocks, laid out consecutively.
    pub blocks: Vec<Block>,
}

impl Function {
    /// Entry PC (PC of the first block).
    pub fn entry_pc(&self) -> u64 {
        self.blocks[0].pc
    }
}

/// A complete static program built from a [`BenchmarkSpec`].
///
/// Building is deterministic in `spec.program_seed`: the same spec
/// always yields the same code layout, so instruction-cache behaviour
/// is reproducible across dynamic seeds.
///
/// # Examples
///
/// ```
/// use fosm_workloads::{BenchmarkSpec, SyntheticProgram};
///
/// let prog = SyntheticProgram::build(&BenchmarkSpec::gzip()).unwrap();
/// assert!(prog.code_bytes() > 0);
/// assert_eq!(prog.functions.len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticProgram {
    /// All functions. Call targets may point anywhere but the caller
    /// itself; recursion through cycles is bounded at run time by the
    /// spec's `max_call_depth`.
    pub functions: Vec<Function>,
    code_bytes: u64,
}

/// Base address of the code segment.
pub(crate) const CODE_BASE: u64 = 0x0040_0000;

impl SyntheticProgram {
    /// Builds the static program described by `spec`.
    ///
    /// # Errors
    ///
    /// Returns the message from [`BenchmarkSpec::validate`] if the spec
    /// is inconsistent.
    pub fn build(spec: &BenchmarkSpec) -> Result<Self, String> {
        spec.validate()?;
        let mut rng = SmallRng::seed_from_u64(spec.program_seed);
        let mut functions = Vec::with_capacity(spec.num_functions as usize);
        let mut pc = CODE_BASE;

        for fidx in 0..spec.num_functions {
            let nblocks = spec.blocks_per_function.max(1);
            let mut blocks = Vec::with_capacity(nblocks as usize);
            for bidx in 0..nblocks {
                let body = Self::build_body(spec, &mut rng);
                let is_last = bidx == nblocks - 1;
                let term = if is_last {
                    Terminator::Return
                } else {
                    Self::draw_terminator(spec, &mut rng, fidx)
                };
                let block = Block { pc, body, term };
                pc += block.code_bytes();
                blocks.push(block);
            }
            functions.push(Function {
                index: fidx,
                blocks,
            });
        }

        Ok(SyntheticProgram {
            functions,
            code_bytes: pc - CODE_BASE,
        })
    }

    fn build_body(spec: &BenchmarkSpec, rng: &mut SmallRng) -> Vec<StaticInst> {
        let mean = spec.insts_per_block_mean as f64;
        let len = geometric(rng, mean).clamp(1, (4.0 * mean) as u64) as usize;
        (0..len).map(|_| Self::draw_inst(spec, rng)).collect()
    }

    fn draw_inst(spec: &BenchmarkSpec, rng: &mut SmallRng) -> StaticInst {
        let m = &spec.mix;
        let r: f64 = rng.gen();
        // Walk the cumulative mix distribution; the remainder after all
        // listed classes is plain integer ALU work.
        let classes = [
            (m.load, Op::Load),
            (m.store, Op::Store),
            (m.int_mul, Op::IntMul),
            (m.int_div, Op::IntDiv),
            (m.fp_add, Op::FpAdd),
            (m.fp_mul, Op::FpMul),
            (m.fp_div, Op::FpDiv),
        ];
        let mut acc = 0.0;
        let mut op = Op::IntAlu;
        for (fraction, candidate) in classes {
            acc += fraction;
            if r < acc {
                op = candidate;
                break;
            }
        }
        let mem = if op.is_mem() {
            let r: f64 = rng.gen();
            let class = if r < spec.f_mem_stream {
                MemClass::Stream
            } else if r < spec.f_mem_stream + spec.f_mem_random {
                MemClass::Random
            } else {
                MemClass::Stack
            };
            let stream = rng.gen_range(0..spec.num_streams);
            Some((class, stream))
        } else {
            None
        };
        StaticInst { op, mem }
    }

    fn draw_terminator(spec: &BenchmarkSpec, rng: &mut SmallRng, fidx: u32) -> Terminator {
        let r: f64 = rng.gen();
        let can_call = spec.num_functions > 1;
        if r < spec.frac_loop_blocks {
            // Static trip count around the mean, at least 2.
            let trips =
                geometric(rng, spec.loop_trip_mean as f64).clamp(2, 4 * spec.loop_trip_mean as u64);
            Terminator::Loop {
                trips: trips as u32,
            }
        } else if r < spec.frac_loop_blocks + spec.frac_call_blocks && can_call {
            // Any function other than the caller may be a target;
            // recursion through cycles is bounded by max_call_depth.
            let mut callee = rng.gen_range(0..spec.num_functions - 1);
            if callee >= fidx {
                callee += 1;
            }
            Terminator::Call { callee }
        } else if r < spec.frac_loop_blocks + spec.frac_call_blocks + spec.frac_skip_blocks {
            let kind: f64 = rng.gen();
            if kind < spec.frac_hard_branches {
                // Data-dependent: taken-probability near the configured
                // bias, on a random side of 0.5.
                // Forward conditionals skew not-taken in real code, so
                // aliased predictor entries mostly agree in direction.
                let p_taken = if rng.gen::<f64>() < 0.7 {
                    1.0 - spec.hard_branch_bias
                } else {
                    spec.hard_branch_bias
                };
                Terminator::Skip {
                    p_taken,
                    hard: true,
                    period: 0,
                }
            } else if kind < spec.frac_hard_branches + spec.frac_pattern_branches {
                // History-correlated periodic branch (e.g. the inner
                // conditional of an unrolled or strided loop).
                let period = rng.gen_range(2..=6);
                Terminator::Skip {
                    p_taken: 0.5,
                    hard: false,
                    period,
                }
            } else {
                // Highly-biased, predictor-friendly branch; mostly
                // not-taken, as forward conditionals are in real code.
                let p = rng.gen_range(0.004..0.04);
                let p_taken = if rng.gen::<f64>() < 0.8 { p } else { 1.0 - p };
                Terminator::Skip {
                    p_taken,
                    hard: false,
                    period: 0,
                }
            }
        } else {
            Terminator::FallThrough
        }
    }

    /// Total bytes of code (static footprint), the I-cache pressure knob.
    pub fn code_bytes(&self) -> u64 {
        self.code_bytes
    }

    /// Total static instruction slots (bodies + terminators).
    pub fn static_insts(&self) -> u64 {
        self.code_bytes / INST_BYTES
    }
}

/// Draws from a geometric distribution with the given mean (min 1).
pub(crate) fn geometric(rng: &mut SmallRng, mean: f64) -> u64 {
    debug_assert!(mean >= 1.0);
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    (u.ln() / (1.0 - p).ln()).floor() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_is_deterministic_in_program_seed() {
        let spec = BenchmarkSpec::gzip();
        let a = SyntheticProgram::build(&spec).unwrap();
        let b = SyntheticProgram::build(&spec).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut spec = BenchmarkSpec::gzip();
        let a = SyntheticProgram::build(&spec).unwrap();
        spec.program_seed ^= 0xdead_beef;
        let b = SyntheticProgram::build(&spec).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn blocks_are_contiguous_and_nonoverlapping() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::gcc()).unwrap();
        let mut expected_pc = CODE_BASE;
        for f in &prog.functions {
            for b in &f.blocks {
                assert_eq!(b.pc, expected_pc, "block layout gap");
                assert!(!b.body.is_empty());
                expected_pc += b.code_bytes();
            }
        }
        assert_eq!(prog.code_bytes(), expected_pc - CODE_BASE);
    }

    #[test]
    fn every_function_ends_with_return_and_has_no_other_returns() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::vortex()).unwrap();
        for f in &prog.functions {
            let (last, init) = f.blocks.split_last().unwrap();
            assert_eq!(last.term, Terminator::Return);
            for b in init {
                assert_ne!(b.term, Terminator::Return);
            }
        }
    }

    #[test]
    fn call_targets_are_valid_and_never_self() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::gcc()).unwrap();
        let mut saw_call = false;
        for f in &prog.functions {
            for b in &f.blocks {
                if let Terminator::Call { callee } = b.term {
                    saw_call = true;
                    assert_ne!(callee, f.index, "direct self-recursion is not generated");
                    assert!((callee as usize) < prog.functions.len());
                }
            }
        }
        assert!(saw_call, "gcc spec should generate call blocks");
    }

    #[test]
    fn loop_trips_are_at_least_two() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::gap()).unwrap();
        let mut saw_loop = false;
        for f in &prog.functions {
            for b in &f.blocks {
                if let Terminator::Loop { trips } = b.term {
                    saw_loop = true;
                    assert!(trips >= 2);
                }
            }
        }
        assert!(saw_loop);
    }

    #[test]
    fn skip_probabilities_are_probabilities() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::twolf()).unwrap();
        for f in &prog.functions {
            for b in &f.blocks {
                if let Terminator::Skip { p_taken, .. } = b.term {
                    assert!((0.0..=1.0).contains(&p_taken));
                }
            }
        }
    }

    #[test]
    fn code_footprints_rank_as_designed() {
        let small = SyntheticProgram::build(&BenchmarkSpec::gzip()).unwrap();
        let large = SyntheticProgram::build(&BenchmarkSpec::gcc()).unwrap();
        assert!(
            large.code_bytes() > 4 * small.code_bytes(),
            "gcc code ({}) should dwarf gzip code ({})",
            large.code_bytes(),
            small.code_bytes()
        );
    }

    #[test]
    fn memory_instructions_carry_classes() {
        let prog = SyntheticProgram::build(&BenchmarkSpec::mcf()).unwrap();
        for f in &prog.functions {
            for b in &f.blocks {
                for i in &b.body {
                    assert_eq!(i.mem.is_some(), i.op.is_mem());
                    assert!(!i.op.is_branch(), "bodies must be branch-free");
                }
            }
        }
    }

    #[test]
    fn geometric_mean_is_roughly_right() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| geometric(&mut rng, 8.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((7.0..9.0).contains(&mean), "mean {mean}");
    }

    #[test]
    fn invalid_spec_is_rejected() {
        let mut spec = BenchmarkSpec::gzip();
        spec.dep_window = 0;
        assert!(SyntheticProgram::build(&spec).is_err());
    }
}
