//! Synthetic SPECint2000-like workloads for the first-order model.
//!
//! The original paper drives its model with instruction traces of the
//! twelve SPECint2000 benchmarks. Those binaries and traces are not
//! redistributable, so this crate substitutes *statistical program
//! models*: for each benchmark, a [`BenchmarkSpec`] captures the
//! properties the model actually consumes —
//!
//! * register dependence-distance structure (which determines the
//!   power-law IW characteristic, paper §3),
//! * instruction mix (which determines the average functional-unit
//!   latency `L`),
//! * branch demographics and predictability (branch misprediction
//!   miss-events),
//! * static code footprint and loop structure (instruction-cache
//!   miss-events),
//! * data footprint and access-pattern mix (data-cache miss-events and
//!   their clustering).
//!
//! [`SyntheticProgram`] expands a spec into a concrete static program
//! (functions, basic blocks, loops, call sites — with stable PCs), and
//! [`WorkloadGenerator`] walks that program to produce an unbounded,
//! deterministic dynamic instruction stream implementing
//! [`TraceSource`](fosm_trace::TraceSource).
//!
//! The generated streams are *calibrated imitations*, not replays: they
//! exercise exactly the code paths the paper's methodology exercises
//! (trace → functional simulation → model inputs), with per-benchmark
//! parameters chosen so the resulting model inputs land in the ranges
//! the paper reports (e.g. Table 1's α, β, and average latency).
//!
//! # Examples
//!
//! ```
//! use fosm_trace::TraceSource;
//! use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! let mut gen = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 7);
//! let inst = gen.next_inst().expect("generators are unbounded");
//! assert!(inst.is_well_formed());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generator;
mod phases;
mod program;
mod spec;

pub use generator::WorkloadGenerator;
pub use phases::PhasedGenerator;
pub use program::{Block, Function, StaticInst, SyntheticProgram, Terminator};
pub use spec::{BenchmarkSpec, MemClass, MixSpec};
