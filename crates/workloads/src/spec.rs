//! Per-benchmark statistical parameters.

use serde::{Deserialize, Serialize};

/// Access-pattern class of a static memory instruction.
///
/// Each static load/store is assigned a class when the program is
/// built; the class determines how its effective addresses are drawn at
/// run time, which in turn shapes cache miss rates and long-miss
/// clustering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemClass {
    /// Hot stack/local data: a tiny per-function region that always hits.
    Stack,
    /// Sequential array streaming with a fixed stride (misses once per
    /// cache line — clustered, regular misses).
    Stream,
    /// Uniform random references over the full data footprint
    /// (pointer-chasing-like isolated misses).
    Random,
}

/// Instruction-mix targets, as fractions of dynamic instructions.
///
/// The remainder after all listed classes is emitted as plain integer
/// ALU operations. Fractions are approximate targets: control-flow
/// structure (one branch per basic block) quantizes the realized mix.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixSpec {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
    /// Fraction of FP adds.
    pub fp_add: f64,
    /// Fraction of FP multiplies.
    pub fp_mul: f64,
    /// Fraction of FP divides.
    pub fp_div: f64,
}

impl MixSpec {
    /// A typical integer-code mix: 25% loads, 10% stores, no FP.
    pub fn integer() -> Self {
        MixSpec {
            load: 0.25,
            store: 0.10,
            int_mul: 0.01,
            int_div: 0.0,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
        }
    }

    /// Sum of all non-ALU fractions (must stay below 1.0).
    pub fn non_alu_total(&self) -> f64 {
        self.load
            + self.store
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
    }
}

/// Statistical description of one synthetic benchmark.
///
/// The twelve `SPECint2000`-named constructors ([`BenchmarkSpec::gzip`],
/// [`BenchmarkSpec::mcf`], …) return calibrated presets;
/// [`all`](BenchmarkSpec::all) returns them in the paper's usual order.
/// All fields are public so studies can perturb individual knobs.
///
/// The presets were calibrated by measuring each generated stream with
/// the functional toolchain (`fosm-bench`'s `calibrate` binary) until
/// the extracted model inputs — power-law α and β, average latency `L`,
/// misprediction and cache-miss rates — land in the ranges the paper
/// reports (Table 1 pins gzip/vortex/vpr; §5–6 pin the qualitative
/// ordering of the rest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkSpec {
    /// Benchmark name used in reports ("gzip", …).
    pub name: String,
    /// Seed for building the *static* program, so a given spec always
    /// produces the same code layout regardless of the dynamic seed.
    pub program_seed: u64,

    // ---- dependence structure (controls the IW power law) ----
    /// Probability that a source operand reads a long-lived value
    /// (constant, loop invariant, stack pointer) and therefore creates
    /// *no* dependence on recent producers. Higher values raise ILP.
    pub no_dep_p: f64,
    /// Probability that a dependent source reads the most recent
    /// producer (tight-chain probability). Higher values mean longer
    /// dependence chains, lower ILP, and a smaller power-law `β`.
    pub dep_chain_p: f64,
    /// Number of recent producers a non-chain operand may read from
    /// (uniformly). Larger windows raise ILP.
    pub dep_window: u32,
    /// Probability that an ALU instruction has two source operands
    /// (instead of one).
    pub two_source_p: f64,

    // ---- instruction mix ----
    /// Dynamic mix targets.
    pub mix: MixSpec,

    // ---- program shape (controls code footprint / I-cache) ----
    /// Number of functions in the static program.
    pub num_functions: u32,
    /// Basic blocks per function.
    pub blocks_per_function: u32,
    /// Mean instructions per basic block (geometric, min 1).
    pub insts_per_block_mean: u32,
    /// Fraction of blocks that are loop bodies.
    pub frac_loop_blocks: f64,
    /// Fraction of blocks that end in a call.
    pub frac_call_blocks: f64,
    /// Fraction of blocks that end in a conditional forward skip.
    pub frac_skip_blocks: f64,
    /// Maximum dynamic call depth (calls beyond it are elided).
    pub max_call_depth: u32,

    // ---- branch behaviour ----
    /// Mean loop trip count (per-loop static trips drawn around this).
    pub loop_trip_mean: u32,
    /// Probability that a loop entry re-draws its trip count instead of
    /// using the loop's static trip (jitter makes loop exits
    /// mispredictable).
    pub trip_jitter_p: f64,
    /// Fraction of skip branches that are data-dependent ("hard").
    pub frac_hard_branches: f64,
    /// Taken-probability magnitude of hard branches (closer to 0.5 =
    /// harder).
    pub hard_branch_bias: f64,
    /// Fraction of skip branches that follow a deterministic periodic
    /// pattern — history-correlated behaviour a gshare-class predictor
    /// can learn (real codes are full of these; without them global
    /// history would only add table fragmentation).
    pub frac_pattern_branches: f64,

    // ---- data behaviour (controls D-cache) ----
    /// Total data footprint in bytes (streams + random region).
    pub data_footprint: u64,
    /// Per-function hot stack region size in bytes.
    pub stack_bytes: u64,
    /// Fraction of memory instructions classified [`MemClass::Stream`].
    pub f_mem_stream: f64,
    /// Fraction of memory instructions classified [`MemClass::Random`].
    pub f_mem_random: f64,
    /// Stride in bytes of streaming accesses.
    pub stream_stride: u32,
    /// Number of concurrent array streams.
    pub num_streams: u32,
}

impl BenchmarkSpec {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first violated
    /// constraint (probabilities out of range, empty program, mix
    /// overflow).
    pub fn validate(&self) -> Result<(), String> {
        let probs = [
            ("no_dep_p", self.no_dep_p),
            ("dep_chain_p", self.dep_chain_p),
            ("two_source_p", self.two_source_p),
            ("frac_loop_blocks", self.frac_loop_blocks),
            ("frac_call_blocks", self.frac_call_blocks),
            ("frac_skip_blocks", self.frac_skip_blocks),
            ("trip_jitter_p", self.trip_jitter_p),
            ("frac_hard_branches", self.frac_hard_branches),
            ("hard_branch_bias", self.hard_branch_bias),
            ("frac_pattern_branches", self.frac_pattern_branches),
            ("f_mem_stream", self.f_mem_stream),
            ("f_mem_random", self.f_mem_random),
        ];
        for (name, p) in probs {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        if self.frac_loop_blocks + self.frac_call_blocks + self.frac_skip_blocks > 1.0 {
            return Err("block-kind fractions exceed 1.0".to_string());
        }
        if self.frac_hard_branches + self.frac_pattern_branches > 1.0 {
            return Err("skip-branch kind fractions exceed 1.0".to_string());
        }
        if self.f_mem_stream + self.f_mem_random > 1.0 {
            return Err("memory-class fractions exceed 1.0".to_string());
        }
        if self.mix.non_alu_total() >= 1.0 {
            return Err("instruction mix leaves no room for ALU ops".to_string());
        }
        if self.num_functions == 0 || self.blocks_per_function == 0 {
            return Err("program must have at least one function and block".to_string());
        }
        if self.insts_per_block_mean == 0 {
            return Err("blocks must average at least one instruction".to_string());
        }
        if self.dep_window == 0 {
            return Err("dep_window must be at least 1".to_string());
        }
        if self.loop_trip_mean < 2 {
            return Err("loop_trip_mean must be at least 2".to_string());
        }
        if self.stream_stride == 0 || self.num_streams == 0 {
            return Err("streams need a non-zero stride and count".to_string());
        }
        if self.data_footprint < 4096 || self.stack_bytes == 0 {
            return Err("data footprint must be >= 4096 and stack non-empty".to_string());
        }
        Ok(())
    }

    /// A middle-of-the-road template the named presets are tweaked from.
    fn base(name: &str, program_seed: u64) -> Self {
        BenchmarkSpec {
            name: name.to_string(),
            program_seed,
            no_dep_p: 0.4,
            dep_chain_p: 0.18,
            dep_window: 48,
            two_source_p: 0.55,
            mix: MixSpec::integer(),
            num_functions: 24,
            blocks_per_function: 16,
            insts_per_block_mean: 6,
            frac_loop_blocks: 0.25,
            frac_call_blocks: 0.15,
            frac_skip_blocks: 0.4,
            max_call_depth: 8,
            loop_trip_mean: 10,
            trip_jitter_p: 0.25,
            frac_hard_branches: 0.12,
            hard_branch_bias: 0.8,
            frac_pattern_branches: 0.45,
            data_footprint: 1 << 20, // 1 MiB
            stack_bytes: 512,
            f_mem_stream: 0.15,
            f_mem_random: 0.04,
            stream_stride: 8,
            num_streams: 4,
        }
    }

    /// `gzip` — compression: tight loops, small code, streaming data,
    /// mid-range ILP (paper Table 1: α=1.3, β=0.5, L=1.5), and the
    /// paper's highest branch-misprediction CPI share.
    pub fn gzip() -> Self {
        let mut s = Self::base("gzip", 0x67_7a_69_70);
        s.no_dep_p = 0.25;
        s.dep_chain_p = 0.3;
        s.dep_window = 32;
        s.num_functions = 10;
        s.blocks_per_function = 12;
        s.frac_hard_branches = 0.22;
        s.hard_branch_bias = 0.72;
        s.frac_pattern_branches = 0.2;
        s.trip_jitter_p = 0.3;
        s.loop_trip_mean = 14;
        s.data_footprint = 480 << 10;
        s.f_mem_stream = 0.28;
        s.f_mem_random = 0.015;
        s.mix.int_mul = 0.02;
        s
    }

    /// `vortex` — object database: high ILP (β=0.7), big code footprint
    /// (I-cache misses), very few long data misses.
    pub fn vortex() -> Self {
        let mut s = Self::base("vortex", 0x76_6f_72_74);
        s.no_dep_p = 0.45;
        s.dep_chain_p = 0.08;
        s.dep_window = 96;
        s.two_source_p = 0.4;
        s.num_functions = 96;
        s.blocks_per_function = 24;
        s.insts_per_block_mean = 11;
        s.frac_call_blocks = 0.3;
        s.frac_skip_blocks = 0.25;
        s.frac_loop_blocks = 0.06;
        s.frac_hard_branches = 0.02;
        s.frac_pattern_branches = 0.1;
        s.trip_jitter_p = 0.1;
        s.loop_trip_mean = 18;
        s.data_footprint = 320 << 10; // fits L2: short misses only
        s.f_mem_stream = 0.12;
        s.f_mem_random = 0.06;
        s.mix.int_mul = 0.03;
        s
    }

    /// `vpr` — place & route: long dependence chains (β=0.3), high
    /// average latency (L≈2.2 — FP distance computations), hard
    /// branches.
    pub fn vpr() -> Self {
        let mut s = Self::base("vpr", 0x76_70_72);
        s.no_dep_p = 0.12;
        s.dep_chain_p = 0.5;
        s.dep_window = 12;
        s.two_source_p = 0.7;
        s.num_functions = 14;
        s.blocks_per_function = 14;
        s.frac_hard_branches = 0.24;
        s.hard_branch_bias = 0.72;
        s.frac_pattern_branches = 0.15;
        s.loop_trip_mean = 12;
        s.mix.fp_add = 0.1;
        s.mix.fp_mul = 0.12;
        s.mix.fp_div = 0.01;
        s.mix.int_mul = 0.05;
        s.mix.int_div = 0.003;
        s.data_footprint = 2 << 20;
        s.f_mem_stream = 0.12;
        s.f_mem_random = 0.04;
        s
    }

    /// `mcf` — single-source shortest paths over a huge graph: dominated
    /// by long data-cache misses (70% of CPI in the paper), pointer
    /// chasing over a footprint far beyond L2.
    pub fn mcf() -> Self {
        let mut s = Self::base("mcf", 0x6d_63_66);
        s.no_dep_p = 0.18;
        s.dep_chain_p = 0.4;
        s.dep_window = 20;
        s.num_functions = 8;
        s.blocks_per_function = 10;
        s.mix.load = 0.3;
        s.data_footprint = 24 << 20; // 24 MiB
        s.f_mem_stream = 0.08;
        s.f_mem_random = 0.18;
        s.frac_hard_branches = 0.16;
        s.hard_branch_bias = 0.75;
        s.frac_pattern_branches = 0.15;
        s.loop_trip_mean = 16;
        s
    }

    /// `twolf` — placement/routing: long data misses (60% of CPI) plus
    /// frequent hard branches; modest code.
    pub fn twolf() -> Self {
        let mut s = Self::base("twolf", 0x74_77_6f_6c);
        s.no_dep_p = 0.15;
        s.dep_chain_p = 0.45;
        s.dep_window = 16;
        s.two_source_p = 0.65;
        s.num_functions = 18;
        s.blocks_per_function = 14;
        s.frac_hard_branches = 0.22;
        s.hard_branch_bias = 0.72;
        s.frac_pattern_branches = 0.15;
        s.loop_trip_mean = 12;
        s.data_footprint = 8 << 20;
        s.f_mem_stream = 0.1;
        s.f_mem_random = 0.08;
        s.mix.int_mul = 0.04;
        s
    }

    /// `gcc` — compiler: very large code footprint (I-cache misses
    /// dominate), branchy, moderate data locality.
    pub fn gcc() -> Self {
        let mut s = Self::base("gcc", 0x67_63_63);
        s.no_dep_p = 0.25;
        s.dep_chain_p = 0.28;
        s.dep_window = 32;
        s.num_functions = 160;
        s.blocks_per_function = 24;
        s.insts_per_block_mean = 9;
        s.frac_call_blocks = 0.25;
        s.frac_skip_blocks = 0.3;
        s.frac_loop_blocks = 0.05;
        s.loop_trip_mean = 18;
        s.frac_hard_branches = 0.08;
        s.frac_pattern_branches = 0.1;
        s.data_footprint = 1 << 20;
        s.f_mem_stream = 0.1;
        s.f_mem_random = 0.02;
        s
    }

    /// `crafty` — chess: big code, hash-table randomness within L2,
    /// predictable search branches mixed with hard evaluation branches.
    pub fn crafty() -> Self {
        let mut s = Self::base("crafty", 0x63_72_61_66);
        s.no_dep_p = 0.32;
        s.dep_chain_p = 0.18;
        s.dep_window = 48;
        s.two_source_p = 0.5;
        s.num_functions = 72;
        s.blocks_per_function = 20;
        s.insts_per_block_mean = 10;
        s.frac_call_blocks = 0.22;
        s.frac_skip_blocks = 0.3;
        s.frac_loop_blocks = 0.07;
        s.loop_trip_mean = 18;
        s.frac_hard_branches = 0.08;
        s.hard_branch_bias = 0.75;
        s.frac_pattern_branches = 0.1;
        s.data_footprint = 1536 << 10; // 1.5 MiB hash tables
        s.f_mem_stream = 0.1;
        s.f_mem_random = 0.02;
        s.mix.int_mul = 0.03;
        s
    }

    /// `eon` — ray tracing (the one C++/FP-ish SPECint member): high
    /// ILP, FP latencies, tiny data footprint, predictable branches.
    pub fn eon() -> Self {
        let mut s = Self::base("eon", 0x65_6f_6e);
        s.no_dep_p = 0.38;
        s.dep_chain_p = 0.14;
        s.dep_window = 64;
        s.two_source_p = 0.5;
        s.num_functions = 56;
        s.blocks_per_function = 18;
        s.insts_per_block_mean = 10;
        s.frac_call_blocks = 0.25;
        s.frac_skip_blocks = 0.3;
        s.frac_loop_blocks = 0.08;
        s.loop_trip_mean = 18;
        s.frac_hard_branches = 0.03;
        s.frac_pattern_branches = 0.15;
        s.trip_jitter_p = 0.1;
        s.mix.fp_add = 0.09;
        s.mix.fp_mul = 0.08;
        s.mix.fp_div = 0.004;
        s.data_footprint = 256 << 10;
        s.f_mem_stream = 0.25;
        s.f_mem_random = 0.02;
        s
    }

    /// `gap` — group theory: computation over large workspaces,
    /// clustered long misses, mostly predictable branches.
    pub fn gap() -> Self {
        let mut s = Self::base("gap", 0x67_61_70);
        s.no_dep_p = 0.26;
        s.dep_chain_p = 0.26;
        s.dep_window = 36;
        s.num_functions = 48;
        s.blocks_per_function = 18;
        s.insts_per_block_mean = 9;
        s.frac_call_blocks = 0.2;
        s.frac_skip_blocks = 0.3;
        s.frac_loop_blocks = 0.1;
        s.frac_hard_branches = 0.04;
        s.frac_pattern_branches = 0.15;
        s.loop_trip_mean = 16;
        s.data_footprint = 4 << 20;
        s.f_mem_stream = 0.15;
        s.f_mem_random = 0.008;
        s.mix.int_mul = 0.04;
        s
    }

    /// `parser` — natural-language parsing: pointer-heavy dictionary
    /// lookups, hard branches, moderate footprint.
    pub fn parser() -> Self {
        let mut s = Self::base("parser", 0x70_61_72_73);
        s.no_dep_p = 0.17;
        s.dep_chain_p = 0.4;
        s.dep_window = 20;
        s.num_functions = 40;
        s.blocks_per_function = 16;
        s.frac_hard_branches = 0.16;
        s.hard_branch_bias = 0.74;
        s.frac_pattern_branches = 0.15;
        s.loop_trip_mean = 14;
        s.data_footprint = 3 << 20;
        s.f_mem_stream = 0.08;
        s.f_mem_random = 0.03;
        s
    }

    /// `perl` — interpreter: very large code, call fan-out, data mostly
    /// resident.
    pub fn perl() -> Self {
        let mut s = Self::base("perl", 0x70_65_72_6c);
        s.no_dep_p = 0.26;
        s.dep_chain_p = 0.26;
        s.dep_window = 36;
        s.num_functions = 112;
        s.blocks_per_function = 20;
        s.insts_per_block_mean = 10;
        s.frac_call_blocks = 0.3;
        s.frac_skip_blocks = 0.28;
        s.frac_loop_blocks = 0.06;
        s.loop_trip_mean = 18;
        s.frac_hard_branches = 0.06;
        s.frac_pattern_branches = 0.1;
        s.data_footprint = 448 << 10;
        s.f_mem_stream = 0.12;
        s.f_mem_random = 0.02;
        s
    }

    /// `bzip2` — compression: streaming with a bigger working set than
    /// gzip, mid ILP, few I-cache misses.
    pub fn bzip() -> Self {
        let mut s = Self::base("bzip", 0x62_7a_69_70);
        s.no_dep_p = 0.22;
        s.dep_chain_p = 0.3;
        s.dep_window = 32;
        s.num_functions = 10;
        s.blocks_per_function = 12;
        s.frac_hard_branches = 0.15;
        s.hard_branch_bias = 0.76;
        s.frac_pattern_branches = 0.2;
        s.trip_jitter_p = 0.25;
        s.loop_trip_mean = 16;
        s.data_footprint = 4 << 20;
        s.f_mem_stream = 0.12;
        s.f_mem_random = 0.006;
        s.mix.int_mul = 0.02;
        s
    }

    /// All twelve benchmarks in the paper's customary order.
    pub fn all() -> Vec<BenchmarkSpec> {
        vec![
            Self::bzip(),
            Self::crafty(),
            Self::eon(),
            Self::gap(),
            Self::gcc(),
            Self::gzip(),
            Self::mcf(),
            Self::parser(),
            Self::perl(),
            Self::twolf(),
            Self::vortex(),
            Self::vpr(),
        ]
    }

    /// The three benchmarks the paper uses to illustrate Table 1 and
    /// Fig. 5 (curve extremes plus the middle): vortex, gzip, vpr.
    pub fn illustrative() -> Vec<BenchmarkSpec> {
        vec![Self::vortex(), Self::gzip(), Self::vpr()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for spec in BenchmarkSpec::all() {
            spec.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", spec.name));
        }
    }

    #[test]
    fn all_returns_twelve_unique_names() {
        let specs = BenchmarkSpec::all();
        assert_eq!(specs.len(), 12);
        let mut names: Vec<_> = specs.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn validate_catches_bad_probability() {
        let mut s = BenchmarkSpec::gzip();
        s.dep_chain_p = 1.5;
        assert!(s.validate().unwrap_err().contains("dep_chain_p"));
        let mut s = BenchmarkSpec::gzip();
        s.no_dep_p = -0.1;
        assert!(s.validate().unwrap_err().contains("no_dep_p"));
    }

    #[test]
    fn validate_catches_mix_overflow() {
        let mut s = BenchmarkSpec::gzip();
        s.mix.load = 0.95;
        s.mix.store = 0.2;
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_catches_block_fraction_overflow() {
        let mut s = BenchmarkSpec::gzip();
        s.frac_loop_blocks = 0.5;
        s.frac_call_blocks = 0.4;
        s.frac_skip_blocks = 0.4;
        assert!(s.validate().unwrap_err().contains("block-kind"));
    }

    #[test]
    fn validate_catches_degenerate_program() {
        let mut s = BenchmarkSpec::gzip();
        s.num_functions = 0;
        assert!(s.validate().is_err());
        let mut s = BenchmarkSpec::gzip();
        s.dep_window = 0;
        assert!(s.validate().is_err());
        let mut s = BenchmarkSpec::gzip();
        s.loop_trip_mean = 1;
        assert!(s.validate().is_err());
    }

    #[test]
    fn dependence_knobs_span_the_table1_range() {
        // vpr must be chain-ier than gzip, which is chain-ier than vortex.
        let (vpr, gzip, vortex) = (
            BenchmarkSpec::vpr(),
            BenchmarkSpec::gzip(),
            BenchmarkSpec::vortex(),
        );
        assert!(vpr.dep_chain_p > gzip.dep_chain_p);
        assert!(gzip.dep_chain_p > vortex.dep_chain_p);
        assert!(vortex.no_dep_p > vpr.no_dep_p);
        assert!(vortex.dep_window > gzip.dep_window);
    }

    #[test]
    fn mcf_has_the_biggest_footprint() {
        let max_other = BenchmarkSpec::all()
            .into_iter()
            .filter(|s| s.name != "mcf")
            .map(|s| s.data_footprint)
            .max()
            .unwrap();
        assert!(BenchmarkSpec::mcf().data_footprint > max_other);
    }
}
