//! The dynamic trace generator walking a [`SyntheticProgram`].

use std::collections::{HashMap, VecDeque};

use fosm_isa::{Inst, Op, Reg};
use fosm_trace::TraceSource;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::program::{geometric, Terminator};
use crate::{BenchmarkSpec, MemClass, SyntheticProgram};

/// Base of the heap/data segment addresses.
const DATA_BASE: u64 = 0x1000_0000;
/// Base of the per-function stack regions.
const STACK_BASE: u64 = 0x7fff_0000_0000;
/// Destination registers rotate through this range (the rest are
/// implicitly "special": zero/stack/assembler temporaries).
const DEST_LO: u8 = 8;
const DEST_HI: u8 = 55;

/// A call-stack frame: where to resume in the caller.
#[derive(Debug, Clone, Copy)]
struct Frame {
    func: usize,
    block: usize,
}

/// Deterministic dynamic instruction stream for one benchmark.
///
/// `WorkloadGenerator` executes a [`SyntheticProgram`]: it walks blocks,
/// iterates loops, follows calls (bounded depth), and cycles through the
/// program's top-level functions forever — the stream is unbounded.
/// Bound it with [`TraceSource::take`].
///
/// Register operands are drawn to match the spec's dependence-distance
/// structure; memory addresses follow each static instruction's access
/// class; branch outcomes follow each static branch's taken
/// probability. Everything is deterministic in `(spec, seed)`.
///
/// # Examples
///
/// ```
/// use fosm_trace::TraceSource;
/// use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
///
/// let spec = BenchmarkSpec::vpr();
/// let a: Vec<_> = WorkloadGenerator::new(&spec, 1).take(100).iter().collect();
/// let b: Vec<_> = WorkloadGenerator::new(&spec, 1).take(100).iter().collect();
/// assert_eq!(a, b); // same spec + seed -> identical stream
/// ```
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    program: SyntheticProgram,
    spec: BenchmarkSpec,
    rng: SmallRng,

    // control state
    cur_func: usize,
    cur_block: usize,
    stack: Vec<Frame>,
    loop_remaining: Option<u32>,
    top_cursor: usize,

    // dataflow state
    recent_producers: VecDeque<Reg>,
    next_dest: u8,

    // memory state
    stream_pos: Vec<u64>,

    // per-static-branch pattern phase (keyed by terminator PC)
    skip_phase: HashMap<u64, u32>,

    // output buffer (one block's worth at a time)
    pending: VecDeque<Inst>,
}

impl WorkloadGenerator {
    /// Builds the program for `spec` and prepares a walker seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the spec fails [`BenchmarkSpec::validate`]; use
    /// [`WorkloadGenerator::try_new`] to handle invalid specs.
    pub fn new(spec: &BenchmarkSpec, seed: u64) -> Self {
        Self::try_new(spec, seed).expect("invalid benchmark spec")
    }

    /// Fallible constructor.
    ///
    /// # Errors
    ///
    /// Returns the validation message if `spec` is inconsistent.
    pub fn try_new(spec: &BenchmarkSpec, seed: u64) -> Result<Self, String> {
        let program = SyntheticProgram::build(spec)?;
        Ok(WorkloadGenerator {
            spec: spec.clone(),
            rng: SmallRng::seed_from_u64(seed ^ 0x5eed_0f05),
            cur_func: 0,
            cur_block: 0,
            stack: Vec::new(),
            loop_remaining: None,
            top_cursor: 0,
            recent_producers: VecDeque::with_capacity(spec.dep_window as usize),
            next_dest: DEST_LO,
            stream_pos: vec![0; spec.num_streams as usize],
            skip_phase: HashMap::new(),
            pending: VecDeque::new(),
            program,
        })
    }

    /// The static program this generator is executing.
    pub fn program(&self) -> &SyntheticProgram {
        &self.program
    }

    /// The benchmark spec this generator was built from.
    pub fn spec(&self) -> &BenchmarkSpec {
        &self.spec
    }

    fn alloc_dest(&mut self) -> Reg {
        let r = Reg::new(self.next_dest);
        self.next_dest = if self.next_dest >= DEST_HI {
            DEST_LO
        } else {
            self.next_dest + 1
        };
        r
    }

    fn note_producer(&mut self, r: Reg) {
        if self.recent_producers.len() == self.spec.dep_window as usize {
            self.recent_producers.pop_back();
        }
        self.recent_producers.push_front(r);
    }

    fn pick_source(&mut self) -> Option<Reg> {
        if self.recent_producers.is_empty() {
            return None;
        }
        // Long-lived values (constants, loop invariants, stack/global
        // pointers) create no dependence on recent producers.
        if self.rng.gen::<f64>() < self.spec.no_dep_p {
            return None;
        }
        let idx = if self.rng.gen::<f64>() < self.spec.dep_chain_p {
            0 // the most recent producer: a tight chain
        } else {
            self.rng.gen_range(0..self.recent_producers.len())
        };
        self.recent_producers.get(idx).copied()
    }

    fn mem_addr(&mut self, class: MemClass, stream: u32) -> u64 {
        match class {
            MemClass::Stack => {
                let base = STACK_BASE + self.cur_func as u64 * self.spec.stack_bytes;
                base + (self.rng.gen_range(0..self.spec.stack_bytes) & !7)
            }
            MemClass::Stream => {
                let share = (self.spec.data_footprint / self.spec.num_streams as u64).max(64);
                let s = stream as usize;
                let addr = DATA_BASE + stream as u64 * share + self.stream_pos[s];
                self.stream_pos[s] = (self.stream_pos[s] + self.spec.stream_stride as u64) % share;
                addr
            }
            MemClass::Random => DATA_BASE + (self.rng.gen_range(0..self.spec.data_footprint) & !7),
        }
    }

    /// Executes the current block, appending its dynamic instructions to
    /// `pending` and advancing control state.
    fn run_block(&mut self) {
        let (body, term, block_pc, term_pc) = {
            let block = &self.program.functions[self.cur_func].blocks[self.cur_block];
            (block.body.clone(), block.term, block.pc, block.term_pc())
        };

        // Body instructions.
        for (i, sinst) in body.iter().enumerate() {
            let pc = block_pc + i as u64 * 4;
            let inst = match sinst.op {
                Op::Load => {
                    let (class, stream) = sinst.mem.expect("loads carry a mem class");
                    let addr = self.mem_addr(class, stream);
                    let base = self.pick_source();
                    let dest = self.alloc_dest();
                    let inst = Inst::load(pc, dest, base, addr);
                    self.note_producer(dest);
                    inst
                }
                Op::Store => {
                    let (class, stream) = sinst.mem.expect("stores carry a mem class");
                    let addr = self.mem_addr(class, stream);
                    let value = self.pick_source().unwrap_or(Reg::new(DEST_LO));
                    let base = self.pick_source();
                    Inst::store(pc, value, base, addr)
                }
                op => {
                    let src1 = self.pick_source();
                    let src2 = if self.rng.gen::<f64>() < self.spec.two_source_p {
                        self.pick_source()
                    } else {
                        None
                    };
                    let dest = self.alloc_dest();
                    let inst = Inst::alu(pc, op, dest, src1, src2);
                    self.note_producer(dest);
                    inst
                }
            };
            self.pending.push_back(inst);
        }

        // Terminator + control transfer.
        match term {
            Terminator::FallThrough => {
                self.cur_block += 1;
            }
            Terminator::Loop { trips } => {
                let remaining = match self.loop_remaining {
                    Some(r) => r,
                    None => {
                        // Fresh entry: maybe jitter the trip count.
                        if self.rng.gen::<f64>() < self.spec.trip_jitter_p {
                            geometric(&mut self.rng, self.spec.loop_trip_mean as f64)
                                .clamp(2, 4 * self.spec.loop_trip_mean as u64)
                                as u32
                        } else {
                            trips
                        }
                    }
                };
                let cond = self.pick_source();
                if remaining > 1 {
                    self.loop_remaining = Some(remaining - 1);
                    self.pending.push_back(Inst::branch(
                        term_pc,
                        Op::CondBranch,
                        cond,
                        true,
                        block_pc,
                    ));
                    // stay on this block
                } else {
                    self.loop_remaining = None;
                    self.pending.push_back(Inst::branch(
                        term_pc,
                        Op::CondBranch,
                        cond,
                        false,
                        term_pc + 4,
                    ));
                    self.cur_block += 1;
                }
            }
            Terminator::Skip {
                p_taken, period, ..
            } => {
                let taken = if period > 0 {
                    let phase = self.skip_phase.entry(term_pc).or_insert(0);
                    let t = *phase == period - 1;
                    *phase = (*phase + 1) % period;
                    t
                } else {
                    self.rng.gen::<f64>() < p_taken
                };
                let cond = self.pick_source();
                let nblocks = self.program.functions[self.cur_func].blocks.len();
                let next = if taken {
                    (self.cur_block + 2).min(nblocks - 1)
                } else {
                    self.cur_block + 1
                };
                let target = if taken {
                    self.program.functions[self.cur_func].blocks[next].pc
                } else {
                    term_pc + 4
                };
                self.pending
                    .push_back(Inst::branch(term_pc, Op::CondBranch, cond, taken, target));
                self.cur_block = next;
            }
            Terminator::Call { callee } => {
                let callee = callee as usize;
                if self.stack.len() < self.spec.max_call_depth as usize {
                    let target = self.program.functions[callee].entry_pc();
                    self.pending
                        .push_back(Inst::branch(term_pc, Op::Call, None, true, target));
                    self.stack.push(Frame {
                        func: self.cur_func,
                        block: self.cur_block + 1,
                    });
                    self.cur_func = callee;
                    self.cur_block = 0;
                } else {
                    // Depth limit: elide the call, continue straight.
                    self.cur_block += 1;
                }
            }
            Terminator::Return => {
                let (target, func, block) = match self.stack.pop() {
                    Some(frame) => {
                        let f = &self.program.functions[frame.func];
                        (f.blocks[frame.block].pc, frame.func, frame.block)
                    }
                    None => {
                        // Top level: cycle to the next function.
                        self.top_cursor = (self.top_cursor + 1) % self.program.functions.len();
                        let f = &self.program.functions[self.top_cursor];
                        (f.entry_pc(), self.top_cursor, 0)
                    }
                };
                let cond = self.pick_source();
                self.pending
                    .push_back(Inst::branch(term_pc, Op::Return, cond, true, target));
                self.cur_func = func;
                self.cur_block = block;
            }
        }
    }
}

impl TraceSource for WorkloadGenerator {
    fn next_inst(&mut self) -> Option<Inst> {
        while self.pending.is_empty() {
            self.run_block();
        }
        self.pending.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::CODE_BASE;
    use fosm_trace::TraceStats;

    fn sample(spec: &BenchmarkSpec, n: usize) -> Vec<Inst> {
        let mut g = WorkloadGenerator::new(spec, 99);
        g.take(n as u64).iter().collect()
    }

    #[test]
    fn stream_is_unbounded_and_well_formed() {
        let insts = sample(&BenchmarkSpec::gzip(), 50_000);
        assert_eq!(insts.len(), 50_000);
        for i in &insts {
            assert!(i.is_well_formed(), "{i}");
        }
    }

    #[test]
    fn determinism_per_seed_and_divergence_across_seeds() {
        let spec = BenchmarkSpec::mcf();
        let a: Vec<_> = WorkloadGenerator::new(&spec, 5).take(2000).iter().collect();
        let b: Vec<_> = WorkloadGenerator::new(&spec, 5).take(2000).iter().collect();
        let c: Vec<_> = WorkloadGenerator::new(&spec, 6).take(2000).iter().collect();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn pcs_stay_within_the_static_code_segment() {
        let spec = BenchmarkSpec::vortex();
        let g = WorkloadGenerator::new(&spec, 3);
        let hi = CODE_BASE + g.program().code_bytes();
        let insts = sample(&spec, 20_000);
        for i in &insts {
            assert!(
                i.pc >= CODE_BASE && i.pc < hi,
                "pc {:#x} out of code segment",
                i.pc
            );
        }
    }

    #[test]
    fn branch_targets_match_the_next_pc() {
        // The defining property of a consistent trace: after a branch,
        // execution continues at its recorded target; after any other
        // instruction, at pc+4 *unless* the block falls through (gaps
        // are only allowed to be forward and small).
        let insts = sample(&BenchmarkSpec::gzip(), 10_000);
        for w in insts.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            if let Some(info) = a.branch {
                assert_eq!(
                    b.pc, info.target,
                    "branch at {:#x} lied about its target",
                    a.pc
                );
            }
        }
    }

    #[test]
    fn mix_approximates_spec() {
        let spec = BenchmarkSpec::gzip();
        let mut g = WorkloadGenerator::new(&spec, 11);
        let stats = TraceStats::from_source(&mut g.take(200_000), usize::MAX);
        let loads = stats.load_fraction();
        // Terminator branches dilute the body mix (MixSpec documents
        // the fractions as approximate targets), so allow a wide band.
        assert!(
            loads > 0.5 * spec.mix.load && loads < 1.2 * spec.mix.load,
            "load fraction {loads} vs target {}",
            spec.mix.load
        );
        // Roughly one conditional branch per 4-8 instructions ("one of
        // five instructions is a branch", paper §6.1).
        let bf = stats.branch_fraction();
        assert!((0.05..0.35).contains(&bf), "branch fraction {bf}");
    }

    #[test]
    fn dependences_are_tighter_for_vpr_than_vortex() {
        let mut vpr = WorkloadGenerator::new(&BenchmarkSpec::vpr(), 1);
        let mut vortex = WorkloadGenerator::new(&BenchmarkSpec::vortex(), 1);
        let s_vpr = TraceStats::from_source(&mut vpr.take(100_000), usize::MAX);
        let s_vortex = TraceStats::from_source(&mut vortex.take(100_000), usize::MAX);
        assert!(
            s_vpr.dependences().mean() < s_vortex.dependences().mean(),
            "vpr mean dist {} should be below vortex {}",
            s_vpr.dependences().mean(),
            s_vortex.dependences().mean()
        );
    }

    #[test]
    fn loops_actually_iterate() {
        // Consecutive dynamic instructions at the same PC within a short
        // window imply loop iteration.
        let insts = sample(&BenchmarkSpec::gap(), 20_000);
        let mut taken_backward = 0;
        for i in &insts {
            if let Some(b) = i.branch {
                if b.taken && b.target < i.pc {
                    taken_backward += 1;
                }
            }
        }
        assert!(
            taken_backward > 100,
            "expected loop back-edges, got {taken_backward}"
        );
    }

    #[test]
    fn memory_addresses_respect_segments() {
        let spec = BenchmarkSpec::twolf();
        let insts = sample(&spec, 30_000);
        for i in &insts {
            if let Some(addr) = i.mem_addr {
                let in_data = (DATA_BASE..DATA_BASE + spec.data_footprint + spec.data_footprint)
                    .contains(&addr);
                let in_stack = addr >= STACK_BASE;
                assert!(
                    in_data || in_stack,
                    "address {addr:#x} outside data segments"
                );
            }
        }
    }

    #[test]
    fn try_new_rejects_invalid_spec() {
        let mut spec = BenchmarkSpec::gzip();
        spec.f_mem_stream = 0.9;
        spec.f_mem_random = 0.9;
        assert!(WorkloadGenerator::try_new(&spec, 0).is_err());
    }

    #[test]
    fn call_depth_is_bounded() {
        // Track nesting via Call/Return balance; it must never exceed
        // max_call_depth.
        let spec = BenchmarkSpec::gcc();
        let insts = sample(&spec, 100_000);
        let mut depth: i64 = 0;
        let mut max_depth: i64 = 0;
        for i in &insts {
            match i.op {
                Op::Call => {
                    depth += 1;
                    max_depth = max_depth.max(depth);
                }
                Op::Return => depth -= 1,
                _ => {}
            }
        }
        assert!(
            max_depth <= spec.max_call_depth as i64,
            "observed depth {max_depth} > limit {}",
            spec.max_call_depth
        );
    }
}
