//! Phased workloads (paper §7: "it may be necessary to consider
//! program phases, and model each of them separately").
//!
//! Real programs alternate between behavioural phases (compute-bound
//! inner loops, pointer-chasing builds, I/O-ish bookkeeping).
//! [`PhasedGenerator`] composes two base workloads, switching between
//! them every `phase_len` instructions — each phase keeps its own
//! register, loop, and stream state, as if the program had switched
//! working modes.

use fosm_isa::Inst;
use fosm_trace::TraceSource;

use crate::{BenchmarkSpec, WorkloadGenerator};

/// A workload alternating between two phases.
///
/// # Examples
///
/// ```
/// use fosm_trace::TraceSource;
/// use fosm_workloads::{BenchmarkSpec, PhasedGenerator};
///
/// let mut gen = PhasedGenerator::new(
///     &BenchmarkSpec::gzip(),
///     &BenchmarkSpec::mcf(),
///     50_000,
///     42,
/// ).unwrap();
/// assert!(gen.next_inst().is_some());
/// ```
#[derive(Debug, Clone)]
pub struct PhasedGenerator {
    phases: [WorkloadGenerator; 2],
    phase_len: u64,
    emitted: u64,
}

impl PhasedGenerator {
    /// Builds a two-phase workload switching every `phase_len`
    /// instructions.
    ///
    /// # Errors
    ///
    /// Returns a message for invalid specs or a zero phase length.
    pub fn new(
        a: &BenchmarkSpec,
        b: &BenchmarkSpec,
        phase_len: u64,
        seed: u64,
    ) -> Result<Self, String> {
        if phase_len == 0 {
            return Err("phase length must be non-zero".into());
        }
        Ok(PhasedGenerator {
            phases: [
                WorkloadGenerator::try_new(a, seed)?,
                WorkloadGenerator::try_new(b, seed ^ 0x9e37_79b9)?,
            ],
            phase_len,
            emitted: 0,
        })
    }

    /// Which phase (0 or 1) the next instruction comes from.
    pub fn current_phase(&self) -> usize {
        ((self.emitted / self.phase_len) % 2) as usize
    }

    /// Instructions emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }
}

impl TraceSource for PhasedGenerator {
    fn next_inst(&mut self) -> Option<Inst> {
        let phase = self.current_phase();
        self.emitted += 1;
        self.phases[phase].next_inst()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_alternate_on_schedule() {
        let mut g =
            PhasedGenerator::new(&BenchmarkSpec::gzip(), &BenchmarkSpec::mcf(), 100, 1).unwrap();
        assert_eq!(g.current_phase(), 0);
        for _ in 0..100 {
            g.next_inst();
        }
        assert_eq!(g.current_phase(), 1);
        for _ in 0..100 {
            g.next_inst();
        }
        assert_eq!(g.current_phase(), 0);
        assert_eq!(g.emitted(), 200);
    }

    #[test]
    fn phase_instructions_come_from_their_generators() {
        // Phase 0 instructions match a solo gzip generator stream.
        let spec_a = BenchmarkSpec::gzip();
        let spec_b = BenchmarkSpec::mcf();
        let mut phased = PhasedGenerator::new(&spec_a, &spec_b, 50, 9).unwrap();
        let mut solo = WorkloadGenerator::new(&spec_a, 9);
        for _ in 0..50 {
            assert_eq!(phased.next_inst(), solo.next_inst());
        }
        // After the switch, instructions no longer match gzip's stream.
        let next_phased: Vec<_> = (0..50).filter_map(|_| phased.next_inst()).collect();
        let next_solo: Vec<_> = (0..50).filter_map(|_| solo.next_inst()).collect();
        assert_ne!(next_phased, next_solo);
    }

    #[test]
    fn determinism() {
        let mk =
            || PhasedGenerator::new(&BenchmarkSpec::gzip(), &BenchmarkSpec::vpr(), 77, 3).unwrap();
        let a: Vec<_> = (0..500).filter_map(|_| mk().next_inst()).collect();
        let mut g = mk();
        let b: Vec<_> = (0..500).filter_map(|_| g.next_inst()).collect();
        // Note: `a` rebuilt the generator each draw, so compare a fresh
        // pair properly instead.
        let mut g1 = mk();
        let mut g2 = mk();
        for _ in 0..500 {
            assert_eq!(g1.next_inst(), g2.next_inst());
        }
        let _ = (a, b);
    }

    #[test]
    fn rejects_zero_phase_length() {
        assert!(PhasedGenerator::new(&BenchmarkSpec::gzip(), &BenchmarkSpec::mcf(), 0, 1).is_err());
    }
}
