//! Property-based tests for the synthetic workload generators.

use fosm_trace::TraceSource;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
use proptest::prelude::*;

/// A benchmark spec with key knobs perturbed across their valid ranges.
fn spec_strategy() -> impl Strategy<Value = BenchmarkSpec> {
    (
        0.0f64..0.8,
        0.0f64..0.8,
        1u32..128,
        1u32..32,
        1u32..24,
        2u32..40,
        (4096u64..(8 << 20)),
        any::<u64>(),
    )
        .prop_map(
            |(no_dep, chain, window, funcs, blocks, trips, footprint, seed)| {
                let mut s = BenchmarkSpec::gzip();
                s.name = "property".into();
                s.no_dep_p = no_dep;
                s.dep_chain_p = chain;
                s.dep_window = window;
                s.num_functions = funcs;
                s.blocks_per_function = blocks;
                s.loop_trip_mean = trips;
                s.data_footprint = footprint;
                s.program_seed = seed;
                s
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated instruction is well-formed, for arbitrary valid
    /// knob settings.
    #[test]
    fn generated_streams_are_well_formed(spec in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(spec.validate().is_ok());
        let mut g = WorkloadGenerator::new(&spec, seed);
        for _ in 0..2_000 {
            let inst = g.next_inst().expect("generators are unbounded");
            prop_assert!(inst.is_well_formed(), "{inst}");
        }
    }

    /// Generation is deterministic in (spec, seed).
    #[test]
    fn generation_is_deterministic(spec in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(spec.validate().is_ok());
        let a: Vec<_> = WorkloadGenerator::new(&spec, seed).take(500).iter().collect();
        let b: Vec<_> = WorkloadGenerator::new(&spec, seed).take(500).iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Branch targets always point at the next emitted instruction.
    #[test]
    fn control_flow_is_consistent(spec in spec_strategy(), seed in any::<u64>()) {
        prop_assume!(spec.validate().is_ok());
        let insts: Vec<_> = WorkloadGenerator::new(&spec, seed).take(1_500).iter().collect();
        for pair in insts.windows(2) {
            if let Some(info) = pair[0].branch {
                prop_assert_eq!(pair[1].pc, info.target);
            }
        }
    }
}
