//! Minimal flag parsing (positional arguments plus `--flag value`
//! pairs) — enough for this tool without pulling in a CLI framework.

use std::collections::BTreeMap;
use std::str::FromStr;

/// Flags that take no value (`--ideal` style).
const BOOLEAN_FLAGS: &[&str] = &[
    "ideal",
    "fu",
    "check",
    "statsim",
    "frontier",
    "local",
    "seq",
    "verify",
    "once",
    "json",
    "no-telemetry",
];

/// Parsed command-line arguments: positionals in order, flags by name.
#[derive(Debug, Clone, Default)]
pub struct Parsed {
    positional: Vec<String>,
    flags: BTreeMap<String, String>,
}

impl Parsed {
    /// Splits `args` into positionals and `--flag value` pairs
    /// (`-o` is accepted as an alias for `--out`).
    pub fn new(args: &[String]) -> Result<Self, String> {
        let mut parsed = Parsed::default();
        let mut iter = args.iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&name) {
                    parsed.flags.insert(name.to_string(), "true".into());
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                parsed.flags.insert(name.to_string(), value.clone());
            } else if arg == "-o" {
                let value = iter.next().ok_or("flag -o needs a value")?;
                parsed.flags.insert("out".into(), value.clone());
            } else {
                parsed.positional.push(arg.clone());
            }
        }
        Ok(parsed)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize, what: &str) -> Result<&str, String> {
        self.positional
            .get(i)
            .map(String::as_str)
            .ok_or_else(|| format!("missing {what}"))
    }

    /// An optional string flag.
    pub fn flag(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(String::as_str)
    }

    /// A flag parsed into `T`, or `default` when absent.
    pub fn flag_or<T: FromStr>(&self, name: &str, default: T) -> Result<T, String>
    where
        T::Err: std::fmt::Display,
    {
        match self.flags.get(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|e| format!("bad value for --{name}: {e}")),
        }
    }

    /// Whether the boolean `--ideal` style flag is set.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Parsed {
        Parsed::new(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn positionals_and_flags() {
        let p = parse(&["trace.trc", "--width", "8", "-o", "out.json"]);
        assert_eq!(p.positional(0, "trace").unwrap(), "trace.trc");
        assert_eq!(p.flag("out"), Some("out.json"));
        assert_eq!(p.flag_or("width", 4u32).unwrap(), 8);
        assert_eq!(p.flag_or("depth", 5u32).unwrap(), 5);
    }

    #[test]
    fn boolean_ideal_flag() {
        let p = parse(&["t.trc", "--ideal"]);
        assert!(p.has("ideal"));
        assert_eq!(p.positional(0, "trace").unwrap(), "t.trc");
    }

    #[test]
    fn boolean_validate_flags_take_no_value() {
        let p = parse(&["--check", "--statsim", "--insts", "5000"]);
        assert!(p.has("check"));
        assert!(p.has("statsim"));
        assert_eq!(p.flag_or("insts", 0u64).unwrap(), 5_000);
    }

    #[test]
    fn adjacent_boolean_flags_do_not_eat_each_other() {
        // `fosm top --once --json` and `serve --no-telemetry --port-file P`
        // both rely on boolean flags never consuming the next token.
        let p = parse(&["--once", "--json", "--addr", "a:1"]);
        assert!(p.has("once"));
        assert!(p.has("json"));
        assert_eq!(p.flag("addr"), Some("a:1"));
        let p = parse(&["--no-telemetry", "--port-file", "p"]);
        assert!(p.has("no-telemetry"));
        assert_eq!(p.flag("port-file"), Some("p"));
    }

    #[test]
    fn missing_value_is_an_error() {
        let args = vec!["--width".to_string()];
        assert!(Parsed::new(&args).is_err());
    }

    #[test]
    fn bad_parse_reports_flag_name() {
        let p = parse(&["--width", "lots"]);
        let err = p.flag_or("width", 4u32).unwrap_err();
        assert!(err.contains("--width"));
    }

    #[test]
    fn missing_positional_reports_description() {
        let p = parse(&[]);
        assert!(p
            .positional(0, "trace file")
            .unwrap_err()
            .contains("trace file"));
    }
}
