//! The CLI subcommands.

use fosm_branch::PredictorConfig;
use fosm_cache::{HierarchyConfig, TlbConfig};
use fosm_core::model::FirstOrderModel;
use fosm_core::params::ProcessorParams;
use fosm_core::profile::{Probe, ProbeBank, ProfileCollector, ProgramProfile, SamplingPlan};
use fosm_isa::FuPool;
use fosm_sim::{ClusterConfig, FetchBufferConfig, Machine, MachineConfig, Steering};
use fosm_trace::io::{TraceFileReader, TraceFileWriter};
use fosm_trace::{TraceSource, TraceStats};
use fosm_validate::ToleranceSpec;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

use crate::args::Parsed;
use crate::{open_in, open_out};

fn machine_params(args: &Parsed) -> Result<ProcessorParams, String> {
    let base = ProcessorParams::baseline();
    let params = ProcessorParams {
        width: args.flag_or("width", base.width)?,
        win_size: args.flag_or("window", base.win_size)?,
        rob_size: args.flag_or("rob", base.rob_size)?,
        pipe_depth: args.flag_or("depth", base.pipe_depth)?,
        l2_latency: args.flag_or("l2", base.l2_latency)?,
        mem_latency: args.flag_or("mem", base.mem_latency)?,
        latencies: base.latencies,
    };
    params.validate()?;
    Ok(params)
}

/// Shared extension flags: `--prefetch N`, `--tlb ENTRIES`.
fn hierarchy_from(args: &Parsed) -> Result<HierarchyConfig, String> {
    let prefetch: u32 = args.flag_or("prefetch", 0u32)?;
    Ok(HierarchyConfig::baseline().with_next_line_prefetch(prefetch))
}

fn tlb_from(args: &Parsed) -> Result<Option<TlbConfig>, String> {
    match args.flag_or("tlb", 0u32)? {
        0 => Ok(None),
        entries => {
            let tlb = TlbConfig {
                entries,
                ..TlbConfig::baseline()
            };
            tlb.validate().map_err(|e| e.to_string())?;
            Ok(Some(tlb))
        }
    }
}

fn find_benchmark(name: &str) -> Result<BenchmarkSpec, String> {
    BenchmarkSpec::all()
        .into_iter()
        .find(|s| s.name == name)
        .ok_or_else(|| format!("unknown benchmark `{name}` (see `fosm bench-list`)"))
}

/// `fosm record --bench <name> [--insts N] [--seed S] -o <trace.trc>`
pub fn record(args: Parsed) -> Result<(), String> {
    let bench = args.flag("bench").ok_or("--bench <name> is required")?;
    let spec = find_benchmark(bench)?;
    let insts: u64 = args.flag_or("insts", 500_000u64)?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let out = args.flag("out").ok_or("-o <trace.trc> is required")?;

    let mut generator = WorkloadGenerator::new(&spec, seed);
    let mut writer = TraceFileWriter::new(open_out(out)?).map_err(|e| e.to_string())?;
    for _ in 0..insts {
        let inst = generator.next_inst().expect("generators are unbounded");
        writer.write(&inst).map_err(|e| e.to_string())?;
    }
    let written = writer.written();
    writer.finish().map_err(|e| e.to_string())?;
    println!("wrote {written} instructions of `{bench}` (seed {seed}) to {out}");
    Ok(())
}

/// `fosm corpus <build|info|verify> …` — the on-disk `FOSMTRC1`
/// corpus-file toolchain (see DESIGN.md for the format).
pub fn corpus(args: Parsed) -> Result<(), String> {
    match args.positional(0, "corpus subcommand (build, info, or verify)")? {
        "build" => corpus_build(&args),
        "info" => corpus_info(&args),
        "verify" => corpus_verify(&args),
        other => Err(format!(
            "unknown corpus subcommand `{other}` (expected build, info, or verify)"
        )),
    }
}

/// `fosm corpus build (--bench <name> [--insts N] [--seed S] |
/// --from <trace.trc>) -o <corpus.fct>`
fn corpus_build(args: &Parsed) -> Result<(), String> {
    let out = args.flag("out").ok_or("-o <corpus.fct> is required")?;
    let mut writer = fosm_trace::CorpusWriter::create(std::path::Path::new(out))
        .map_err(|e| format!("cannot create {out}: {e}"))?;
    let written = match (args.flag("bench"), args.flag("from")) {
        (Some(bench), None) => {
            let spec = find_benchmark(bench)?;
            let insts: u64 = args.flag_or("insts", 500_000u64)?;
            let seed: u64 = args.flag_or("seed", 42u64)?;
            let mut generator = WorkloadGenerator::new(&spec, seed);
            writer
                .append_source(&mut generator, insts)
                .map_err(|e| format!("cannot write {out}: {e}"))?
        }
        (None, Some(path)) => {
            let mut reader = TraceFileReader::new(open_in(path)?).map_err(|e| e.to_string())?;
            let written = writer
                .append_source(&mut reader, u64::MAX)
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            if let Some(e) = reader.take_error() {
                return Err(format!("trace file {path}: {e}"));
            }
            written
        }
        _ => return Err("exactly one of --bench <name> or --from <trace.trc> is required".into()),
    };
    let summary = writer
        .finish()
        .map_err(|e| format!("cannot finish {out}: {e}"))?;
    println!(
        "wrote {written} instructions to {out} ({} bytes, digest {:016x})",
        summary.file_bytes, summary.digest
    );
    Ok(())
}

/// `fosm corpus info <corpus.fct>`
fn corpus_info(args: &Parsed) -> Result<(), String> {
    let path = args.positional(1, "corpus file")?;
    let corpus = fosm_trace::CorpusFile::open(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: {} instructions ({} mem records, {} branch records)",
        corpus.len(),
        corpus.mem_records(),
        corpus.branch_records()
    );
    println!(
        "  {} bytes on disk, digest {:016x}",
        corpus.file_bytes(),
        corpus.digest()
    );
    for (i, s) in corpus.sections().iter().enumerate() {
        println!(
            "  section {:<15} offset {:>12} len {:>12} checksum {:016x}",
            fosm_trace::CorpusFile::section_name(i),
            s.offset,
            s.byte_len,
            s.checksum
        );
    }
    Ok(())
}

/// `fosm corpus verify <corpus.fct>` — re-reads every section and
/// checks its checksum; exits non-zero on any corruption.
fn corpus_verify(args: &Parsed) -> Result<(), String> {
    let path = args.positional(1, "corpus file")?;
    let corpus = fosm_trace::CorpusFile::open(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    corpus.verify().map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: OK ({} instructions, digest {:016x})",
        corpus.len(),
        corpus.digest()
    );
    Ok(())
}

/// `fosm stats <trace.trc>`
pub fn stats(args: Parsed) -> Result<(), String> {
    let path = args.positional(0, "trace file")?;
    let mut reader = TraceFileReader::new(open_in(path)?).map_err(|e| e.to_string())?;
    let stats = TraceStats::from_source(&mut reader, usize::MAX);
    if let Some(e) = reader.take_error() {
        return Err(format!("trace file {path}: {e}"));
    }
    println!("{path}: {} instructions", stats.instructions());
    println!(
        "  conditional branches: {} ({:.1}% of instructions, {:.1}% taken)",
        stats.cond_branches(),
        stats.branch_fraction() * 100.0,
        stats.taken_fraction() * 100.0
    );
    println!("  loads: {:.1}%", stats.load_fraction() * 100.0);
    println!(
        "  mean dependence distance: {:.1} instructions",
        stats.dependences().mean()
    );
    println!(
        "  operands within 4 insts of their producer: {:.1}%",
        stats.dependences().cumulative(4) * 100.0
    );
    Ok(())
}

/// The systematic sampling plan from `--sample/--warmup/--period`, or
/// `None` when `--sample` was not given.
fn sampling_plan_from(args: &Parsed) -> Result<Option<SamplingPlan>, String> {
    let Some(sample) = args.flag("sample") else {
        return Ok(None);
    };
    let sample: u64 = sample.parse().map_err(|e| format!("bad --sample: {e}"))?;
    Ok(Some(SamplingPlan {
        sample,
        warmup: args.flag_or("warmup", 0u64)?,
        period: args.flag_or("period", 10 * sample)?,
    }))
}

/// Builds one named probe variant for `fosm profile --probes`. The
/// variant names mirror the validation suite's simulation sets: the
/// full machine plus the four single-source idealizations.
fn probe_variant(
    name: &str,
    trace: &str,
    hierarchy: HierarchyConfig,
    dtlb: Option<TlbConfig>,
) -> Result<Probe, String> {
    let probe = Probe::new(format!("{trace}:{name}"));
    let ideal = HierarchyConfig::ideal();
    Ok(match name {
        "full" => {
            let mut p = probe.with_hierarchy(hierarchy);
            if let Some(tlb) = dtlb {
                p = p.with_dtlb(tlb);
            }
            p
        }
        "ideal" => probe
            .with_hierarchy(ideal)
            .with_predictor(PredictorConfig::Ideal),
        "branch" => probe.with_hierarchy(ideal),
        "icache" => probe
            .with_hierarchy(HierarchyConfig {
                l1i: hierarchy.l1i,
                l1d: None,
                l2: hierarchy.l2,
                next_line_prefetch: 0,
            })
            .with_predictor(PredictorConfig::Ideal),
        "dcache" => {
            let mut p = probe
                .with_hierarchy(HierarchyConfig {
                    l1i: None,
                    l1d: hierarchy.l1d,
                    l2: hierarchy.l2,
                    next_line_prefetch: hierarchy.next_line_prefetch,
                })
                .with_predictor(PredictorConfig::Ideal);
            if let Some(tlb) = dtlb {
                p = p.with_dtlb(tlb);
            }
            p
        }
        other => {
            return Err(format!(
                "unknown probe `{other}` (expected full, ideal, branch, icache, or dcache)"
            ))
        }
    })
}

/// Parses the per-invocation machine setup (params + hierarchy + TLB)
/// exactly once; every `--probes` variant borrows this single parse.
/// The counter lets the regression tests pin the
/// one-parse-per-invocation contract.
fn machine_setup(
    args: &Parsed,
) -> Result<(ProcessorParams, HierarchyConfig, Option<TlbConfig>), String> {
    fosm_obs::counter_add("cli.profile.config_loads", 1);
    Ok((
        machine_params(args)?,
        hierarchy_from(args)?,
        tlb_from(args)?,
    ))
}

/// Whether `path` starts with the `FOSMTRC1` corpus magic (as opposed
/// to the streaming trace format's `FOSMTRC\x01`) — an 8-byte sniff,
/// so `fosm profile` can accept either format transparently.
fn is_corpus_file(path: &str) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 8];
    std::fs::File::open(path)
        .and_then(|mut f| f.read_exact(&mut magic))
        .map(|()| magic == fosm_trace::corpus::CORPUS_MAGIC)
        .unwrap_or(false)
}

/// `fosm profile` on a `FOSMTRC1` corpus file: profiles go through the
/// artifact store's corpus path (paged replay + memoized pre-decoded
/// sidecar, persisted when `FOSM_CACHE_DIR` is set) instead of the
/// streaming reader.
fn profile_corpus(args: &Parsed, path: &str) -> Result<(), String> {
    if args.flag("sample").is_some() {
        return Err("--sample is not supported for corpus files (profile the full corpus)".into());
    }
    let (params, hierarchy, dtlb) = machine_setup(args)?;
    let corpus = fosm_trace::CorpusFile::open(std::path::Path::new(path))
        .map_err(|e| format!("{path}: {e}"))?;
    let store = fosm_bench::store::ArtifactStore::global();

    let (bank, fused): (ProbeBank, bool) = match args.flag("probes") {
        Some(list) => (
            list.split(',')
                .map(|name| probe_variant(name.trim(), path, hierarchy, dtlb))
                .collect::<Result<Vec<Probe>, String>>()?
                .into(),
            true,
        ),
        None => {
            let mut probe = Probe::new(path.to_string()).with_hierarchy(hierarchy);
            if let Some(tlb) = dtlb {
                probe = probe.with_dtlb(tlb);
            }
            (ProbeBank::from(vec![probe]), false)
        }
    };
    let profiles = store
        .profile_many_corpus(&params, &bank, &corpus)
        .map_err(|e| format!("{path}: {e}"))?;

    if fused {
        let rendered: Vec<&ProgramProfile> = profiles.iter().map(|p| &**p).collect();
        match args.flag("out") {
            Some(out) => {
                serde_json::to_writer_pretty(open_out(out)?, &rendered)
                    .map_err(|e| e.to_string())?;
                println!(
                    "wrote {} fused profiles ({} instructions each) to {out}",
                    rendered.len(),
                    rendered.first().map_or(0, |p| p.instructions)
                );
            }
            None => {
                serde_json::to_writer_pretty(std::io::stdout().lock(), &rendered)
                    .map_err(|e| e.to_string())?;
                println!();
            }
        }
    } else {
        let profile = &*profiles[0];
        match args.flag("out") {
            Some(out) => {
                serde_json::to_writer_pretty(open_out(out)?, profile).map_err(|e| e.to_string())?;
                println!(
                    "wrote profile of {} instructions to {out}",
                    profile.instructions
                );
            }
            None => {
                serde_json::to_writer_pretty(std::io::stdout().lock(), profile)
                    .map_err(|e| e.to_string())?;
                println!();
            }
        }
    }
    Ok(())
}

/// `fosm profile <trace.trc|corpus.fct> [-o out.json] [--probes LIST]
/// [machine flags]`
pub fn profile(args: Parsed) -> Result<(), String> {
    let path = args.positional(0, "trace file")?;
    if is_corpus_file(path) {
        return profile_corpus(&args, path);
    }
    let (params, hierarchy, dtlb) = machine_setup(&args)?;
    let plan = sampling_plan_from(&args)?;
    let mut reader = TraceFileReader::new(open_in(path)?).map_err(|e| e.to_string())?;

    if let Some(list) = args.flag("probes") {
        // One fused replay profiles every requested variant at once.
        let bank: ProbeBank = list
            .split(',')
            .map(|name| probe_variant(name.trim(), path, hierarchy, dtlb))
            .collect::<Result<Vec<Probe>, String>>()?
            .into();
        let collector = ProfileCollector::new(&params);
        let profiles = match plan {
            Some(plan) => collector.collect_many_sampled(&mut reader, &bank, plan, u64::MAX),
            None => collector.collect_many(&mut reader, &bank, u64::MAX),
        }
        .map_err(|e| e.to_string())?;
        if let Some(e) = reader.take_error() {
            return Err(format!("trace file {path}: {e}"));
        }
        match args.flag("out") {
            Some(out) => {
                serde_json::to_writer_pretty(open_out(out)?, &profiles)
                    .map_err(|e| e.to_string())?;
                println!(
                    "wrote {} fused profiles ({} instructions each) to {out}",
                    profiles.len(),
                    profiles.first().map_or(0, |p| p.instructions)
                );
            }
            None => {
                serde_json::to_writer_pretty(std::io::stdout().lock(), &profiles)
                    .map_err(|e| e.to_string())?;
                println!();
            }
        }
        return Ok(());
    }

    let mut collector = ProfileCollector::new(&params)
        .with_hierarchy(hierarchy)
        .with_name(path);
    if let Some(tlb) = dtlb {
        collector = collector.with_dtlb(tlb);
    }
    let profile = match plan {
        Some(plan) => collector
            .collect_sampled(&mut reader, plan, u64::MAX)
            .map_err(|e| e.to_string())?,
        None => collector
            .collect(&mut reader, u64::MAX)
            .map_err(|e| e.to_string())?,
    };
    if let Some(e) = reader.take_error() {
        return Err(format!("trace file {path}: {e}"));
    }
    match args.flag("out") {
        Some(out) => {
            serde_json::to_writer_pretty(open_out(out)?, &profile).map_err(|e| e.to_string())?;
            println!(
                "wrote profile of {} instructions to {out}",
                profile.instructions
            );
        }
        None => {
            serde_json::to_writer_pretty(std::io::stdout().lock(), &profile)
                .map_err(|e| e.to_string())?;
            println!();
        }
    }
    Ok(())
}

/// `fosm model <profile.json> [machine flags]`
pub fn model(args: Parsed) -> Result<(), String> {
    let path = args.positional(0, "profile file")?;
    let params = machine_params(&args)?;
    let profile: ProgramProfile =
        serde_json::from_reader(open_in(path)?).map_err(|e| format!("{path}: {e}"))?;
    let est = FirstOrderModel::new(params)
        .evaluate(&profile)
        .map_err(|e| e.to_string())?;
    println!("first-order model estimate for `{}`:", profile.name);
    for (component, cpi) in est.cpi_stack() {
        println!("  {component:<10} {cpi:>7.4} CPI");
    }
    println!(
        "  {:<10} {:>7.4} CPI   ({:.3} IPC)",
        "total",
        est.total_cpi(),
        est.total_ipc()
    );
    println!(
        "  penalties: branch {:.1}, icache {:.1}, dcache/miss {:.1} cycles",
        est.branch_penalty, est.icache_penalty, est.dcache_penalty_per_miss
    );
    Ok(())
}

/// `fosm simulate <trace.trc> [machine flags] [--ideal]`
pub fn simulate(args: Parsed) -> Result<(), String> {
    let path = args.positional(0, "trace file")?;
    let params = machine_params(&args)?;
    let base = if args.has("ideal") {
        MachineConfig::ideal()
    } else {
        MachineConfig::baseline()
    };
    let mut config = MachineConfig {
        width: params.width,
        win_size: params.win_size,
        rob_size: params.rob_size,
        pipe_depth: params.pipe_depth,
        l2_latency: params.l2_latency,
        mem_latency: params.mem_latency,
        ..base
    };
    if !args.has("ideal") {
        config.hierarchy = hierarchy_from(&args)?;
    }
    if let Some(tlb) = tlb_from(&args)? {
        config = config.with_dtlb(tlb);
    }
    match args.flag_or("clusters", 0u32)? {
        0 | 1 => {}
        clusters => {
            config = config.with_clusters(ClusterConfig {
                clusters,
                forward_delay: args.flag_or("forward", 1u32)?,
                steering: Steering::Dependence,
            });
        }
    }
    if args.has("fu") {
        config = config.with_fu_limits(FuPool::alpha_like());
    }
    if let Some(buffer) = args.flag("buffer") {
        let entries: u32 = buffer.parse().map_err(|e| format!("bad --buffer: {e}"))?;
        let bandwidth = 2 * config.width.max(4);
        config = config.with_fetch_buffer(FetchBufferConfig { entries, bandwidth });
    }
    config.validate()?;
    let mut reader = TraceFileReader::new(open_in(path)?).map_err(|e| e.to_string())?;
    let report = Machine::try_new(config)?.run(&mut reader);
    if let Some(e) = reader.take_error() {
        return Err(format!("trace file {path}: {e}"));
    }
    println!(
        "simulated {} instructions in {} cycles",
        report.instructions, report.cycles
    );
    println!("  IPC {:.3}   CPI {:.3}", report.ipc(), report.cpi());
    println!(
        "  mispredicts {} ({:.1}% of {} branches)",
        report.mispredicts,
        report.mispredict_rate() * 100.0,
        report.cond_branches
    );
    println!(
        "  icache misses {} short / {} long; dcache {} short / {} long",
        report.icache_short_misses,
        report.icache_long_misses,
        report.dcache_short_misses,
        report.dcache_long_misses
    );
    Ok(())
}

/// `fosm bench-list`
pub fn bench_list() -> Result<(), String> {
    println!("built-in synthetic benchmarks (SPECint2000-like):");
    for spec in BenchmarkSpec::all() {
        println!(
            "  {:<8} dep(chain {:.2}, free {:.2})  footprint {:>5} KiB  funcs {}",
            spec.name,
            spec.dep_chain_p,
            spec.no_dep_p,
            spec.data_footprint / 1024,
            spec.num_functions
        );
    }
    Ok(())
}

/// Loads the gate tolerance bands (committed baseline file or the
/// built-in gate) exactly once per invocation. The counter lets the
/// regression tests pin the one-parse-per-invocation contract.
fn tolerance_from(args: &Parsed) -> Result<ToleranceSpec, String> {
    fosm_obs::counter_add("cli.validate.tolerance_loads", 1);
    match args.flag("baseline") {
        Some(path) => {
            let json = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read tolerance baseline {path}: {e}"))?;
            serde_json::from_str::<ToleranceSpec>(&json)
                .map_err(|e| format!("malformed tolerance baseline {path}: {e}"))
        }
        None => Ok(ToleranceSpec::gate()),
    }
}

/// `fosm validate [--insts N] [--seed S] [--threads N] [--bench name]
/// [--tol overrides] [--baseline tolerances.json] [--check]
/// [--report out.json] [--statsim] [--fuzz N] [--fuzz-seed S]
/// [machine flags]`
///
/// Runs the differential validation harness: the analytical model, the
/// detailed simulator's idealization variants, and (with `--statsim`)
/// the statistical simulator on identical inputs, gating each CPI
/// component against tolerance bands. `--check` turns violations into
/// a non-zero exit (the CI accuracy gate); `--fuzz N` runs the
/// differential fuzzer for `N` random machines instead of the sweep.
pub fn validate(args: Parsed) -> Result<(), String> {
    let params = machine_params(&args)?;
    let config = MachineConfig {
        width: params.width,
        win_size: params.win_size,
        rob_size: params.rob_size,
        pipe_depth: params.pipe_depth,
        l2_latency: params.l2_latency,
        mem_latency: params.mem_latency,
        ..MachineConfig::baseline()
    };
    config.validate()?;
    let insts: u64 = args.flag_or("insts", 120_000u64)?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let threads: usize = args
        .flag_or("threads", fosm_bench::par::available_threads())?
        .max(1);
    let store = fosm_bench::store::ArtifactStore::global();
    if let Some(json) = args.flag("fuzz-repro") {
        return fuzz_repro(store, json, insts);
    }

    if let Some(fuzz_cases) = args.flag("fuzz") {
        let cases: u64 = fuzz_cases.parse().map_err(|e| format!("bad --fuzz: {e}"))?;
        let mut fuzz_tol = ToleranceSpec::fuzz();
        if let Some(overrides) = args.flag("tol") {
            fuzz_tol.apply_overrides(overrides)?;
        }
        return run_fuzz(store, &args, cases, insts, fuzz_tol);
    }

    // Tolerances: the committed baseline file (or the built-in gate),
    // then ad-hoc `--tol` overrides on top. Loaded after the fuzz
    // early-returns so those paths never pay for (or fail on) a
    // baseline parse they do not use.
    let mut tol = tolerance_from(&args)?;
    if let Some(overrides) = args.flag("tol") {
        tol.apply_overrides(overrides)?;
    }

    // Corpus-file workloads: validate each listed `FOSMTRC1` file
    // against the same machine configuration, sharded across the same
    // worker pool as the synthetic sweep.
    if let Some(list) = args.flag("corpus") {
        let paths: Vec<std::path::PathBuf> = list
            .split(',')
            .map(|s| std::path::PathBuf::from(s.trim()))
            .collect();
        let results =
            fosm_validate::differential::corpus_sweep(store, &config, &paths, &tol, threads)
                .map_err(|e| format!("corpus validation sweep failed: {e}"))?;
        let report = fosm_validate::ValidationReport::new(insts, seed, tol, results);
        report.observe_into(fosm_obs::global());
        return finish_validation(&args, &report);
    }

    let cases = match args.flag("bench") {
        Some(name) => vec![fosm_validate::CaseSpec {
            config: config.clone(),
            bench: find_benchmark(name)?,
            trace_len: insts,
            seed,
        }],
        None => fosm_validate::CaseSpec::suite(&config, insts, seed),
    };
    let options = fosm_validate::differential::SweepOptions {
        threads,
        statsim: args.has("statsim"),
    };
    let results = fosm_validate::differential::sweep(store, &cases, &tol, options)
        .map_err(|e| format!("validation sweep failed: {e}"))?;
    let report = fosm_validate::ValidationReport::new(insts, seed, tol, results);
    report.observe_into(fosm_obs::global());
    finish_validation(&args, &report)
}

/// The shared tail of `fosm validate`: renders the table, writes the
/// optional JSON report, and applies `--check` gate semantics. Used by
/// both the synthetic sweep and the corpus-file sweep.
fn finish_validation(
    args: &Parsed,
    report: &fosm_validate::ValidationReport,
) -> Result<(), String> {
    print!("{}", report.render_table());
    if args.has("statsim") {
        print_statsim_comparison(report);
    }
    if let Some(path) = args.flag("report") {
        let json = report.to_json().map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("cannot write report {path}: {e}"))?;
        println!("report written to {path}");
    }
    if args.has("check") && !report.passed() {
        let violations = report.violations();
        for v in &violations {
            eprintln!(
                "VIOLATION {}/{}: model {:.4} vs sim {:.4} (allowed ±{:.4})",
                v.bench,
                v.component.name(),
                v.model,
                v.sim,
                v.allowed
            );
        }
        // Attach the per-event error histogram so a failing gate names
        // the event class behind the residual, not just the component.
        let summary = report.render_event_summary();
        if !summary.is_empty() {
            eprintln!("\n{summary}");
        }
        return Err(format!(
            "accuracy gate failed: {} component(s) outside tolerance",
            violations.len()
        ));
    }
    Ok(())
}

fn run_fuzz(
    store: &fosm_bench::store::ArtifactStore,
    args: &Parsed,
    cases: u64,
    insts: u64,
    tol: ToleranceSpec,
) -> Result<(), String> {
    let fuzz_seed: u64 = args.flag_or("fuzz-seed", 0xF05Au64)?;
    println!(
        "fuzzing {cases} random machine/workload draws ({insts} insts each, seed {fuzz_seed:#x})"
    );
    match fosm_validate::fuzz::run(store, cases, insts, fuzz_seed, &tol) {
        fosm_validate::FuzzOutcome::Clean { cases } => {
            println!("fuzz clean: {cases} cases within invariants");
            Ok(())
        }
        fosm_validate::FuzzOutcome::Failed(failure) => {
            eprintln!(
                "fuzz failure after {} passing case(s): {}",
                failure.cases_passed, failure.reason
            );
            eprintln!("  original: {:?}", failure.case);
            eprintln!("  shrunk:   {:?}", failure.shrunk);
            eprintln!(
                "  reproduce with: fosm validate --fuzz-repro '{}'",
                serde_json::to_string(&failure.shrunk).map_err(|e| e.to_string())?
            );
            Err("differential fuzzing found an invariant violation".into())
        }
    }
}

/// `fosm validate --fuzz-repro '<json>'` support: replays one fuzz
/// case (as printed by a failing fuzz run) and reports its status.
fn fuzz_repro(
    store: &fosm_bench::store::ArtifactStore,
    json: &str,
    insts: u64,
) -> Result<(), String> {
    let case: fosm_validate::FuzzCase =
        serde_json::from_str(json).map_err(|e| format!("malformed fuzz case: {e}"))?;
    let tol = ToleranceSpec::fuzz();
    match fosm_validate::fuzz::check(store, &case, insts, &tol) {
        Ok(()) => {
            println!("case passes all invariants: {case:?}");
            Ok(())
        }
        Err(reason) => Err(format!("case fails: {reason}")),
    }
}

/// `fosm trace <bench> [--insts N] [--seed S] [--top K]
/// [--chrome <out.json>] [machine flags]`
///
/// Runs the detailed simulator with event tracing on one synthetic
/// workload, prices every traced miss event with the analytical
/// model's per-event penalties, and prints the per-class error
/// histogram plus a top-K table of worst-attributed events. With
/// `--chrome`, also writes the annotated event stream as Chrome
/// trace-event JSON (loadable in Perfetto / `about://tracing`).
pub fn trace(args: Parsed) -> Result<(), String> {
    let bench = args.positional(0, "benchmark name (see `fosm bench-list`)")?;
    let spec = find_benchmark(bench)?;
    let params = machine_params(&args)?;
    let config = MachineConfig {
        width: params.width,
        win_size: params.win_size,
        rob_size: params.rob_size,
        pipe_depth: params.pipe_depth,
        l2_latency: params.l2_latency,
        mem_latency: params.mem_latency,
        ..MachineConfig::baseline()
    };
    config.validate()?;
    let insts: u64 = args.flag_or("insts", 120_000u64)?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let top: usize = args.flag_or("top", 10usize)?;

    let trace = fosm_bench::harness::record_seeded(&spec, insts, seed);
    let (report, events) = fosm_bench::harness::simulate_traced(&config, &trace);
    let profile = fosm_bench::harness::profile_with(
        &params,
        &config.hierarchy,
        config.predictor,
        &spec.name,
        &trace,
    )
    .map_err(|e| format!("profile collection failed: {e}"))?;
    let (est, penalties) = FirstOrderModel::new(params.clone())
        .event_penalties(&profile)
        .map_err(|e| e.to_string())?;
    let diffs = fosm_validate::events::diff(&events, &penalties, &profile, &params);

    println!(
        "traced `{}`: {} instructions, {} cycles (sim CPI {:.4}, model CPI {:.4})",
        spec.name,
        report.instructions,
        report.cycles,
        report.cpi(),
        est.total_cpi()
    );
    print!("{}", fosm_validate::events::render(&diffs));

    // The per-class model CPIs are the estimate's adders re-expressed
    // per event, so this reconciles exactly; it is printed as the
    // visible contract with `fosm validate`'s aggregate rows.
    let per_class: f64 = diffs.iter().map(|d| d.model_cpi).sum();
    let adders = est.total_cpi() - est.steady_state_cpi - est.dtlb_cpi;
    println!(
        "\nreconciliation: per-class model CPI {per_class:.6} vs aggregate adders {adders:.6} \
         (|Δ| {:.2e})",
        (per_class - adders).abs()
    );

    let mut worst: Vec<fosm_obs::TraceEvent> = events
        .iter()
        .filter(|e| e.kind != fosm_obs::EventKind::IntervalBoundary)
        .map(|e| e.annotate(penalties.for_event(e, &params)))
        .collect();
    worst.sort_by(|a, b| {
        let score = |e: &fosm_obs::TraceEvent| (e.extent() as f64 - e.predicted).abs();
        score(b)
            .total_cmp(&score(a))
            .then(a.sort_key().cmp(&b.sort_key()))
    });
    println!(
        "\ntop {} worst-attributed events (|sim extent − predicted| cycles):",
        top.min(worst.len())
    );
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>8} {:>10} {:>8}",
        "event", "inst", "start", "end", "extent", "predicted", "error"
    );
    for e in worst.iter().take(top) {
        println!(
            "{:<18} {:>10} {:>10} {:>10} {:>8} {:>10.1} {:>+8.1}",
            e.kind.name(),
            e.inst,
            e.start,
            e.end,
            e.extent(),
            e.predicted,
            e.extent() as f64 - e.predicted
        );
    }

    if let Some(path) = args.flag("chrome") {
        let annotated: Vec<fosm_obs::TraceEvent> = events
            .iter()
            .map(|e| e.annotate(penalties.for_event(e, &params)))
            .collect();
        fosm_obs::chrome::write_to(std::path::Path::new(path), &annotated, 0)
            .map_err(|e| format!("cannot write chrome trace {path}: {e}"))?;
        println!(
            "\nchrome trace written to {path} ({} events)",
            annotated.len()
        );
    }
    Ok(())
}

/// `fosm metrics diff <a.json> <b.json> [--max-regress PCT]`
///
/// Compares two run manifests written via `--metrics`/`FOSM_METRICS`:
/// counter deltas, gauge deltas, span `total_ns` ratios, and histogram
/// summaries (`count`/`p50`/`p99` per histogram). With `--max-regress`,
/// exits non-zero when any counter, span timing, or histogram quantile
/// grew by more than the given percentage (gauges and histogram counts
/// are informational).
pub fn metrics(args: Parsed) -> Result<(), String> {
    match args.positional(0, "metrics subcommand (try `diff`)")? {
        "diff" => metrics_diff(&args),
        other => Err(format!("unknown metrics subcommand `{other}` (try `diff`)")),
    }
}

fn metrics_diff(args: &Parsed) -> Result<(), String> {
    let path_a = args.positional(1, "first manifest (a.json)")?;
    let path_b = args.positional(2, "second manifest (b.json)")?;
    let a = load_manifest(path_a)?;
    let b = load_manifest(path_b)?;
    let max_regress: Option<f64> = match args.flag("max-regress") {
        Some(raw) => Some(
            raw.parse()
                .map_err(|e| format!("bad value for --max-regress: {e}"))?,
        ),
        None => None,
    };

    let mut regressions: Vec<String> = Vec::new();
    let mut changed = 0usize;
    for (section, gated) in [("counters", true), ("gauges", false)] {
        let rows = merged_numbers(num_map(&a, section), num_map(&b, section));
        if rows.is_empty() {
            continue;
        }
        println!("{section}:");
        for (key, va, vb) in rows {
            if va == vb {
                continue;
            }
            changed += 1;
            let pct = if va != 0.0 {
                100.0 * (vb - va) / va
            } else {
                f64::INFINITY
            };
            println!("  {key:<40} {va:>14} -> {vb:<14} ({pct:+.1}%)");
            if gated && vb > va && exceeds(pct, max_regress) {
                regressions.push(format!("{section}.{key} grew {pct:+.1}%"));
            }
        }
    }
    let rows = merged_numbers(span_totals(&a), span_totals(&b));
    if !rows.is_empty() {
        println!("spans (total_ns):");
        for (key, va, vb) in rows {
            if va == vb {
                continue;
            }
            changed += 1;
            let pct = if va != 0.0 {
                100.0 * (vb - va) / va
            } else {
                f64::INFINITY
            };
            let ratio = if va != 0.0 { vb / va } else { f64::INFINITY };
            println!("  {key:<40} {va:>14} -> {vb:<14} (x{ratio:.2})");
            if vb > va && exceeds(pct, max_regress) {
                regressions.push(format!("spans.{key} grew {pct:+.1}% (x{ratio:.2})"));
            }
        }
    }
    let rows = merged_numbers(hist_summaries(&a), hist_summaries(&b));
    if !rows.is_empty() {
        println!("hists (count/p50/p99):");
        for (key, va, vb) in rows {
            if va == vb {
                continue;
            }
            changed += 1;
            let pct = if va != 0.0 {
                100.0 * (vb - va) / va
            } else {
                f64::INFINITY
            };
            println!("  {key:<40} {va:>14} -> {vb:<14} ({pct:+.1}%)");
            // Quantile growth is a latency regression; counts are
            // informational (serving more requests is not slower).
            let gated = key.ends_with(".p50") || key.ends_with(".p99");
            if gated && vb > va && exceeds(pct, max_regress) {
                regressions.push(format!("hists.{key} grew {pct:+.1}%"));
            }
        }
    }
    if changed == 0 {
        println!("no differences in counters, gauges, span totals, or hists");
    }
    if !regressions.is_empty() {
        for r in &regressions {
            eprintln!("REGRESSION {r}");
        }
        return Err(format!(
            "{} regression(s) above --max-regress {}%",
            regressions.len(),
            max_regress.unwrap_or(0.0)
        ));
    }
    Ok(())
}

fn exceeds(pct: f64, max_regress: Option<f64>) -> bool {
    matches!(max_regress, Some(max) if pct > max)
}

/// Parses the last manifest line of a `--metrics` output file (the
/// JSON sink writes one manifest per line; the last one wins).
fn load_manifest(path: &str) -> Result<serde::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let line = text
        .lines()
        .rev()
        .find(|l| !l.trim().is_empty())
        .ok_or_else(|| format!("{path}: empty manifest file"))?;
    serde_json::from_str(line).map_err(|e| format!("{path}: {e}"))
}

/// Flattens a `"counters"`/`"gauges"`-style object of numbers.
fn num_map(manifest: &serde::Value, section: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(serde::Value::Map(entries)) = manifest.get(section) {
        for (key, value) in entries {
            if let serde::Value::Num(raw) = value {
                if let Ok(v) = raw.parse() {
                    out.push((key.clone(), v));
                }
            }
        }
    }
    out
}

/// Flattens each histogram in the `"hists"` section into its summary
/// numbers, keyed `{name}.count` / `{name}.p50` / `{name}.p99`.
fn hist_summaries(manifest: &serde::Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(serde::Value::Map(entries)) = manifest.get("hists") {
        for (key, value) in entries {
            for field in ["count", "p50", "p99"] {
                if let Some(serde::Value::Num(raw)) = value.get(field) {
                    if let Ok(v) = raw.parse() {
                        out.push((format!("{key}.{field}"), v));
                    }
                }
            }
        }
    }
    out
}

/// Extracts each span's `total_ns` from the `"spans"` object.
fn span_totals(manifest: &serde::Value) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    if let Some(serde::Value::Map(entries)) = manifest.get("spans") {
        for (key, value) in entries {
            if let Some(serde::Value::Num(raw)) = value.get("total_ns") {
                if let Ok(v) = raw.parse() {
                    out.push((key.clone(), v));
                }
            }
        }
    }
    out
}

/// Key-unions two `(name, value)` lists; a missing side reads as 0.
fn merged_numbers(a: Vec<(String, f64)>, b: Vec<(String, f64)>) -> Vec<(String, f64, f64)> {
    let mut keys: Vec<&String> = a
        .iter()
        .map(|(k, _)| k)
        .chain(b.iter().map(|(k, _)| k))
        .collect();
    keys.sort();
    keys.dedup();
    let find = |list: &[(String, f64)], key: &str| {
        list.iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
            .unwrap_or(0.0)
    };
    keys.iter()
        .map(|k| (k.to_string(), find(&a, k), find(&b, k)))
        .collect()
}

fn print_statsim_comparison(report: &fosm_validate::ValidationReport) {
    use fosm_validate::Component;
    println!("\nrelated-work baseline (statistical simulation) on the same inputs:");
    println!(
        "{:<8} {:>8} {:>9} {:>7} {:>9} {:>7}",
        "bench", "sim CPI", "stat CPI", "err%", "model CPI", "err%"
    );
    let mut stat_pairs = Vec::new();
    let mut model_pairs = Vec::new();
    for case in &report.cases {
        let Some(stat_cpi) = case.statsim_cpi else {
            continue;
        };
        let total = case.row(Component::Total);
        println!(
            "{:<8} {:>8.3} {:>9.3} {:>6.1}% {:>9.3} {:>6.1}%",
            case.bench,
            total.sim,
            stat_cpi,
            100.0 * (stat_cpi - total.sim) / total.sim,
            total.model,
            total.error_pct()
        );
        stat_pairs.push((total.sim, stat_cpi));
        model_pairs.push((total.sim, total.model));
    }
    println!(
        "\navg |error|: statistical simulation {:.1}%, first-order model {:.1}%",
        fosm_bench::harness::mean_abs_error_pct(&stat_pairs),
        fosm_bench::harness::mean_abs_error_pct(&model_pairs)
    );
}

// ---------------------------------------------------------------------
// `fosm explore` — design-space exploration over the batched model.
// ---------------------------------------------------------------------

/// Parses a comma-separated `--{name}` list of `u32` axis values, or
/// returns `default` when the flag is absent.
fn u32_list(args: &Parsed, name: &str, default: &[u32]) -> Result<Vec<u32>, String> {
    match args.flag(name) {
        None => Ok(default.to_vec()),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad value in --{name}: {e}"))
            })
            .collect(),
    }
}

/// Builds the machine grid from the plural axis flags, defaulting every
/// unspecified axis to the baseline sweep, and validates it once —
/// the streaming evaluator itself has no `Result` in the hot path.
fn grid_from(args: &Parsed) -> Result<fosm_explore::MachineGrid, String> {
    let base = fosm_explore::MachineGrid::baseline_sweep();
    let grid = fosm_explore::MachineGrid {
        widths: u32_list(args, "widths", &base.widths)?,
        win_sizes: u32_list(args, "windows", &base.win_sizes)?,
        rob_sizes: u32_list(args, "robs", &base.rob_sizes)?,
        pipe_depths: u32_list(args, "depths", &base.pipe_depths)?,
        l2_latencies: u32_list(args, "l2s", &base.l2_latencies)?,
        mem_latencies: u32_list(args, "mems", &base.mem_latencies)?,
    };
    grid.validate().map_err(|e| e.to_string())?;
    Ok(grid)
}

/// Builds the hardware axes (`--icaches`/`--dcaches` geometry lists,
/// `--predictors` labels) and validates them once.
fn hardware_axes_from(args: &Parsed) -> Result<fosm_explore::HardwareAxes, String> {
    let base = fosm_explore::HardwareAxes::baseline_only();
    let geometries = |name: &str,
                      default: Vec<fosm_explore::CacheGeometry>|
     -> Result<Vec<fosm_explore::CacheGeometry>, String> {
        match args.flag(name) {
            None => Ok(default),
            Some(raw) => raw
                .split(',')
                .map(|s| fosm_explore::CacheGeometry::parse(s.trim()).map_err(|e| e.to_string()))
                .collect(),
        }
    };
    let axes = fosm_explore::HardwareAxes {
        icaches: geometries("icaches", base.icaches)?,
        dcaches: geometries("dcaches", base.dcaches)?,
        predictors: match args.flag("predictors") {
            None => base.predictors,
            Some(raw) => raw
                .split(',')
                .map(|s| fosm_explore::parse_predictor(s.trim()).map_err(|e| e.to_string()))
                .collect::<Result<_, _>>()?,
        },
    };
    axes.validate().map_err(|e| e.to_string())?;
    Ok(axes)
}

/// A compact `icache/dcache/predictor` label for one hardware variant.
fn variant_label(v: &fosm_explore::HardwareVariant) -> String {
    format!(
        "{}/{}/{}",
        v.icache,
        v.dcache,
        fosm_explore::predictor_label(v.predictor)
    )
}

/// The cache hierarchy a hardware variant's profiles are collected
/// with (and its corner points simulated with).
fn variant_hierarchy(v: &fosm_explore::HardwareVariant) -> Result<HierarchyConfig, String> {
    Ok(HierarchyConfig {
        l1i: Some(v.icache.to_config().map_err(|e| e.to_string())?),
        l1d: Some(v.dcache.to_config().map_err(|e| e.to_string())?),
        ..HierarchyConfig::baseline()
    })
}

/// The full simulator machine a frontier point corresponds to, for
/// `--sim-check` re-simulation.
fn corner_config(
    point: &fosm_explore::DesignPoint,
    variants: &[fosm_explore::HardwareVariant],
) -> Result<MachineConfig, String> {
    let variant = &variants[point.variant as usize];
    let config = MachineConfig {
        width: point.config.width,
        win_size: point.config.win_size,
        rob_size: point.config.rob_size,
        pipe_depth: point.config.pipe_depth,
        l2_latency: point.config.l2_latency,
        mem_latency: point.config.mem_latency,
        hierarchy: variant_hierarchy(variant)?,
        predictor: variant.predictor,
        ..MachineConfig::baseline()
    };
    config.validate()?;
    Ok(config)
}

/// `fosm explore [--bench name|all] [--insts N] [--seed S] [--threads N]
/// [--widths L] [--windows L] [--robs L] [--depths L] [--l2s L]
/// [--mems L] [--icaches L] [--dcaches L] [--predictors L] [--top K]
/// [--frontier] [--export out.{csv,json}] [--sim-check N]`
///
/// Sweeps the machine grid for every (workload, hardware-variant) pair
/// through the batched evaluator and prints the global Pareto frontier
/// of IPC against the area/energy proxy. Timing goes to stderr only, so
/// stdout is byte-identical across `--threads` settings.
pub fn explore(args: Parsed) -> Result<(), String> {
    let grid = grid_from(&args)?;
    let axes = hardware_axes_from(&args)?;
    let insts: u64 = args.flag_or("insts", 120_000u64)?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let threads: usize = args
        .flag_or("threads", fosm_bench::par::available_threads())?
        .max(1);
    let top: usize = args.flag_or("top", 10usize)?;

    let specs: Vec<BenchmarkSpec> = match args.flag("bench") {
        None => vec![BenchmarkSpec::gzip()],
        Some("all") => BenchmarkSpec::all(),
        Some(name) => vec![find_benchmark(name)?],
    };
    let workload_names: Vec<String> = specs.iter().map(|s| s.name.to_string()).collect();
    let variants = axes.variants();
    let variant_labels: Vec<String> = variants.iter().map(variant_label).collect();
    let variant_setups = variants
        .iter()
        .map(variant_hierarchy)
        .collect::<Result<Vec<_>, _>>()?;

    // One fused replay per workload profiles every hardware variant at
    // once; the memoizing store shares traces across invocations.
    let store = fosm_bench::store::ArtifactStore::global();
    let params = ProcessorParams::baseline();
    let profiles = fosm_bench::par::par_map(&specs, threads, |spec| {
        let bank: ProbeBank = variants
            .iter()
            .enumerate()
            .map(|(v, variant)| {
                Probe::new(format!("{}:{}", spec.name, variant_labels[v]))
                    .with_hierarchy(variant_setups[v])
                    .with_predictor(variant.predictor)
            })
            .collect::<Vec<Probe>>()
            .into();
        store
            .profile_many(&params, &bank, spec, insts, seed)
            .map_err(|e| e.to_string())
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;

    // The model sweep itself: one shard per (workload, variant) pair,
    // order-preserving fan-out so the merge is deterministic.
    let mut shard_inputs = Vec::new();
    for (w, per_variant) in profiles.iter().enumerate() {
        for (v, profile) in per_variant.iter().enumerate() {
            let tag = fosm_explore::ShardTag {
                workload: w as u32,
                variant: v as u32,
            };
            shard_inputs.push((tag, profile.clone()));
        }
    }
    let model = FirstOrderModel::new(params.clone());
    let t0 = std::time::Instant::now();
    let shards = fosm_bench::par::par_map(&shard_inputs, threads, |(tag, profile)| {
        fosm_explore::sweep_profile(
            &model,
            profile,
            &grid,
            &variants[tag.variant as usize],
            *tag,
        )
        .map_err(|e| e.to_string())
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;
    let elapsed = t0.elapsed().as_secs_f64();
    let configs: u64 = shards.iter().map(|s| s.configs).sum();
    // Timing is machine-dependent: stderr only, never in the report.
    eprintln!(
        "evaluated {configs} configs in {elapsed:.3}s ({:.2}M evals/sec)",
        configs as f64 / elapsed / 1e6
    );

    let frontier = fosm_explore::merge_frontiers(&shards);
    println!(
        "explored {configs} configs: {} workload(s) x {} hardware variant(s) x {} grid points",
        specs.len(),
        variants.len(),
        grid.len()
    );
    println!("pareto frontier: {} point(s)", frontier.len());

    let corner_rows = fosm_explore::frontier_rows(
        &frontier.corners(top.min(frontier.len())),
        &workload_names,
        &variants,
    );
    println!(
        "{:<8} {:>5} {:>6} {:>5} {:>5} {:>4} {:>5} {:>8} {:>9}  {:<10} {:<10} predictor",
        "bench", "width", "window", "rob", "depth", "l2", "mem", "ipc", "cost", "icache", "dcache"
    );
    for r in &corner_rows {
        println!(
            "{:<8} {:>5} {:>6} {:>5} {:>5} {:>4} {:>5} {:>8.4} {:>9.2}  {:<10} {:<10} {}",
            r.workload,
            r.width,
            r.window,
            r.rob,
            r.depth,
            r.l2,
            r.mem,
            r.ipc,
            r.cost,
            r.icache,
            r.dcache,
            r.predictor
        );
    }

    let all_rows = || fosm_explore::frontier_rows(frontier.points(), &workload_names, &variants);
    if args.has("frontier") {
        print!("{}", fosm_explore::frontier_csv(&all_rows()));
    }
    if let Some(path) = args.flag("export") {
        let rows = all_rows();
        let rendered = if path.ends_with(".json") {
            fosm_explore::report_json(&fosm_explore::ExploreReport {
                schema_version: fosm_explore::SCHEMA_VERSION,
                configs,
                workloads: workload_names.clone(),
                variants: variant_labels.clone(),
                frontier: rows,
            })
        } else {
            fosm_explore::frontier_csv(&rows)
        };
        std::fs::write(path, rendered).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("frontier written to {path}");
    }

    let sim_check: usize = args.flag_or("sim-check", 0usize)?;
    if sim_check > 0 {
        let mut corners = Vec::new();
        for point in frontier.corners(sim_check) {
            let c = &point.config;
            corners.push(fosm_validate::CornerSpec {
                label: format!(
                    "{} w{}/win{}/rob{}/d{}/l2-{}/mem{}",
                    workload_names[point.workload as usize],
                    c.width,
                    c.win_size,
                    c.rob_size,
                    c.pipe_depth,
                    c.l2_latency,
                    c.mem_latency
                ),
                config: corner_config(&point, &variants)?,
                bench: specs[point.workload as usize].clone(),
            });
        }
        let results = fosm_validate::check_corners(
            store,
            &corners,
            insts,
            seed,
            &ToleranceSpec::fuzz(),
            threads,
        )
        .map_err(|e| format!("sim-check failed to run: {e}"))?;
        let mut failed = 0usize;
        for r in &results {
            let total = r.result.row(fosm_validate::Component::Total);
            let status = if r.passed() {
                "ok"
            } else {
                failed += 1;
                "FAIL"
            };
            println!(
                "sim-check {}: {status} (model {:.4} vs sim {:.4} CPI)",
                r.label, total.model, total.sim
            );
        }
        if failed > 0 {
            return Err(format!(
                "sim-check: {failed} of {} corner(s) outside tolerance",
                results.len()
            ));
        }
    }
    Ok(())
}
