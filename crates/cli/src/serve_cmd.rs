//! The daemon-facing subcommands: `fosm serve`, `fosm client`,
//! `fosm loadgen`, and `fosm top`.
//!
//! `serve` runs the model-as-a-service daemon from `fosm-serve`;
//! `client` speaks its protocol (or, with `--local`, executes the same
//! request in-process through the identical `Service` code path, which
//! is what makes daemon responses byte-comparable to one-shot runs);
//! `loadgen` drives a daemon with concurrent clients and records
//! latency/throughput into `BENCH_serve.json`; `top` polls the
//! daemon's telemetry snapshot and renders the phase histograms, pool
//! counters, and flight-recorder tail as a live table.

use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

use fosm_bench::disk::DiskCache;
use fosm_bench::store::ArtifactStore;
use fosm_serve::proto::{
    ExploreRequest, MachineSpec, ProfileRequest, Request, Response, ValidateRequest,
};
use fosm_serve::service::Service;

use crate::args::Parsed;

/// The daemon's artifact store: fresh, and disk-backed when
/// `FOSM_CACHE_DIR` is set (the cache-reuse contract).
fn env_store() -> Arc<ArtifactStore> {
    let store = ArtifactStore::new();
    if let Some(disk) = DiskCache::from_env() {
        store.attach_disk(Arc::new(disk));
    }
    Arc::new(store)
}

/// `fosm serve [--addr A] [--workers N] [--batch-window MS]
/// [--port-file P] [--no-telemetry]`
///
/// Runs until a client sends `shutdown`. Prints `listening on <addr>`
/// (with the real port when `--addr` ends in `:0`) before accepting,
/// and optionally writes the address to `--port-file` for scripts.
/// `--no-telemetry` turns the per-request histograms and flight
/// recorder off (the overhead-measurement baseline).
pub fn serve(args: Parsed) -> Result<(), String> {
    let addr = args.flag("addr").unwrap_or("127.0.0.1:0");
    let workers: usize = args
        .flag_or("workers", fosm_bench::par::available_threads())?
        .max(1);
    let window_ms: u64 = args.flag_or("batch-window", 2u64)?;
    let service = Arc::new(Service::new(
        env_store(),
        workers,
        Duration::from_millis(window_ms),
    ));
    if args.has("no-telemetry") {
        service.telemetry().set_enabled(false);
    }
    let handle =
        fosm_serve::server::start(service, addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("listening on {}", handle.addr());
    std::io::stdout()
        .flush()
        .map_err(|e| format!("cannot flush stdout: {e}"))?;
    if let Some(path) = args.flag("port-file") {
        std::fs::write(path, handle.addr().to_string())
            .map_err(|e| format!("cannot write port file {path}: {e}"))?;
    }
    handle.join();
    println!("daemon stopped");
    Ok(())
}

/// The machine spec from the standard machine flags (same names and
/// defaults as every other subcommand).
fn machine_spec(args: &Parsed) -> Result<MachineSpec, String> {
    let base = MachineSpec::default();
    Ok(MachineSpec {
        width: args.flag_or("width", base.width)?,
        window: args.flag_or("window", base.window)?,
        rob: args.flag_or("rob", base.rob)?,
        depth: args.flag_or("depth", base.depth)?,
        l2: args.flag_or("l2", base.l2)?,
        mem: args.flag_or("mem", base.mem)?,
    })
}

fn profile_request(args: &Parsed) -> Result<ProfileRequest, String> {
    Ok(ProfileRequest {
        bench: args.flag("bench").unwrap_or("gzip").to_string(),
        insts: args.flag_or("insts", 120_000u64)?,
        seed: args.flag_or("seed", 42u64)?,
        machine: machine_spec(args)?,
        probe: args.flag("probe").unwrap_or("full").to_string(),
    })
}

/// Parses a comma-separated `--{name}` u32 list; absent means empty
/// (the daemon substitutes its baseline-sweep values).
fn u32_list(args: &Parsed, name: &str) -> Result<Vec<u32>, String> {
    match args.flag(name) {
        None => Ok(Vec::new()),
        Some(raw) => raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<u32>()
                    .map_err(|e| format!("bad value in --{name}: {e}"))
            })
            .collect(),
    }
}

/// Builds the request a `fosm client <action>` invocation describes.
fn build_request(action: &str, args: &Parsed) -> Result<Request, String> {
    Ok(match action {
        "ping" => Request::Ping,
        "stats" => Request::Stats,
        "telemetry" => Request::Telemetry,
        "shutdown" => Request::Shutdown,
        "profile" => Request::Profile(profile_request(args)?),
        "model" => Request::Model(profile_request(args)?),
        "validate" => Request::Validate(ValidateRequest {
            bench: args.flag("bench").unwrap_or("gzip").to_string(),
            insts: args.flag_or("insts", 120_000u64)?,
            seed: args.flag_or("seed", 42u64)?,
            machine: machine_spec(args)?,
        }),
        "explore" => Request::Explore(ExploreRequest {
            bench: args.flag("bench").unwrap_or("gzip").to_string(),
            insts: args.flag_or("insts", 120_000u64)?,
            seed: args.flag_or("seed", 42u64)?,
            widths: u32_list(args, "widths")?,
            windows: u32_list(args, "windows")?,
            robs: u32_list(args, "robs")?,
            depths: u32_list(args, "depths")?,
            l2s: u32_list(args, "l2s")?,
            mems: u32_list(args, "mems")?,
        }),
        other => {
            return Err(format!(
                "unknown client action `{other}` (expected ping, stats, telemetry, \
                 shutdown, profile, model, validate, or explore)"
            ))
        }
    })
}

/// `fosm client <action> (--addr A | --local) [request flags]`
///
/// Sends one request and prints the response body. With `--local` the
/// request is executed in-process through the same `Service` code the
/// daemon runs, so the printed bytes are identical either way.
pub fn client(args: Parsed) -> Result<(), String> {
    let action = args.positional(
        0,
        "client action (ping|stats|telemetry|shutdown|profile|model|validate|explore)",
    )?;
    let req = build_request(action, &args)?;
    let response = if args.has("local") {
        let service = Service::local();
        let response = service.execute(&req);
        service.shutdown();
        response
    } else {
        let addr = args
            .flag("addr")
            .ok_or("--addr <host:port> is required (or use --local)")?;
        fosm_serve::client::call(addr, &req)?
    };
    match response {
        Response::Ok { body } => {
            print!("{body}");
            Ok(())
        }
        Response::Err { code, message } => Err(format!("{code}: {message}")),
    }
}

/// Runs one request as a fresh `fosm client --local` subprocess — the
/// honest one-shot baseline (new process, cold in-memory store). The
/// disk cache env is scrubbed so the baseline cannot warm itself.
fn one_shot_subprocess(req: &Request) -> Result<Response, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let p = match req {
        Request::Profile(p) | Request::Model(p) => p,
        other => return Err(format!("one-shot baseline cannot run {other:?}")),
    };
    let action = if matches!(req, Request::Profile(_)) {
        "profile"
    } else {
        "model"
    };
    let output = std::process::Command::new(exe)
        .args([
            "client",
            action,
            "--local",
            "--bench",
            &p.bench,
            "--insts",
            &p.insts.to_string(),
            "--seed",
            &p.seed.to_string(),
            "--probe",
            &p.probe,
        ])
        .env_remove("FOSM_CACHE_DIR")
        .output()
        .map_err(|e| format!("cannot spawn one-shot client: {e}"))?;
    if !output.status.success() {
        return Err(format!(
            "one-shot client failed: {}",
            String::from_utf8_lossy(&output.stderr)
        ));
    }
    Ok(Response::ok(
        String::from_utf8_lossy(&output.stdout).into_owned(),
    ))
}

/// `fosm loadgen --addr A [--clients N] [--requests M] [--insts N]
/// [--seed S] [--verify] [--seq] [--min-speedup X] [-o BENCH.json]
/// [--baseline BENCH.json] [--check]`
///
/// Drives the daemon with N concurrent clients sending M requests
/// each. `--verify` cross-checks every response byte-for-byte against
/// in-process execution; `--seq` also times the identical request
/// stream as sequential one-shot subprocesses and reports the speedup
/// (gated by `--min-speedup`). `-o` writes the criterion-format
/// baseline; `--baseline` + `--check` gate against a committed one.
pub fn loadgen(args: Parsed) -> Result<(), String> {
    use fosm_serve::loadgen;

    let addr = args.flag("addr").ok_or("--addr <host:port> is required")?;
    let clients: usize = args.flag_or("clients", 8usize)?.max(1);
    let per_client: usize = args.flag_or("requests", 8usize)?.max(1);
    let insts: u64 = args.flag_or("insts", 20_000u64)?;
    let seed: u64 = args.flag_or("seed", 42u64)?;
    let plan = loadgen::plan(clients, per_client, insts, seed);

    let oracle_service = if args.has("verify") {
        Some(Service::local())
    } else {
        None
    };
    let oracle_fn = oracle_service
        .as_ref()
        .map(|service| move |req: &Request| service.execute(req));
    let concurrent = loadgen::run_concurrent(
        addr,
        &plan,
        oracle_fn
            .as_ref()
            .map(|f| f as &(dyn Fn(&Request) -> Response + Sync)),
    )?;
    if let Some(service) = &oracle_service {
        service.shutdown();
    }

    let p50 = concurrent.percentile(50.0);
    let p99 = concurrent.percentile(99.0);
    println!(
        "concurrent: {} requests over {clients} clients in {:.3}s ({:.1} req/s{})",
        concurrent.requests,
        concurrent.wall.as_secs_f64(),
        concurrent.requests as f64 / concurrent.wall.as_secs_f64(),
        if args.has("verify") {
            ", all responses verified"
        } else {
            ""
        }
    );
    println!(
        "  latency p50 {:.1} ms, p99 {:.1} ms",
        p50.as_secs_f64() * 1e3,
        p99.as_secs_f64() * 1e3
    );
    // The bucketed view next to the exact one, so drift between the
    // shared histogram primitive and the oracle would show up right
    // here in the bench log.
    println!("  {}", concurrent.hist_summary("latency"));

    let mut entries = vec![
        ("serve/p50".to_string(), p50.as_nanos() as f64),
        ("serve/p99".to_string(), p99.as_nanos() as f64),
        ("serve/ns_per_req".to_string(), concurrent.ns_per_request()),
    ];

    if args.has("seq") {
        let sequential = loadgen::run_sequential(&plan, &one_shot_subprocess)?;
        let speedup = sequential.wall.as_secs_f64() / concurrent.wall.as_secs_f64();
        println!(
            "sequential one-shot: {} requests in {:.3}s ({:.1} req/s); speedup {speedup:.2}x",
            sequential.requests,
            sequential.wall.as_secs_f64(),
            sequential.requests as f64 / sequential.wall.as_secs_f64(),
        );
        entries.push((
            "oneshot/ns_per_req".to_string(),
            sequential.ns_per_request(),
        ));
        let min_speedup: f64 = args.flag_or("min-speedup", 0.0f64)?;
        if speedup < min_speedup {
            return Err(format!(
                "daemon speedup {speedup:.2}x is below the required {min_speedup:.2}x"
            ));
        }
    }

    if let Some(path) = args.flag("out") {
        std::fs::write(path, loadgen::bench_json("serve", &entries))
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("baseline written to {path}");
    }

    if let Some(baseline) = args.flag("baseline") {
        let body = std::fs::read_to_string(baseline)
            .map_err(|e| format!("cannot read baseline {baseline}: {e}"))?;
        let lines = loadgen::check_report(&entries, &body);
        let mut regressed = false;
        for line in &lines {
            regressed |= line.starts_with("REGRESSION");
            println!("serve: {line}");
        }
        if regressed && args.has("check") {
            return Err(format!(
                "serve latency regressed beyond {:.0}% of {baseline}",
                criterion::REGRESSION_LIMIT_PCT
            ));
        }
    }
    Ok(())
}

/// Reads a number out of the shim's JSON tree (the shim keeps numeric
/// literals as text); absent or non-numeric reads as 0 so a partial
/// snapshot degrades to zeros instead of failing the render.
fn json_u64(v: Option<&serde::Value>) -> u64 {
    match v {
        Some(serde::Value::Num(text)) => text.parse().unwrap_or(0),
        _ => 0,
    }
}

/// Reads a string out of the shim's JSON tree; absent reads as `?`.
fn json_str(v: Option<&serde::Value>) -> &str {
    match v {
        Some(serde::Value::Str(text)) => text.as_str(),
        _ => "?",
    }
}

/// Renders one telemetry snapshot as the `fosm top` table. Pure
/// string-building so tests can assert on the output without a
/// terminal.
fn render_top(addr: &str, body: &str) -> Result<String, String> {
    let v: serde::Value = serde_json::from_str(body.trim_end())
        .map_err(|e| format!("daemon sent malformed telemetry JSON: {e:?}"))?;
    let mut out = String::new();
    out.push_str(&format!(
        "fosm top — {addr} (telemetry schema v{}, {} requests recorded{})\n",
        json_u64(v.get("fosm_telemetry")),
        json_u64(v.get("requests")),
        if matches!(v.get("enabled"), Some(serde::Value::Bool(false))) {
            ", TELEMETRY DISABLED"
        } else {
            ""
        },
    ));
    if let Some(pool) = v.get("pool") {
        out.push_str(&format!(
            "pool : {} workers, {} executed, {} steals, {} parks, {} caller-runs, \
             queue depth {}\n",
            json_u64(pool.get("workers")),
            json_u64(pool.get("executed")),
            json_u64(pool.get("steals")),
            json_u64(pool.get("parks")),
            json_u64(pool.get("caller_runs")),
            json_u64(pool.get("queue_depth")),
        ));
    }
    if let Some(batch) = v.get("batch") {
        out.push_str(&format!(
            "batch: {} passes, {} requests coalesced\n",
            json_u64(batch.get("passes")),
            json_u64(batch.get("coalesced")),
        ));
    }
    out.push_str(&format!(
        "\n{:<32} {:>8} {:>12} {:>12} {:>12}\n",
        "histogram", "count", "p50 <=", "p99 <=", "max"
    ));
    if let Some(serde::Value::Map(hists)) = v.get("hists") {
        for (name, hist) in hists {
            out.push_str(&format!(
                "{:<32} {:>8} {:>12} {:>12} {:>12}\n",
                name,
                json_u64(hist.get("count")),
                json_u64(hist.get("p50")),
                json_u64(hist.get("p99")),
                json_u64(hist.get("max")),
            ));
        }
    }
    if let Some(flight) = v.get("flight") {
        out.push_str(&format!(
            "\nflight recorder (capacity {}, {} dropped):\n",
            json_u64(flight.get("capacity")),
            json_u64(flight.get("dropped")),
        ));
        if let Some(serde::Value::Seq(records)) = flight.get("records") {
            const TAIL: usize = 10;
            for rec in records.iter().skip(records.len().saturating_sub(TAIL)) {
                out.push_str(&format!(
                    "  #{:<6} {:<10} {:<14} total {:>8} us \
                     (queue {} + batch {} + exec {} us, {} B{})\n",
                    json_u64(rec.get("seq")),
                    json_str(rec.get("kind")),
                    json_str(rec.get("outcome")),
                    json_u64(rec.get("total_us")),
                    json_u64(rec.get("queue_us")),
                    json_u64(rec.get("batch_wait_us")),
                    json_u64(rec.get("exec_us")),
                    json_u64(rec.get("resp_bytes")),
                    if matches!(rec.get("cache_hit"), Some(serde::Value::Bool(true))) {
                        ", cache hit"
                    } else {
                        ""
                    },
                ));
            }
        }
    }
    Ok(out)
}

/// `fosm top --addr A [--interval MS] [--once] [--json]`
///
/// Polls the daemon's `telemetry` request and renders the per-kind
/// phase histograms, pool/batch counters, and flight-recorder tail.
/// Live mode redraws every `--interval` milliseconds until
/// interrupted; `--once` prints a single snapshot and exits;
/// `--json` prints the raw schema-versioned JSON body instead of the
/// table (`--once --json` is the CI-friendly form — the body lands on
/// stdout verbatim, ready for artifact upload).
pub fn top(args: Parsed) -> Result<(), String> {
    let addr = args.flag("addr").ok_or("--addr <host:port> is required")?;
    let interval_ms: u64 = args.flag_or("interval", 1000u64)?;
    let once = args.has("once");
    let json = args.has("json");
    loop {
        let body = match fosm_serve::client::call(addr, &Request::Telemetry)? {
            Response::Ok { body } => body,
            Response::Err { code, message } => return Err(format!("{code}: {message}")),
        };
        if json {
            print!("{body}");
        } else {
            let table = render_top(addr, &body)?;
            if !once {
                // ANSI clear + home, so live mode redraws in place.
                print!("\x1b[2J\x1b[H");
            }
            print!("{table}");
        }
        std::io::stdout()
            .flush()
            .map_err(|e| format!("cannot flush stdout: {e}"))?;
        if once {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(interval_ms.max(100)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_top_formats_every_section() {
        let body = r#"{"fosm_telemetry":1,"enabled":true,"requests":3,
            "pool":{"workers":4,"executed":7,"steals":2,"parks":9,
                    "caller_runs":1,"queue_depth":0},
            "batch":{"passes":5,"coalesced":2},
            "hists":{"serve.total_us.ping":{"count":3,"sum":30,"min":8,
                     "max":12,"p50":15,"p99":15,"buckets":{"4":3}}},
            "flight":{"capacity":256,"dropped":0,"records":[
                {"seq":1,"kind":"ping","outcome":"ok","queue_us":1,
                 "batch_wait_us":0,"exec_us":2,"respond_us":1,
                 "total_us":9,"resp_bytes":5,"cache_hit":true}]}}"#;
        let table = render_top("127.0.0.1:9", body).expect("renders");
        assert!(
            table.starts_with("fosm top — 127.0.0.1:9 (telemetry schema v1, 3 requests"),
            "{table}"
        );
        assert!(
            table.contains("pool : 4 workers, 7 executed, 2 steals"),
            "{table}"
        );
        assert!(
            table.contains("batch: 5 passes, 2 requests coalesced"),
            "{table}"
        );
        assert!(table.contains("serve.total_us.ping"), "{table}");
        assert!(
            table.contains("flight recorder (capacity 256, 0 dropped)"),
            "{table}"
        );
        assert!(table.contains("cache hit"), "{table}");
    }

    #[test]
    fn render_top_flags_disabled_telemetry_and_rejects_garbage() {
        let body = r#"{"fosm_telemetry":1,"enabled":false,"requests":0,
            "hists":{},"flight":{"capacity":256,"dropped":0,"records":[]}}"#;
        let table = render_top("a:1", body).expect("renders");
        assert!(table.contains("TELEMETRY DISABLED"), "{table}");
        assert!(render_top("a:1", "not json").is_err());
    }
}
