//! `fosm` — command-line interface to the first-order model toolchain.
//!
//! ```text
//! fosm record  --bench gzip --insts 500000 --seed 42 -o gzip.trc
//! fosm stats   gzip.trc
//! fosm profile gzip.trc -o gzip-profile.json
//! fosm model   gzip-profile.json [--width 4 --window 48 --rob 128 --depth 5]
//! fosm simulate gzip.trc [--depth 5 --width 4]
//! fosm bench-list
//! ```
//!
//! Traces use the compact binary format of `fosm_trace::io`; profiles
//! are JSON (`serde_json`), so they can be archived, diffed, and fed
//! back into `fosm model` without re-profiling.

use std::fs::File;
use std::io::{BufReader, BufWriter};
use std::process::ExitCode;

mod args;
mod commands;
mod serve_cmd;

fn main() -> ExitCode {
    let argv = strip_global_flags(std::env::args().skip(1).collect());
    let result = run(argv);
    let tracer = fosm_obs::tracer();
    if tracer.enabled() {
        if let Some(path) = tracer.path() {
            if let Err(e) = tracer.flush_to_path(&path) {
                eprintln!(
                    "warning: cannot write miss-event trace {}: {e}",
                    path.display()
                );
            }
        }
    }
    fosm_obs::emit("fosm");
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Removes the global `--metrics <path>` and `--trace <path>` flags
/// (either `--flag value` or `--flag=value`, any position) from the
/// command line, pointing the observability sink / miss-event tracer
/// at them. Handled here so every subcommand accepts the flags without
/// threading them through the per-command parsers.
fn strip_global_flags(argv: Vec<String>) -> Vec<String> {
    let mut rest = Vec::with_capacity(argv.len());
    let mut iter = argv.into_iter();
    while let Some(arg) = iter.next() {
        if let Some(path) = arg.strip_prefix("--metrics=") {
            fosm_obs::set_sink(fosm_obs::Sink::JsonFile(path.into()));
        } else if arg == "--metrics" {
            if let Some(path) = iter.next() {
                fosm_obs::set_sink(fosm_obs::Sink::JsonFile(path.into()));
            }
        } else if let Some(path) = arg.strip_prefix("--trace=") {
            fosm_obs::tracer().enable_to(Some(path.into()));
        } else if arg == "--trace" {
            if let Some(path) = iter.next() {
                fosm_obs::tracer().enable_to(Some(path.into()));
            }
        } else {
            rest.push(arg);
        }
    }
    rest
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let Some(command) = argv.first() else {
        print_usage();
        return Err("no command given".into());
    };
    fosm_obs::meta_set("command", command);
    let _span = fosm_obs::span(&format!("cli.{command}"));
    let rest = &argv[1..];
    match command.as_str() {
        "record" => commands::record(args::Parsed::new(rest)?),
        "corpus" => commands::corpus(args::Parsed::new(rest)?),
        "stats" => commands::stats(args::Parsed::new(rest)?),
        "profile" => commands::profile(args::Parsed::new(rest)?),
        "model" => commands::model(args::Parsed::new(rest)?),
        "simulate" => commands::simulate(args::Parsed::new(rest)?),
        "validate" => commands::validate(args::Parsed::new(rest)?),
        "explore" => commands::explore(args::Parsed::new(rest)?),
        "trace" => commands::trace(args::Parsed::new(rest)?),
        "metrics" => commands::metrics(args::Parsed::new(rest)?),
        "serve" => serve_cmd::serve(args::Parsed::new(rest)?),
        "client" => serve_cmd::client(args::Parsed::new(rest)?),
        "loadgen" => serve_cmd::loadgen(args::Parsed::new(rest)?),
        "top" => serve_cmd::top(args::Parsed::new(rest)?),
        "bench-list" => commands::bench_list(),
        "help" | "--help" | "-h" => {
            print_usage();
            Ok(())
        }
        other => Err(format!("unknown command `{other}` (try `fosm help`)")),
    }
}

fn print_usage() {
    eprintln!(
        "fosm — first-order superscalar processor model toolchain

USAGE:
    fosm record  --bench <name> [--insts N] [--seed S] -o <trace.trc>
    fosm corpus  build (--bench <name> [--insts N] [--seed S]
                        | --from <trace.trc>) -o <corpus.fct>
    fosm corpus  info <corpus.fct>
    fosm corpus  verify <corpus.fct>
    fosm stats   <trace.trc>
    fosm profile <trace.trc|corpus.fct> [-o <profile.json>]
                 [--probes LIST] [machine flags]
    fosm model   <profile.json> [machine flags]
    fosm simulate <trace.trc> [machine flags] [--ideal]
    fosm validate [validation flags] [machine flags]
    fosm explore [explore flags]
    fosm trace   <bench> [--insts N] [--seed S] [--top K]
                 [--chrome <out.json>] [machine flags]
    fosm metrics diff <a.json> <b.json> [--max-regress PCT]
    fosm serve   [serve flags]
    fosm client  <action> (--addr HOST:PORT | --local) [request flags]
    fosm loadgen --addr HOST:PORT [loadgen flags]
    fosm top     --addr HOST:PORT [--interval MS] [--once] [--json]
    fosm bench-list

    Any command also accepts --metrics <path> to write a JSON run
    manifest (counters, span timings) there; FOSM_METRICS=human|json
    selects a stderr sink instead. --trace <path> (or FOSM_TRACE)
    records detailed-simulator miss events to Chrome trace-event JSON.

MACHINE FLAGS (default: the paper's baseline):
    --width N     issue width            (4)
    --window N    issue-window entries   (48)
    --rob N       reorder-buffer entries (128)
    --depth N     front-end stages       (5)
    --l2 N        L2 latency, cycles     (8)
    --mem N       memory latency, cycles (200)

VALIDATION FLAGS (fosm validate):
    --insts N       trace length per workload          (120000)
    --seed S        workload generator seed            (42)
    --threads N     parallel validation workers        (all cores)
    --bench NAME    validate one workload only         (all 12)
    --tol SPEC      tolerance overrides, e.g. branch=0.3:0.05,total=0.1
    --baseline P    load tolerance bands from a JSON file
    --check         exit non-zero on any out-of-band component
    --report P      write the full JSON validation report to P
    --statsim       also run the statistical-simulation baseline
    --corpus LIST   validate comma-separated FOSMTRC1 corpus files
                    (sharded across --threads workers) instead of the
                    synthetic workload suite
    --fuzz N        differential-fuzz N random machines instead
    --fuzz-seed S   fuzzer RNG seed
    --fuzz-repro J  replay one fuzz case from its JSON form

EXPLORE FLAGS (fosm explore):
    --bench NAME    workload to sweep; `all` for the suite    (gzip)
    --insts N       trace length per workload                 (120000)
    --seed S        workload generator seed                   (42)
    --threads N     parallel sweep shards                     (all cores)
    --widths L --windows L --robs L --depths L --l2s L --mems L
                    comma-separated machine-grid axes (baseline sweep)
    --icaches L --dcaches L   cache geometries, e.g. 8k:4:64,16k:2:64
    --predictors L  predictor axis, e.g. gshare:13,bimodal:10
    --top K         frontier corner points to print           (10)
    --frontier      print the full frontier as CSV on stdout
    --export P      write the frontier to P (.json report or CSV)
    --sim-check N   re-simulate N frontier corners and gate them

SERVE FLAGS (fosm serve — model-as-a-service daemon):
    --addr A          listen address            (127.0.0.1:0 = any port)
    --workers N       worker-pool threads       (all cores)
    --batch-window MS request-batching window   (2)
    --port-file P     write the bound address to P
    --no-telemetry    disable per-request histograms + flight recorder
    Set FOSM_CACHE_DIR to persist trace/profile artifacts on disk
    across restarts (FOSM_CACHE_MAX_BYTES caps the cache size).
    FOSM_FLIGHT_CAP sets the flight-recorder ring size (default 256).

TOP FLAGS (fosm top — live daemon telemetry):
    --interval MS     refresh period in live mode        (1000)
    --once            print one snapshot and exit
    --json            print the raw schema-versioned telemetry JSON
                      body instead of the table (--once --json is the
                      CI-friendly form)

CLIENT ACTIONS (fosm client — one request per invocation):
    ping | stats | telemetry | shutdown
    profile | model      [--bench NAME] [--insts N] [--seed S]
                         [--probe full|ideal|branch|icache|dcache]
                         [machine flags]
    validate             [--bench NAME] [--insts N] [--seed S] [machine flags]
    explore              [--bench NAME] [--insts N] [--seed S]
                         [--widths L --windows L --robs L --depths L
                          --l2s L --mems L]
    --local executes the request in-process through the exact daemon
    code path (byte-identical output, no server needed).

LOADGEN FLAGS (fosm loadgen — daemon latency/throughput):
    --clients N       concurrent client connections      (8)
    --requests M      requests per client                (8)
    --insts N         trace length per request           (20000)
    --seed S          workload generator seed            (42)
    --verify          byte-compare every response to in-process execution
    --seq             also time the stream as sequential one-shot
                      subprocesses and report the daemon's speedup
    --min-speedup X   fail below X-fold speedup (with --seq)
    -o P              write BENCH_serve.json-format baseline to P
    --baseline P      compare against a committed baseline
    --check           exit non-zero on any >25% latency regression

TRACE FLAGS (fosm trace):
    --insts N     trace length                         (120000)
    --seed S      workload generator seed              (42)
    --top K       worst-attributed events to print     (10)
    --chrome P    write Chrome trace-event JSON to P (Perfetto-loadable)

EXTENSION FLAGS (paper §7 features):
    --prefetch N  next-line data prefetch lines      (profile, simulate)
    --tlb N       data TLB with N entries            (profile, simulate)
    --clusters K  K-cluster issue window             (simulate)
    --forward D   inter-cluster forwarding, cycles   (simulate; default 1)
    --fu          alpha-like functional-unit limits  (simulate)
    --buffer N    N-entry instruction fetch buffer   (simulate)
    --sample S --warmup W --period P   sampled profiling (profile)
    --probes LIST  comma list of probe variants profiled from ONE fused
                   trace replay (profile): full, ideal, branch, icache,
                   dcache — e.g. --probes full,ideal,branch; emits a
                   JSON array in list order"
    );
}

/// Opens a file for buffered reading with a contextual error.
pub(crate) fn open_in(path: &str) -> Result<BufReader<File>, String> {
    File::open(path)
        .map(BufReader::new)
        .map_err(|e| format!("cannot open {path}: {e}"))
}

/// Opens a file for buffered writing with a contextual error.
pub(crate) fn open_out(path: &str) -> Result<BufWriter<File>, String> {
    File::create(path)
        .map(BufWriter::new)
        .map_err(|e| format!("cannot create {path}: {e}"))
}
