//! End-to-end tests of the `fosm` binary (record → stats → profile →
//! model → simulate), driven through the real executable.

use std::process::{Command, Output};

fn fosm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fosm"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("fosm-cli-test-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

#[test]
fn full_pipeline_record_profile_model_simulate() {
    let trace = tmp("pipe.trc");
    let profile = tmp("pipe.json");

    let out = fosm(&[
        "record", "--bench", "gzip", "--insts", "30000", "-o", &trace,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("30000 instructions"));

    let out = fosm(&["stats", &trace]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("conditional branches"));

    let out = fosm(&["profile", &trace, "-o", &profile]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = fosm(&["model", &profile]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("total"), "{text}");
    assert!(text.contains("IPC"));

    let out = fosm(&["simulate", &trace]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("CPI"));

    // Machine flags flow through.
    let out = fosm(&["model", &profile, "--depth", "20"]);
    assert!(out.status.success());

    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&profile);
}

#[test]
fn bench_list_names_all_twelve() {
    let out = fosm(&["bench-list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    for name in [
        "bzip", "crafty", "eon", "gap", "gcc", "gzip", "mcf", "parser", "perl", "twolf", "vortex",
        "vpr",
    ] {
        assert!(text.contains(name), "missing {name} in:\n{text}");
    }
}

#[test]
fn helpful_errors() {
    let out = fosm(&["record", "--bench", "nonexistent", "-o", "/tmp/x.trc"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));

    let out = fosm(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = fosm(&["stats", "/definitely/not/a/file.trc"]);
    assert!(!out.status.success());

    let out = fosm(&["model", "--width"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));

    let out = fosm(&[]);
    assert!(!out.status.success());
}

#[test]
fn invalid_machine_flags_are_rejected() {
    let trace = tmp("flags.trc");
    let out = fosm(&["record", "--bench", "bzip", "--insts", "1000", "-o", &trace]);
    assert!(out.status.success());
    // window > rob is structurally invalid.
    let out = fosm(&["simulate", &trace, "--window", "256", "--rob", "128"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot exceed"));
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn extension_flags_flow_through() {
    let trace = tmp("ext.trc");
    let out = fosm(&[
        "record", "--bench", "twolf", "--insts", "20000", "-o", &trace,
    ]);
    assert!(out.status.success());

    // Extended simulation runs and reports TLB misses.
    let out = fosm(&[
        "simulate",
        &trace,
        "--clusters",
        "2",
        "--fu",
        "--buffer",
        "16",
        "--tlb",
        "32",
        "--prefetch",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Sampled profiling with warm-up.
    let out = fosm(&[
        "profile", &trace, "--sample", "2000", "--warmup", "4000", "--period", "10000",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"instructions\": 4000"));

    // Invalid cluster geometry is caught.
    let out = fosm(&["simulate", &trace, "--clusters", "3"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_file(&trace);
}

#[test]
fn validate_runs_the_differential_harness() {
    // One benchmark at a short trace keeps this fast; the full
    // 12-workload sweep at the tuned length is the CI accuracy gate.
    let out = fosm(&[
        "validate",
        "--bench",
        "gzip",
        "--insts",
        "30000",
        "--threads",
        "1",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("component status"), "{text}");
    assert!(text.contains("gzip"), "{text}");
    assert!(text.contains("mean |total CPI error|"), "{text}");
}

#[test]
fn validate_check_gates_on_tolerance() {
    // An absurdly tight band must trip the gate and exit non-zero...
    let out = fosm(&[
        "validate",
        "--bench",
        "gzip",
        "--insts",
        "30000",
        "--threads",
        "1",
        "--tol",
        "all=0.0001:0",
        "--check",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("accuracy gate failed"), "{err}");
    assert!(err.contains("VIOLATION"), "{err}");

    // ...and a wide-open band must pass.
    let out = fosm(&[
        "validate",
        "--bench",
        "gzip",
        "--insts",
        "30000",
        "--threads",
        "1",
        "--tol",
        "all=10:10",
        "--check",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn validate_writes_schema_versioned_reports() {
    let report = tmp("validate-report.json");
    let out = fosm(&[
        "validate",
        "--bench",
        "mcf",
        "--insts",
        "30000",
        "--threads",
        "1",
        "--report",
        &report,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&report).expect("report written");
    let parsed =
        fosm_validate::ValidationReport::from_json(&json).expect("schema-versioned report parses");
    assert_eq!(parsed.cases.len(), 1);
    assert_eq!(parsed.cases[0].bench, "mcf");
    assert!(!parsed.cases[0].components.is_empty());
    let _ = std::fs::remove_file(&report);
}

#[test]
fn validate_reads_tolerance_baselines() {
    // The committed CI baseline must parse and drive the gate.
    let baseline = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../validation/tolerances.json"
    );
    let out = fosm(&[
        "validate",
        "--bench",
        "gzip",
        "--insts",
        "30000",
        "--threads",
        "1",
        "--baseline",
        baseline,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // A missing or malformed baseline is a hard error.
    let out = fosm(&["validate", "--baseline", "/nope/missing.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read tolerance baseline"));
}

#[test]
fn validate_replays_fuzz_reproducers() {
    // The checked-in regression reproducer passes post-fix.
    let case = r#"{"width":1,"win_size":48,"rob_size":180,"pipe_depth":5,"l2_latency":8,"mem_latency":200,"bench_index":6,"seed":0}"#;
    let out = fosm(&["validate", "--fuzz-repro", case, "--insts", "30000"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("passes all invariants"));

    // Garbage JSON is rejected with a parse error, not a panic.
    let out = fosm(&["validate", "--fuzz-repro", "{not json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("malformed fuzz case"));
}

#[test]
fn trace_attributes_events_and_writes_chrome_json() {
    let chrome = tmp("trace-chrome.json");
    let out = fosm(&[
        "trace", "gzip", "--insts", "30000", "--top", "5", "--chrome", &chrome,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    // The per-class table, the exact-reconciliation contract line, and
    // the worst-attributed-events table are all part of the output.
    assert!(text.contains("branch"), "{text}");
    assert!(text.contains("reconciliation"), "{text}");
    assert!(text.contains("|Δ| 0.00e0"), "{text}");
    assert!(text.contains("top 5 worst-attributed events"), "{text}");

    let json = std::fs::read_to_string(&chrome).expect("chrome trace written");
    assert!(json.starts_with("{\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""));
    assert!(json.contains("\"predicted\""));
    let _ = std::fs::remove_file(&chrome);

    // Unknown benchmarks are rejected up front.
    let out = fosm(&["trace", "nonexistent"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown benchmark"));
}

#[test]
fn metrics_diff_gates_on_counter_growth() {
    let a = tmp("manifest-a.json");
    let b = tmp("manifest-b.json");
    std::fs::write(
        &a,
        r#"{"fosm_obs":1,"binary":"x","meta":{},"counters":{"sim.retired":1000},"gauges":{},"spans":{"run":{"count":1,"total_ns":100,"mean_ns":100.0}}}"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"{"fosm_obs":1,"binary":"x","meta":{},"counters":{"sim.retired":1500},"gauges":{},"spans":{"run":{"count":1,"total_ns":110,"mean_ns":110.0}}}"#,
    )
    .unwrap();

    // Ungated: report-only, exits zero.
    let out = fosm(&["metrics", "diff", &a, &b]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("sim.retired"), "{text}");
    assert!(text.contains("+50.0%"), "{text}");

    // Gated at 10%: the 50% counter growth must fail the run.
    let out = fosm(&["metrics", "diff", &a, &b, "--max-regress", "10"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("REGRESSION counters.sim.retired"), "{err}");

    // A generous bound passes (span growth is 10%, counter gate at 60%).
    let out = fosm(&["metrics", "diff", &a, &b, "--max-regress", "60"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Identical manifests: no differences, no gate.
    let out = fosm(&["metrics", "diff", &a, &a, "--max-regress", "0"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("no differences"));

    let out = fosm(&["metrics", "frobnicate"]);
    assert!(!out.status.success());

    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn metrics_diff_gates_on_hist_quantile_growth() {
    let a = tmp("manifest-hist-a.json");
    let b = tmp("manifest-hist-b.json");
    std::fs::write(
        &a,
        r#"{"fosm_obs":1,"binary":"x","meta":{},"counters":{},"gauges":{},"spans":{},"hists":{"serve.total_us.profile":{"count":10,"sum":100,"min":5,"max":31,"p50":15,"p99":31,"buckets":{"4":8,"5":2}}}}"#,
    )
    .unwrap();
    std::fs::write(
        &b,
        r#"{"fosm_obs":1,"binary":"x","meta":{},"counters":{},"gauges":{},"spans":{},"hists":{"serve.total_us.profile":{"count":20,"sum":900,"min":5,"max":127,"p50":63,"p99":127,"buckets":{"4":8,"6":10,"7":2}}}}"#,
    )
    .unwrap();

    // Ungated: the summary rows are reported, exit zero.
    let out = fosm(&["metrics", "diff", &a, &b]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("hists (count/p50/p99):"), "{text}");
    assert!(text.contains("serve.total_us.profile.p99"), "{text}");

    // Gated at 50%: p50 grew 320%, p99 grew ~310% — both must fail.
    let out = fosm(&["metrics", "diff", &a, &b, "--max-regress", "50"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("REGRESSION hists.serve.total_us.profile.p50"),
        "{err}"
    );
    assert!(
        err.contains("REGRESSION hists.serve.total_us.profile.p99"),
        "{err}"
    );
    // The doubled count is informational, never gated.
    assert!(!err.contains("serve.total_us.profile.count grew"), "{err}");

    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn stats_rejects_garbage_files() {
    let path = tmp("garbage.trc");
    std::fs::write(&path, b"this is not a trace").unwrap();
    let out = fosm(&["stats", &path]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("magic"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn explore_small_grid_prints_a_frontier_and_passes_sim_check() {
    // A small grid well inside the simulator-validated envelope, so the
    // frontier corners survive the `--sim-check` accuracy gate.
    let out = fosm(&[
        "explore",
        "--insts",
        "30000",
        "--widths",
        "2,4",
        "--windows",
        "16,32",
        "--robs",
        "64",
        "--depths",
        "3,5",
        "--l2s",
        "8",
        "--mems",
        "200",
        "--sim-check",
        "2",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("explored 8 configs"), "{text}");
    assert!(!text.contains("pareto frontier: 0 point(s)"), "{text}");
    assert!(text.contains("sim-check"), "{text}");
    assert!(!text.contains("FAIL"), "{text}");
    // Timing (machine-dependent) stays off stdout.
    assert!(!text.contains("evals/sec"), "{text}");
}

#[test]
fn explore_report_is_byte_identical_across_thread_counts() {
    let run = |threads: &str, export: &str| {
        let out = fosm(&[
            "explore",
            "--insts",
            "30000",
            "--threads",
            threads,
            "--widths",
            "2,4",
            "--windows",
            "16,32",
            "--robs",
            "64,128",
            "--depths",
            "3,5",
            "--l2s",
            "8",
            "--mems",
            "200",
            "--frontier",
            "--export",
            export,
        ]);
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = tmp("explore-t1.json");
    let b = tmp("explore-t8.json");
    // The only line allowed to differ is the one naming the export path.
    let strip_path_line = |s: String| {
        s.lines()
            .filter(|l| !l.starts_with("frontier written to"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let stdout_1 = strip_path_line(run("1", &a));
    let stdout_8 = strip_path_line(run("8", &b));
    assert_eq!(stdout_1, stdout_8, "stdout must not depend on --threads");
    let report_1 = std::fs::read_to_string(&a).unwrap();
    let report_8 = std::fs::read_to_string(&b).unwrap();
    assert_eq!(report_1, report_8, "exported report must be byte-equal");
    assert!(report_1.contains("\"schema_version\": 1"));
    let _ = std::fs::remove_file(&a);
    let _ = std::fs::remove_file(&b);
}

#[test]
fn explore_rejects_invalid_grids_up_front() {
    // window > rob is invalid at the extremes: caught before the sweep.
    let out = fosm(&[
        "explore",
        "--windows",
        "256",
        "--robs",
        "128",
        "--insts",
        "5000",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("window"), "{err}");
}

#[test]
fn validate_loads_tolerances_once_per_invocation() {
    let metrics = tmp("validate-tol-loads.json");
    let out = fosm(&[
        "validate",
        "--bench",
        "gzip",
        "--insts",
        "20000",
        "--metrics",
        &metrics,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        manifest.contains("\"cli.validate.tolerance_loads\":1"),
        "tolerance bands must be parsed exactly once: {manifest}"
    );
    let _ = std::fs::remove_file(&metrics);
}

#[test]
fn profile_probes_parse_the_machine_setup_once() {
    let trace = tmp("probes-once.trc");
    let out = fosm(&[
        "record", "--bench", "gzip", "--insts", "20000", "-o", &trace,
    ]);
    assert!(out.status.success());

    let metrics = tmp("probes-once.json");
    let profile = tmp("probes-once-profile.json");
    let out = fosm(&[
        "profile",
        &trace,
        "--probes",
        "full,ideal,branch,icache,dcache",
        "-o",
        &profile,
        "--metrics",
        &metrics,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let manifest = std::fs::read_to_string(&metrics).unwrap();
    assert!(
        manifest.contains("\"cli.profile.config_loads\":1"),
        "five probe variants must share one machine-flag parse: {manifest}"
    );
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&profile);
    let _ = std::fs::remove_file(&metrics);
}
