//! End-to-end tests of the daemon subcommands: `fosm serve` as a real
//! child process, `fosm client` over the wire and with `--local`, a
//! small `fosm loadgen` run with response verification, and `fosm top`
//! against the live telemetry endpoint.

use std::process::{Child, Command, Output, Stdio};
use std::time::{Duration, Instant};

fn fosm(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fosm"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp(name: &str) -> String {
    let mut p = std::env::temp_dir();
    p.push(format!("fosm-serve-cli-{}-{name}", std::process::id()));
    p.to_string_lossy().into_owned()
}

/// Starts `fosm serve` on an ephemeral port and waits for the port
/// file; returns the child and the bound address.
fn start_daemon(tag: &str, extra: &[&str]) -> (Child, String, String) {
    let port_file = tmp(&format!("{tag}.port"));
    let _ = std::fs::remove_file(&port_file);
    let mut args = vec![
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "2",
        "--port-file",
        &port_file,
    ];
    args.extend_from_slice(extra);
    let child = Command::new(env!("CARGO_BIN_EXE_fosm"))
        .args(&args)
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    let deadline = Instant::now() + Duration::from_secs(30);
    let addr = loop {
        if let Ok(addr) = std::fs::read_to_string(&port_file) {
            if !addr.trim().is_empty() {
                break addr.trim().to_string();
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote {port_file}");
        std::thread::sleep(Duration::from_millis(20));
    };
    (child, addr, port_file)
}

fn shutdown_daemon(mut child: Child, addr: &str, port_file: &str) {
    let out = fosm(&["client", "shutdown", "--addr", addr]);
    assert!(
        out.status.success(),
        "shutdown failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "shutting down\n");
    let status = child.wait().expect("daemon reaped");
    assert!(status.success(), "daemon exited {status:?}");
    let _ = std::fs::remove_file(port_file);
}

#[test]
fn daemon_round_trip_matches_local_execution_byte_for_byte() {
    let (child, addr, port_file) = start_daemon("roundtrip", &[]);

    let out = fosm(&["client", "ping", "--addr", &addr]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout), "pong\n");

    // The same request over the wire and through --local must print
    // identical bytes — the daemon runs the exact one-shot code path.
    for action in ["model", "profile"] {
        let req = [
            action, "--bench", "gzip", "--insts", "20000", "--probe", "branch",
        ];
        let mut wire = vec!["client"];
        wire.extend_from_slice(&req);
        wire.extend_from_slice(&["--addr", &addr]);
        let wire_out = fosm(&wire);
        assert!(
            wire_out.status.success(),
            "{}",
            String::from_utf8_lossy(&wire_out.stderr)
        );
        let mut local = vec!["client"];
        local.extend_from_slice(&req);
        local.push("--local");
        let local_out = fosm(&local);
        assert!(
            local_out.status.success(),
            "{}",
            String::from_utf8_lossy(&local_out.stderr)
        );
        assert_eq!(
            wire_out.stdout, local_out.stdout,
            "{action}: wire and --local bytes differ"
        );
        assert!(!wire_out.stdout.is_empty());
    }

    // Stats exposes the stable counter keys.
    let out = fosm(&["client", "stats", "--addr", &addr]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("serve.requests "), "{text}");
    assert!(text.contains("pool.workers 2"), "{text}");
    assert!(text.contains("store.profile_miss "), "{text}");

    shutdown_daemon(child, &addr, &port_file);
}

#[test]
fn client_errors_are_structured_and_nonzero() {
    let out = fosm(&[
        "client",
        "model",
        "--local",
        "--bench",
        "no-such-bench",
        "--insts",
        "20000",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("bad-request"), "{err}");
    assert!(err.contains("no-such-bench"), "{err}");

    let out = fosm(&["client", "frobnicate", "--local"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown client action"));

    // No --addr and no --local is a usage error, not a hang.
    let out = fosm(&["client", "ping"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
}

#[test]
fn loadgen_verifies_and_writes_a_criterion_baseline() {
    let (child, addr, port_file) = start_daemon("loadgen", &[]);
    let bench_path = tmp("BENCH_serve.json");

    let out = fosm(&[
        "loadgen",
        "--addr",
        &addr,
        "--clients",
        "4",
        "--requests",
        "3",
        "--insts",
        "8000",
        "--verify",
        "-o",
        &bench_path,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(text.contains("12 requests over 4 clients"), "{text}");
    assert!(text.contains("all responses verified"), "{text}");
    assert!(text.contains("latency p50"), "{text}");

    let body = std::fs::read_to_string(&bench_path).expect("baseline written");
    assert!(body.contains("\"group\": \"serve\""), "{body}");
    assert!(body.contains("\"serve/p50\""), "{body}");
    assert!(body.contains("\"serve/p99\""), "{body}");
    assert!(body.contains("\"serve/ns_per_req\""), "{body}");

    // Comparing against the baseline we just wrote reports no
    // regression (same numbers) and exits zero with --check.
    let out = fosm(&[
        "loadgen",
        "--addr",
        &addr,
        "--clients",
        "2",
        "--requests",
        "2",
        "--insts",
        "8000",
        "--baseline",
        &bench_path,
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("vs baseline"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    let _ = std::fs::remove_file(&bench_path);
    shutdown_daemon(child, &addr, &port_file);
}

#[test]
fn top_once_json_returns_populated_telemetry_snapshot() {
    let (child, addr, port_file) = start_daemon("top", &[]);

    // Put traffic of two kinds (plus one error) on the wire so the
    // per-kind histograms and the flight recorder have content.
    assert!(fosm(&["client", "ping", "--addr", &addr]).status.success());
    assert!(
        fosm(&["client", "profile", "--addr", &addr, "--bench", "gzip", "--insts", "8000",])
            .status
            .success()
    );
    assert!(!fosm(&[
        "client",
        "profile",
        "--addr",
        &addr,
        "--bench",
        "no-such-bench",
        "--insts",
        "8000",
    ])
    .status
    .success());

    // The CI-friendly form: one raw schema-versioned JSON body.
    let out = fosm(&["top", "--addr", &addr, "--once", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(body.contains("\"fosm_telemetry\":1"), "{body}");
    assert!(body.contains("\"serve.total_us.ping\""), "{body}");
    assert!(body.contains("\"serve.queue_us.profile\""), "{body}");
    assert!(body.contains("\"kind\":\"ping\""), "{body}");
    assert!(body.contains("\"outcome\":\"bad-request\""), "{body}");

    // `fosm client telemetry` prints the identical body shape.
    let out = fosm(&["client", "telemetry", "--addr", &addr]);
    assert!(out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stdout).contains("\"fosm_telemetry\":1"),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );

    // Table mode renders the histogram and flight sections.
    let out = fosm(&["top", "--addr", &addr, "--once"]);
    assert!(out.status.success());
    let table = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(table.starts_with("fosm top —"), "{table}");
    assert!(table.contains("serve.total_us.profile"), "{table}");
    assert!(table.contains("flight recorder"), "{table}");

    shutdown_daemon(child, &addr, &port_file);
}

#[test]
fn no_telemetry_flag_disables_recording() {
    let (child, addr, port_file) = start_daemon("notelem", &["--no-telemetry"]);
    assert!(fosm(&["client", "ping", "--addr", &addr]).status.success());
    let out = fosm(&["top", "--addr", &addr, "--once", "--json"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let body = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(body.contains("\"enabled\":false"), "{body}");
    assert!(!body.contains("\"serve.total_us.ping\""), "{body}");
    shutdown_daemon(child, &addr, &port_file);
}
