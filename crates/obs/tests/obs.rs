//! Integration tests for `fosm-obs`: span nesting and timing
//! monotonicity, counter aggregation across threads, and the JSON
//! sink's schema round-tripping through `serde_json`.

use std::time::Duration;

use fosm_obs::{Manifest, Registry, Sink};
use serde::Value;

// ------------------------------------------------------------- spans

#[test]
fn span_nesting_produces_slash_paths_at_any_depth() {
    let r = Registry::new();
    {
        let _a = r.span("a");
        {
            let _b = r.span("b");
            let _c = r.span("c");
        }
        let _d = r.span("d");
    }
    let spans = r.snapshot().spans;
    let paths: Vec<&str> = spans.keys().map(String::as_str).collect();
    assert_eq!(paths, ["a", "a/b", "a/b/c", "a/d"]);
    for stat in spans.values() {
        assert_eq!(stat.count, 1);
    }
}

#[test]
fn span_timings_are_monotone_with_nesting() {
    // A parent span's wall-clock time must dominate any child's: the
    // child's interval is strictly contained in the parent's.
    let r = Registry::new();
    {
        let _outer = r.span("outer");
        std::thread::sleep(Duration::from_millis(2));
        {
            let _inner = r.span("outer-inner");
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    let spans = r.snapshot().spans;
    let outer = spans["outer"];
    let inner = spans["outer/outer-inner"];
    assert!(inner.total_ns >= 2_000_000, "inner ran for >= its sleep");
    assert!(
        outer.total_ns >= inner.total_ns,
        "outer {} < inner {}",
        outer.total_ns,
        inner.total_ns
    );
}

#[test]
fn repeated_spans_accumulate_monotonically() {
    let r = Registry::new();
    let mut last_total = 0;
    for i in 1..=5u64 {
        {
            let _s = r.span("step");
        }
        let stat = r.snapshot().spans["step"];
        assert_eq!(stat.count, i);
        assert!(stat.total_ns >= last_total, "totals never decrease");
        last_total = stat.total_ns;
    }
}

// ---------------------------------------------------------- counters

#[test]
fn counters_aggregate_across_threads() {
    let r = Registry::new();
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let r = &r;
            scope.spawn(move || {
                for _ in 0..1_000 {
                    r.counter_add("shared", 1);
                }
                r.counter_add(&format!("worker.{t}"), t);
            });
        }
    });
    assert_eq!(r.counter("shared"), 8_000);
    for t in 0..8u64 {
        assert_eq!(r.counter(&format!("worker.{t}")), t);
    }
}

#[test]
fn spans_recorded_on_worker_threads_merge_into_one_registry() {
    let r = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let r = &r;
            scope.spawn(move || {
                // Each worker's stack is fresh: "work" is a root path.
                let _s = r.span("work");
            });
        }
    });
    assert_eq!(r.snapshot().spans["work"].count, 4);
}

// --------------------------------------------------------- JSON sink

/// Builds a representative registry exercising every manifest table.
fn populated_registry() -> Registry {
    let r = Registry::new();
    r.meta_set("seed", 42);
    r.meta_set("threads", 8);
    r.meta_set("binary-args", "300000 --threads 8");
    r.counter_add("store.trace.hits", 16);
    r.counter_add("store.trace.misses", 8);
    r.counter_add("cache.l1d.accesses", 123_456);
    r.gauge_set("wall_s", 2.125);
    r.record_span("report.table1", 1_000_000);
    r.record_span("report.table1/simulate", 900_000);
    r
}

#[test]
fn json_manifest_round_trips_through_serde_json() {
    let manifest = Manifest::new("report", populated_registry().snapshot());
    let line = manifest.to_json_line();

    // Parse with the workspace JSON parser — proves the hand-rolled
    // emitter produces well-formed JSON, not just JSON-looking text.
    let v: Value = serde_json::from_str(&line).expect("manifest parses");
    assert_eq!(v.get("fosm_obs"), Some(&Value::Num("1".into())));
    assert_eq!(v.get("binary"), Some(&Value::Str("report".into())));
    let meta = v.get("meta").expect("meta table");
    assert_eq!(meta.get("threads"), Some(&Value::Str("8".into())));
    let counters = v.get("counters").expect("counters table");
    assert_eq!(
        counters.get("store.trace.hits"),
        Some(&Value::Num("16".into()))
    );
    let spans = v.get("spans").expect("spans table");
    let t1 = spans.get("report.table1/simulate").expect("span entry");
    assert_eq!(t1.get("count"), Some(&Value::Num("1".into())));
    assert_eq!(t1.get("total_ns"), Some(&Value::Num("900000".into())));

    // Round trip: serialize the parsed tree and parse again; the
    // value trees must agree exactly (order and number text included).
    let reserialized = serde_json::to_string(&v).expect("value re-serializes");
    let v2: Value = serde_json::from_str(&reserialized).expect("round trip parses");
    assert_eq!(v, v2);
}

#[test]
fn json_escaping_survives_hostile_names() {
    let r = Registry::new();
    r.meta_set("path", "C:\\traces\n\"quoted\"");
    r.counter_add("weird \"name\"\twith\\escapes", 7);
    let line = Manifest::new("bin\"name", r.snapshot()).to_json_line();
    let v: Value = serde_json::from_str(&line).expect("escaped manifest parses");
    assert_eq!(v.get("binary"), Some(&Value::Str("bin\"name".into())));
    let counters = v.get("counters").expect("counters");
    assert_eq!(
        counters.get("weird \"name\"\twith\\escapes"),
        Some(&Value::Num("7".into()))
    );
    let meta = v.get("meta").expect("meta");
    assert_eq!(
        meta.get("path"),
        Some(&Value::Str("C:\\traces\n\"quoted\"".into()))
    );
}

#[test]
fn file_sink_manifest_parses_from_disk() {
    let path = std::env::temp_dir().join("fosm_obs_roundtrip.json");
    let manifest = Manifest::new("fig15", populated_registry().snapshot());
    Sink::JsonFile(path.clone()).emit(&manifest).unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_file(&path).unwrap();
    assert_eq!(body.lines().count(), 1, "single-line JSON");
    let v: Value = serde_json::from_str(body.trim_end()).expect("file manifest parses");
    assert_eq!(v.get("binary"), Some(&Value::Str("fig15".into())));
}
