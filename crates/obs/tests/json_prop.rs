//! Property tests for the public JSON surfaces: arbitrary hostile
//! metric names/values must always yield well-formed, round-trippable
//! manifests and Chrome trace exports. The unit-level properties of
//! the string/number emitters live in `src/json.rs`; these go through
//! [`Manifest::to_json_line`] and [`fosm_obs::chrome::export`] the
//! way real runs do.

use fosm_obs::event::{EventKind, TraceEvent};
use fosm_obs::{Manifest, Registry};
use proptest::prelude::*;
use serde::Value;

/// Strings biased toward JSON-hostile content: control characters,
/// quotes, backslashes, and multi-byte unicode.
fn hostile_string() -> impl Strategy<Value = String> {
    prop::collection::vec(
        prop_oneof![
            0u32..0x20,
            Just('"' as u32),
            Just('\\' as u32),
            Just('/' as u32),
            0x20u32..0x7f,
            0xa0u32..0x800,
        ],
        0..24,
    )
    .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
}

fn arb_event() -> impl Strategy<Value = TraceEvent> {
    (
        prop::sample::select(EventKind::ALL.to_vec()),
        any::<u64>(),
        0u64..1 << 40,
        0u64..1 << 12,
        prop_oneof![Just(f64::NAN), -1.0e6f64..1.0e6],
    )
        .prop_map(|(kind, inst, start, extent, predicted)| {
            TraceEvent::new(kind, inst, start, start + extent, extent).annotate(predicted)
        })
}

proptest! {
    /// A manifest built from hostile names, values, and non-finite
    /// gauges always parses, and the hostile strings survive intact.
    #[test]
    fn manifest_is_valid_json_under_hostile_input(
        binary in hostile_string(),
        key in hostile_string(),
        value in hostile_string(),
        gauge in prop_oneof![Just(f64::NAN), Just(f64::INFINITY), -1.0e12f64..1.0e12],
    ) {
        let r = Registry::new();
        r.meta_set(&key, &value);
        r.counter_add(&key, 3);
        r.gauge_set("g", gauge);
        r.record_span(&key, 1234);
        let line = Manifest::new(&binary, r.snapshot()).to_json_line();
        let v: Value = serde_json::from_str(&line).map_err(|e| {
            TestCaseError::fail(format!("manifest not valid JSON: {e}\n{line}"))
        })?;
        prop_assert_eq!(v.get("binary"), Some(&Value::Str(binary)));
        let meta = v.get("meta").expect("meta table");
        prop_assert_eq!(meta.get(&key), Some(&Value::Str(value)));
        if !gauge.is_finite() {
            prop_assert_eq!(
                v.get("gauges").and_then(|g| g.get("g")),
                Some(&Value::Null)
            );
        }
    }

    /// Chrome exports of arbitrary event soups are well-formed JSON
    /// and keep their event count and drop accounting.
    #[test]
    fn chrome_export_is_valid_json(
        events in prop::collection::vec(arb_event(), 0..32),
        dropped in 0u64..1000,
    ) {
        let out = fosm_obs::chrome::export(&events, dropped);
        let v: Value = serde_json::from_str(&out).map_err(|e| {
            TestCaseError::fail(format!("export not valid JSON: {e}"))
        })?;
        let Some(Value::Seq(entries)) = v.get("traceEvents") else {
            return Err(TestCaseError::fail("traceEvents missing"));
        };
        // 9 metadata records precede the event records.
        prop_assert_eq!(entries.len(), 9 + events.len());
        prop_assert_eq!(
            v.get("otherData").and_then(|d| d.get("dropped")),
            Some(&Value::Str(dropped.to_string()))
        );
    }
}
