//! Typed miss-event tracing.
//!
//! The first-order model decomposes CPI into a steady-state background
//! plus per-miss-event transient penalties (paper eq. 1). This module
//! is the observability counterpart of that decomposition: the
//! detailed simulator emits one [`TraceEvent`] per miss event — branch
//! mispredict, I-cache miss, long D-cache miss — carrying the dynamic
//! instruction index and the cycle extent of the transient, plus an
//! [`EventKind::IntervalBoundary`] marker closing the interval that
//! the event terminates. Consumers (the `fosm trace` subcommand, the
//! per-event validation diff, the Chrome exporter in
//! [`crate::chrome`]) later annotate each event with the analytical
//! model's predicted penalty for its class.
//!
//! # Cost model
//!
//! Tracing is **off by default** and must stay invisible when off:
//!
//! * The simulator checks [`Tracer::enabled`] — one relaxed atomic
//!   load — *once per run*, not per instruction or per event. When
//!   disabled it never allocates an event buffer.
//! * When enabled, events accumulate in a run-local `Vec` owned by the
//!   machine loop (no locking per event; miss events are rare by
//!   construction) and are flushed into the global ring in one
//!   [`Tracer::record_batch`] call at the end of the run.
//!
//! # Bounding and drop accounting
//!
//! The global buffer is bounded ([`Tracer::set_capacity`], default
//! [`DEFAULT_CAPACITY`]). Once full, further events are *dropped, not
//! wrapped*: for interval attribution the oldest events are the ones
//! that anchor the timeline, and a truncated-tail trace with an honest
//! drop counter beats a silently rotated one. Drops are counted in
//! [`TracerStats::dropped`] and reported by every exporter.
//!
//! Enabling: set `FOSM_TRACE=<path>` in the environment, or pass
//! `--trace <path>` to a figure binary / `fosm trace` (which call
//! [`Tracer::enable_to`]). `FOSM_TRACE_CAP=<n>` overrides the
//! capacity.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Default global event-buffer capacity. At roughly one miss event
/// per 30 instructions on the paper benchmarks this holds the full
/// event stream of a ~30M-instruction run; longer runs drop the tail
/// and say so.
pub const DEFAULT_CAPACITY: usize = 1 << 20;

/// Parses a `FOSM_TRACE_CAP` environment value: `None` or an empty
/// string means "not set" (`Ok(None)`); a positive integer is the
/// capacity; anything else — zero (which would drop every event),
/// non-numeric text, a value that overflows `usize` — is a structured
/// error naming the problem, so callers can warn instead of silently
/// mis-sizing the buffer.
pub fn parse_trace_cap(raw: Option<&str>) -> Result<Option<usize>, String> {
    let Some(raw) = raw else {
        return Ok(None);
    };
    let raw = raw.trim();
    if raw.is_empty() {
        return Ok(None);
    }
    match raw.parse::<usize>() {
        Ok(0) => Err("capacity 0 would drop every event".to_string()),
        Ok(cap) => Ok(Some(cap)),
        Err(e) => Err(format!("`{raw}` is not a valid event count: {e}")),
    }
}

/// The classes of miss event the simulator distinguishes, mirroring
/// the model's CPI decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EventKind {
    /// A mispredicted conditional branch: the front-end fetched down
    /// the wrong path from `start` until the branch resolved and the
    /// refilled pipeline reached the window again at `end`.
    BranchMispredict,
    /// An instruction-fetch miss: fetch stalled from `start` to `end`;
    /// `delta` is the miss delay charged (L2 or memory latency).
    ICacheMiss,
    /// A load that missed to main memory: issued at `start`, data back
    /// at `end`. Overlapping long misses each get their own event.
    LongDCacheMiss,
    /// Closes the interval ending at this miss event: `start`/`end`
    /// span the interval's cycles, `inst` is the cumulative retired
    /// instruction count at the boundary.
    IntervalBoundary,
}

impl EventKind {
    /// All kinds, in track order.
    pub const ALL: [EventKind; 4] = [
        EventKind::BranchMispredict,
        EventKind::ICacheMiss,
        EventKind::LongDCacheMiss,
        EventKind::IntervalBoundary,
    ];

    /// Stable lowercase name (used in exports and tables).
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BranchMispredict => "branch_mispredict",
            EventKind::ICacheMiss => "icache_miss",
            EventKind::LongDCacheMiss => "long_dcache_miss",
            EventKind::IntervalBoundary => "interval",
        }
    }

    /// Track index for trace viewers (one lane per event class).
    pub fn track(self) -> u64 {
        match self {
            EventKind::BranchMispredict => 1,
            EventKind::ICacheMiss => 2,
            EventKind::LongDCacheMiss => 3,
            EventKind::IntervalBoundary => 4,
        }
    }
}

/// One traced miss event (or interval boundary).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Event class.
    pub kind: EventKind,
    /// Dynamic instruction index the event is attributed to (fetch
    /// sequence number; cumulative retired count for boundaries).
    pub inst: u64,
    /// First cycle of the transient (inclusive).
    pub start: u64,
    /// Cycle at which the transient resolves (exclusive).
    pub end: u64,
    /// Miss delay charged by the machine, in cycles (L2/memory latency
    /// for cache events; 0 where not applicable).
    pub delta: u64,
    /// The analytical model's predicted penalty for this event's
    /// class, in cycles. The simulator cannot know it and records
    /// `NaN`; consumers annotate it via
    /// [`annotate`](fn@crate::event::TraceEvent::annotate)d copies.
    pub predicted: f64,
}

impl TraceEvent {
    /// A fresh, un-annotated event (predicted penalty = `NaN`).
    pub fn new(kind: EventKind, inst: u64, start: u64, end: u64, delta: u64) -> Self {
        TraceEvent {
            kind,
            inst,
            start,
            end,
            delta,
            predicted: f64::NAN,
        }
    }

    /// The event's cycle extent (`end - start`, saturating).
    pub fn extent(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// A copy carrying the model's predicted penalty.
    pub fn annotate(mut self, predicted: f64) -> Self {
        self.predicted = predicted;
        self
    }

    /// Deterministic ordering key: by onset, then extent, then
    /// instruction, then track. Thread-count independent because the
    /// simulator itself is.
    pub fn sort_key(&self) -> (u64, u64, u64, u64) {
        (self.start, self.end, self.inst, self.kind.track())
    }
}

/// Aggregate tracer accounting, surfaced in exports and the run
/// manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TracerStats {
    /// Events accepted into the buffer since the last [`Tracer::take`].
    pub recorded: u64,
    /// Events rejected because the buffer was full.
    pub dropped: u64,
    /// Current buffer capacity.
    pub capacity: usize,
}

#[derive(Debug)]
struct Inner {
    events: Vec<TraceEvent>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
    path: Option<PathBuf>,
}

/// The bounded event buffer. One global instance ([`Tracer::global`])
/// serves the whole process; tests construct their own with
/// [`Tracer::new`].
#[derive(Debug)]
pub struct Tracer {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// A fresh, disabled tracer with the default capacity.
    pub fn new() -> Self {
        Tracer {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(Inner {
                events: Vec::new(),
                capacity: DEFAULT_CAPACITY,
                recorded: 0,
                dropped: 0,
                path: None,
            }),
        }
    }

    /// The process-wide tracer. First use reads `FOSM_TRACE` (export
    /// path; enables tracing) and `FOSM_TRACE_CAP` (capacity). A
    /// malformed capacity — zero, non-numeric, overflowing — is
    /// reported on stderr and falls back to [`DEFAULT_CAPACITY`]
    /// rather than being silently ignored (or, for `0`, silently
    /// dropping every event).
    pub fn global() -> &'static Tracer {
        static TRACER: OnceLock<Tracer> = OnceLock::new();
        TRACER.get_or_init(|| {
            let t = Tracer::new();
            match parse_trace_cap(std::env::var("FOSM_TRACE_CAP").ok().as_deref()) {
                Ok(Some(cap)) => t.set_capacity(cap),
                Ok(None) => {}
                Err(why) => {
                    eprintln!(
                        "warning: ignoring FOSM_TRACE_CAP ({why}); \
                         using the default capacity of {DEFAULT_CAPACITY} events"
                    );
                }
            }
            if let Ok(path) = std::env::var("FOSM_TRACE") {
                if !path.is_empty() {
                    t.enable_to(Some(PathBuf::from(path)));
                }
            }
            t
        })
    }

    /// Whether tracing is on. One relaxed atomic load; the simulator
    /// checks this once per run.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Enables tracing, optionally bound to an export path (written by
    /// [`flush_to_path`](Tracer::flush_to_path) at session end).
    pub fn enable_to(&self, path: Option<PathBuf>) {
        {
            let mut inner = self.inner.lock().expect("tracer lock");
            if path.is_some() {
                inner.path = path;
            }
        }
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Disables tracing (buffered events are kept until taken).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// The export path bound by [`enable_to`](Tracer::enable_to), if any.
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.lock().expect("tracer lock").path.clone()
    }

    /// Rebounds the buffer. Shrinking below the current fill drops the
    /// tail (counted as dropped).
    pub fn set_capacity(&self, capacity: usize) {
        let mut inner = self.inner.lock().expect("tracer lock");
        inner.capacity = capacity;
        if inner.events.len() > capacity {
            let excess = (inner.events.len() - capacity) as u64;
            inner.events.truncate(capacity);
            inner.recorded -= excess;
            inner.dropped += excess;
        }
    }

    /// Moves a run-local batch into the buffer, draining `batch`.
    /// Events past capacity are dropped and counted.
    pub fn record_batch(&self, batch: &mut Vec<TraceEvent>) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let room = inner.capacity.saturating_sub(inner.events.len());
        let take = batch.len().min(room);
        inner.recorded += take as u64;
        inner.dropped += (batch.len() - take) as u64;
        inner.events.extend(batch.drain(..take));
        batch.clear();
    }

    /// Records a single event (convenience for tests and consumers).
    pub fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.lock().expect("tracer lock");
        if inner.events.len() < inner.capacity {
            inner.events.push(event);
            inner.recorded += 1;
        } else {
            inner.dropped += 1;
        }
    }

    /// Current accounting without draining.
    pub fn stats(&self) -> TracerStats {
        let inner = self.inner.lock().expect("tracer lock");
        TracerStats {
            recorded: inner.recorded,
            dropped: inner.dropped,
            capacity: inner.capacity,
        }
    }

    /// A copy of the buffered events, in recorded order.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.lock().expect("tracer lock").events.clone()
    }

    /// Drains the buffer, returning the events and the accounting for
    /// the drained window, and resets both counters.
    pub fn take(&self) -> (Vec<TraceEvent>, TracerStats) {
        let mut inner = self.inner.lock().expect("tracer lock");
        let stats = TracerStats {
            recorded: inner.recorded,
            dropped: inner.dropped,
            capacity: inner.capacity,
        };
        inner.recorded = 0;
        inner.dropped = 0;
        (std::mem::take(&mut inner.events), stats)
    }

    /// Drains the buffer and writes a Chrome trace-event JSON file to
    /// `path`. Counters `trace.events` / `trace.dropped` land in the
    /// global registry so the run manifest accounts for the trace.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when `path` is unwritable.
    pub fn flush_to_path(&self, path: &Path) -> std::io::Result<()> {
        let (events, stats) = self.take();
        crate::counter_add("trace.events", events.len() as u64);
        crate::counter_add("trace.dropped", stats.dropped);
        let json = crate::chrome::export(&events, stats.dropped);
        std::fs::write(path, json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_cap_zero_is_a_structured_error() {
        let err = parse_trace_cap(Some("0")).unwrap_err();
        assert!(err.contains("drop every event"), "{err}");
    }

    #[test]
    fn trace_cap_non_numeric_is_a_structured_error() {
        for bad in ["lots", "1e6", "-3", "0x100"] {
            let err = parse_trace_cap(Some(bad)).unwrap_err();
            assert!(err.contains(bad), "{err}");
        }
    }

    #[test]
    fn trace_cap_absent_or_valid_values_parse() {
        assert_eq!(parse_trace_cap(None), Ok(None));
        assert_eq!(parse_trace_cap(Some("")), Ok(None));
        assert_eq!(parse_trace_cap(Some("  ")), Ok(None));
        assert_eq!(parse_trace_cap(Some("4096")), Ok(Some(4096)));
        assert_eq!(parse_trace_cap(Some(" 17 ")), Ok(Some(17)));
    }

    fn ev(inst: u64) -> TraceEvent {
        TraceEvent::new(
            EventKind::BranchMispredict,
            inst,
            inst * 10,
            inst * 10 + 5,
            0,
        )
    }

    #[test]
    fn disabled_by_default_and_extent_saturates() {
        let t = Tracer::new();
        assert!(!t.enabled());
        assert_eq!(
            t.stats(),
            TracerStats {
                recorded: 0,
                dropped: 0,
                capacity: DEFAULT_CAPACITY
            }
        );
        let e = TraceEvent::new(EventKind::ICacheMiss, 1, 9, 3, 0);
        assert_eq!(e.extent(), 0);
        assert!(e.predicted.is_nan());
        assert_eq!(e.annotate(2.5).predicted, 2.5);
    }

    #[test]
    fn batch_respects_capacity_with_drop_accounting() {
        let t = Tracer::new();
        t.set_capacity(3);
        let mut batch: Vec<TraceEvent> = (0..5).map(ev).collect();
        t.record_batch(&mut batch);
        assert!(batch.is_empty());
        let stats = t.stats();
        assert_eq!(stats.recorded, 3);
        assert_eq!(stats.dropped, 2);
        let (events, taken) = t.take();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].inst, 0);
        assert_eq!(taken.dropped, 2);
        // Drained: counters reset, buffer reusable.
        assert_eq!(
            t.stats(),
            TracerStats {
                recorded: 0,
                dropped: 0,
                capacity: 3
            }
        );
    }

    #[test]
    fn single_record_and_shrink() {
        let t = Tracer::new();
        for i in 0..4 {
            t.record(ev(i));
        }
        assert_eq!(t.snapshot().len(), 4);
        t.set_capacity(2);
        let stats = t.stats();
        assert_eq!(stats.recorded, 2);
        assert_eq!(stats.dropped, 2);
        assert_eq!(t.snapshot().len(), 2);
        t.record(ev(9));
        assert_eq!(t.stats().dropped, 3);
    }

    #[test]
    fn enable_binds_path_once() {
        let t = Tracer::new();
        t.enable_to(Some(PathBuf::from("/tmp/a.json")));
        assert!(t.enabled());
        // Enabling again without a path keeps the old one.
        t.enable_to(None);
        assert_eq!(t.path(), Some(PathBuf::from("/tmp/a.json")));
        t.disable();
        assert!(!t.enabled());
    }

    #[test]
    fn sort_key_orders_by_onset_first() {
        let a = TraceEvent::new(EventKind::LongDCacheMiss, 7, 100, 400, 200);
        let b = TraceEvent::new(EventKind::BranchMispredict, 3, 120, 140, 0);
        assert!(a.sort_key() < b.sort_key());
    }
}
