//! Log2-bucketed histograms for latency-style distributions.
//!
//! A [`Histogram`] is a fixed array of 64 power-of-two buckets plus
//! count/sum/min/max, all atomics: recording is a handful of relaxed
//! atomic ops with no allocation and no lock, so it is safe on serve
//! hot paths. Bucket `0` holds the value `0`; bucket `b ≥ 1` holds
//! values in `[2^(b-1), 2^b)`, with bucket 63 absorbing everything
//! from `2^62` up. Quantiles are nearest-rank over the cumulative
//! bucket counts and return the chosen bucket's inclusive upper bound,
//! so a reported quantile is never below the true nearest-rank value
//! and never beyond the top of its bucket (a ≤2× relative error for
//! values ≥ 1).

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in the fixed layout.
pub const HIST_BUCKETS: usize = 64;

/// The bucket index `value` falls into: 0 for 0, else
/// `min(63, 64 - leading_zeros)`, i.e. one plus the position of the
/// highest set bit.
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `index` (what quantiles report).
pub fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// Inclusive lower bound of bucket `index`.
pub fn bucket_lower(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A concurrent log2-bucketed histogram. See the module docs for the
/// bucket layout. All methods take `&self`; recording uses relaxed
/// atomics only.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    /// `u64::MAX` until the first record.
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub const fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Folds a snapshot into this live histogram (the histogram-side
    /// counterpart of [`Registry::absorb`](crate::Registry::absorb)).
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for (bucket, n) in self.buckets.iter().zip(&snap.buckets) {
            if *n > 0 {
                bucket.fetch_add(*n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum.fetch_add(snap.sum, Ordering::Relaxed);
        self.min.fetch_min(snap.min_raw, Ordering::Relaxed);
        self.max.fetch_max(snap.max, Ordering::Relaxed);
    }

    /// Copies the current contents out. Concurrent recorders may land
    /// between field loads, so a snapshot taken during writes is only
    /// approximately consistent — exact once writers quiesce.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HIST_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(&self.buckets) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min_raw: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable and queryable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`bucket_of`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Smallest observed value, `u64::MAX` when empty (use [`min`](Self::min)).
    pub min_raw: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min_raw: u64::MAX,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observed value (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_raw
        }
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds `other` into `self`: buckets, count and sum accumulate,
    /// min/max widen.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (slot, v) in self.buckets.iter_mut().zip(&other.buckets) {
            *slot = slot.saturating_add(*v);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.min_raw = self.min_raw.min(other.min_raw);
        self.max = self.max.max(other.max);
    }

    /// Appends this snapshot as a JSON object: summary fields plus a
    /// sparse `buckets` map (only non-zero buckets, keyed by index) so
    /// empty tails cost nothing on the wire. Shared by the run
    /// manifest and the serve daemon's telemetry response.
    pub fn write_json(&self, out: &mut String) {
        out.push_str("{\"count\":");
        out.push_str(&self.count.to_string());
        out.push_str(",\"sum\":");
        out.push_str(&self.sum.to_string());
        out.push_str(",\"min\":");
        out.push_str(&self.min().to_string());
        out.push_str(",\"max\":");
        out.push_str(&self.max.to_string());
        out.push_str(",\"p50\":");
        out.push_str(&self.quantile(0.50).to_string());
        out.push_str(",\"p99\":");
        out.push_str(&self.quantile(0.99).to_string());
        out.push_str(",\"buckets\":{");
        let mut first = true;
        for (index, n) in self.buckets.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push('"');
            out.push_str(&index.to_string());
            out.push_str("\":");
            out.push_str(&n.to_string());
        }
        out.push_str("}}");
    }

    /// Nearest-rank quantile: for `q` in `[0, 1]`, the inclusive upper
    /// bound of the bucket holding the `ceil(q · count)`-th smallest
    /// observation (rank clamped to `[1, count]`). Returns 0 when
    /// empty. The result is always in the same bucket as the exact
    /// nearest-rank value, so the relative error is bounded by the
    /// bucket width (< 2× for values ≥ 1).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, n) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(*n);
            if seen >= rank {
                return bucket_upper(index);
            }
        }
        // Unreachable when bucket counts sum to `count`; fall back to
        // the widest answer for torn concurrent snapshots.
        bucket_upper(HIST_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exact nearest-rank quantile over raw values — the oracle the
    /// bucketed quantile is checked against.
    fn exact_nearest_rank(values: &[u64], q: f64) -> u64 {
        assert!(!values.is_empty());
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn bucket_layout_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 63);
        for b in 0..HIST_BUCKETS {
            assert_eq!(bucket_of(bucket_lower(b)), b, "lower bound of {b}");
            assert_eq!(bucket_of(bucket_upper(b)), b, "upper bound of {b}");
        }
    }

    #[test]
    fn record_tracks_count_sum_min_max() {
        let h = Histogram::new();
        assert!(h.snapshot().is_empty());
        assert_eq!(h.snapshot().min(), 0);
        for v in [7, 0, 1_000_000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 3);
        assert_eq!(snap.sum, 1_000_007);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max, 1_000_000);
        assert!((snap.mean() - 1_000_007.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_hit_expected_buckets() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        // p50 → rank 50 → value 50 → bucket 6 ([32, 64)) → upper 63.
        assert_eq!(snap.quantile(0.50), 63);
        // p99 → rank 99 → value 99 → bucket 7 ([64, 128)) → upper 127.
        assert_eq!(snap.quantile(0.99), 127);
        assert_eq!(snap.quantile(0.0), bucket_upper(bucket_of(1)));
        assert_eq!(snap.quantile(1.0), 127);
    }

    #[test]
    fn empty_quantile_is_zero() {
        assert_eq!(HistogramSnapshot::default().quantile(0.99), 0);
    }

    #[test]
    fn merge_accumulates_and_widens() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(4);
        a.record(9);
        b.record(1);
        b.record(1 << 40);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 4 + 9 + 1 + (1 << 40));
        assert_eq!(merged.min(), 1);
        assert_eq!(merged.max, 1 << 40);
        // Merging an empty snapshot changes nothing.
        let before = merged;
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
    }

    #[test]
    fn concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        h.record(t * 1_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 4_000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4_000);
        assert_eq!(snap.min(), 0);
        assert_eq!(snap.max, 3_999);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The bucketed quantile lands in exactly the bucket of the
            /// true nearest-rank value, for any data and any q.
            #[test]
            fn quantile_matches_exact_oracle_bucket(
                values in prop::collection::vec(
                    prop_oneof![0u64..16, 0u64..4096, 0u64..=u64::MAX],
                    1..200,
                ),
                q in 0.0f64..=1.0,
            ) {
                let h = Histogram::new();
                for &v in &values {
                    h.record(v);
                }
                let got = h.snapshot().quantile(q);
                let exact = exact_nearest_rank(&values, q);
                prop_assert_eq!(
                    bucket_of(got),
                    bucket_of(exact),
                    "q={} got={} exact={}",
                    q,
                    got,
                    exact
                );
                prop_assert!(got >= exact);
            }

            /// Merging two histograms equals recording everything into
            /// one.
            #[test]
            fn merge_equals_union(
                left in prop::collection::vec(0u64..1_000_000, 0..64),
                right in prop::collection::vec(0u64..1_000_000, 0..64),
            ) {
                let a = Histogram::new();
                let b = Histogram::new();
                let whole = Histogram::new();
                for &v in &left {
                    a.record(v);
                    whole.record(v);
                }
                for &v in &right {
                    b.record(v);
                    whole.record(v);
                }
                let mut merged = a.snapshot();
                merged.merge(&b.snapshot());
                prop_assert_eq!(merged, whole.snapshot());
            }
        }
    }
}
