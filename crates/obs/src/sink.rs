//! Pluggable metric sinks and process-wide sink selection.

use std::io::Write;
use std::path::PathBuf;
use std::sync::Mutex;

use crate::manifest::Manifest;

/// Where an emitted [`Manifest`] goes.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Sink {
    /// Discard everything (the default).
    #[default]
    Noop,
    /// Human-readable key/value lines on stderr.
    Human,
    /// A single-line JSON manifest on stderr.
    Json,
    /// A single-line JSON manifest written to a file.
    JsonFile(PathBuf),
}

impl Sink {
    /// Resolves the sink from the `FOSM_METRICS` environment
    /// variable:
    ///
    /// * unset, empty, `off`, `none`, `0` → [`Sink::Noop`]
    /// * `human` or `stderr` → [`Sink::Human`]
    /// * `json` → [`Sink::Json`]
    /// * `json:<path>` → [`Sink::JsonFile`]
    /// * anything else → [`Sink::Noop`] (with a stderr warning)
    pub fn from_env() -> Sink {
        match std::env::var("FOSM_METRICS") {
            Err(_) => Sink::Noop,
            Ok(value) => Sink::from_spec(&value),
        }
    }

    /// Parses a `FOSM_METRICS`-style sink specification.
    pub fn from_spec(spec: &str) -> Sink {
        match spec {
            "" | "off" | "none" | "0" => Sink::Noop,
            "human" | "stderr" => Sink::Human,
            "json" => Sink::Json,
            other => match other.strip_prefix("json:") {
                Some(path) if !path.is_empty() => Sink::JsonFile(PathBuf::from(path)),
                _ => {
                    eprintln!(
                        "fosm-obs: unrecognized FOSM_METRICS value `{other}` \
                         (expected off|human|json|json:<path>); metrics disabled"
                    );
                    Sink::Noop
                }
            },
        }
    }

    /// Writes `manifest` to this sink.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures of the underlying stream or file.
    pub fn emit(&self, manifest: &Manifest) -> std::io::Result<()> {
        match self {
            Sink::Noop => Ok(()),
            Sink::Human => std::io::stderr()
                .lock()
                .write_all(manifest.to_human().as_bytes()),
            Sink::Json => {
                let mut line = manifest.to_json_line();
                line.push('\n');
                std::io::stderr().lock().write_all(line.as_bytes())
            }
            Sink::JsonFile(path) => {
                let mut line = manifest.to_json_line();
                line.push('\n');
                std::fs::write(path, line)
            }
        }
    }
}

/// The process-wide sink choice. `None` until something asks, then
/// latched from the environment (or an explicit [`set_sink`]).
static SINK: Mutex<Option<Sink>> = Mutex::new(None);

/// Overrides the process-wide sink (e.g. from a `--metrics <path>`
/// command-line flag, which beats `FOSM_METRICS`).
pub fn set_sink(sink: Sink) {
    *SINK.lock().expect("obs sink lock") = Some(sink);
}

/// The process-wide sink, resolving `FOSM_METRICS` on first use.
pub fn sink() -> Sink {
    let mut slot = SINK.lock().expect("obs sink lock");
    slot.get_or_insert_with(Sink::from_env).clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Snapshot;

    #[test]
    fn spec_parsing() {
        assert_eq!(Sink::from_spec(""), Sink::Noop);
        assert_eq!(Sink::from_spec("off"), Sink::Noop);
        assert_eq!(Sink::from_spec("none"), Sink::Noop);
        assert_eq!(Sink::from_spec("0"), Sink::Noop);
        assert_eq!(Sink::from_spec("human"), Sink::Human);
        assert_eq!(Sink::from_spec("stderr"), Sink::Human);
        assert_eq!(Sink::from_spec("json"), Sink::Json);
        assert_eq!(
            Sink::from_spec("json:/tmp/m.json"),
            Sink::JsonFile(PathBuf::from("/tmp/m.json"))
        );
        // Unknown values fail safe to Noop.
        assert_eq!(Sink::from_spec("csv"), Sink::Noop);
        assert_eq!(Sink::from_spec("json:"), Sink::Noop);
    }

    #[test]
    fn json_file_sink_writes_one_line() {
        let path = std::env::temp_dir().join("fosm_obs_sink_test.json");
        let manifest = Manifest::new("t", Snapshot::default());
        Sink::JsonFile(path.clone()).emit(&manifest).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        assert_eq!(body, manifest.to_json_line() + "\n");
    }

    #[test]
    fn noop_emit_is_ok() {
        Sink::Noop
            .emit(&Manifest::new("t", Snapshot::default()))
            .unwrap();
    }
}
