//! The run manifest: one binary's metrics, rendered for a sink.

use crate::json;
use crate::registry::Snapshot;

/// Version tag of the JSON manifest schema (the `fosm_obs` field).
pub const SCHEMA_VERSION: u64 = 1;

/// A finished run's metrics: the binary's name plus a registry
/// snapshot. This is what a [`Sink`](crate::Sink) receives.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Name of the binary (or logical command) that ran.
    pub binary: String,
    /// The metrics recorded during the run.
    pub snapshot: Snapshot,
}

impl Manifest {
    /// Wraps a snapshot for emission.
    pub fn new(binary: &str, snapshot: Snapshot) -> Self {
        Manifest {
            binary: binary.to_string(),
            snapshot,
        }
    }

    /// Renders the single-line JSON form:
    ///
    /// ```json
    /// {"fosm_obs":1,"binary":"report","meta":{"seed":"42",…},
    ///  "counters":{"store.trace.hits":16,…},"gauges":{…},
    ///  "spans":{"report.table1":{"count":1,"total_ns":9,"mean_ns":9.0},…}}
    /// ```
    ///
    /// (shown wrapped here; the rendering contains no newlines). Maps
    /// are sorted by key, so the layout is stable run to run.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"fosm_obs\":");
        out.push_str(&SCHEMA_VERSION.to_string());
        out.push_str(",\"binary\":");
        json::push_str_literal(&mut out, &self.binary);
        out.push_str(",\"meta\":{");
        for (i, (k, v)) in self.snapshot.meta.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, k);
            out.push(':');
            json::push_str_literal(&mut out, v);
        }
        out.push_str("},\"counters\":{");
        for (i, (k, v)) in self.snapshot.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, k);
            out.push(':');
            out.push_str(&v.to_string());
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.snapshot.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, k);
            out.push(':');
            json::push_f64(&mut out, *v);
        }
        out.push_str("},\"spans\":{");
        for (i, (path, stat)) in self.snapshot.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, path);
            out.push_str(":{\"count\":");
            out.push_str(&stat.count.to_string());
            out.push_str(",\"total_ns\":");
            out.push_str(&stat.total_ns.to_string());
            out.push_str(",\"mean_ns\":");
            json::push_f64(&mut out, stat.mean_ns());
            out.push('}');
        }
        out.push_str("},\"hists\":{");
        for (i, (name, hist)) in self.snapshot.hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json::push_str_literal(&mut out, name);
            out.push(':');
            hist.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// Renders the human-readable multi-line form used by
    /// [`Sink::Human`](crate::Sink::Human).
    pub fn to_human(&self) -> String {
        let mut out = format!("fosm-obs · {}\n", self.binary);
        for (k, v) in &self.snapshot.meta {
            out.push_str(&format!("  meta     {k} = {v}\n"));
        }
        for (k, v) in &self.snapshot.counters {
            out.push_str(&format!("  counter  {k} = {v}\n"));
        }
        for (k, v) in &self.snapshot.gauges {
            out.push_str(&format!("  gauge    {k} = {v}\n"));
        }
        for (path, stat) in &self.snapshot.spans {
            out.push_str(&format!(
                "  span     {path}: {}× total {} (mean {})\n",
                stat.count,
                format_ns(stat.total_ns as f64),
                format_ns(stat.mean_ns()),
            ));
        }
        for (name, hist) in &self.snapshot.hists {
            out.push_str(&format!(
                "  hist     {name}: {}× p50 ≤{} p99 ≤{} min {} max {}\n",
                hist.count,
                hist.quantile(0.50),
                hist.quantile(0.99),
                hist.min(),
                hist.max,
            ));
        }
        out
    }
}

/// Human-scale duration rendering (`1.234 s`, `56.7 ms`, …).
fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> Manifest {
        let r = Registry::new();
        r.counter_add("store.trace.hits", 16);
        r.counter_add("store.trace.misses", 8);
        r.gauge_set("wall_s", 2.5);
        r.meta_set("threads", 8);
        r.record_span("report.table1", 1_500);
        r.hist_record("serve.total_us", 100);
        r.hist_record("serve.total_us", 3);
        Manifest::new("report", r.snapshot())
    }

    #[test]
    fn json_is_single_line_with_expected_fields() {
        let line = sample().to_json_line();
        assert!(!line.contains('\n'));
        assert!(line.starts_with("{\"fosm_obs\":1,\"binary\":\"report\""));
        assert!(line.contains("\"store.trace.hits\":16"));
        assert!(line.contains("\"threads\":\"8\""));
        assert!(
            line.contains("\"report.table1\":{\"count\":1,\"total_ns\":1500,\"mean_ns\":1500.0}")
        );
        // 100 → bucket 7 ([64, 128), upper 127); 3 → bucket 2 ([2, 4)).
        assert!(line.contains(
            "\"serve.total_us\":{\"count\":2,\"sum\":103,\"min\":3,\"max\":100,\
             \"p50\":3,\"p99\":127,\"buckets\":{\"2\":1,\"7\":1}}"
        ));
        assert!(line.ends_with("}}"));
    }

    #[test]
    fn empty_manifest_is_valid_shape() {
        let m = Manifest::new("x", Snapshot::default());
        assert_eq!(
            m.to_json_line(),
            "{\"fosm_obs\":1,\"binary\":\"x\",\"meta\":{},\"counters\":{},\"gauges\":{},\
             \"spans\":{},\"hists\":{}}"
        );
    }

    #[test]
    fn human_form_lists_every_kind() {
        let text = sample().to_human();
        assert!(text.contains("counter  store.trace.misses = 8"));
        assert!(text.contains("meta     threads = 8"));
        assert!(text.contains("span     report.table1: 1× total 1.500 µs"));
        assert!(text.contains("hist     serve.total_us: 2× p50 ≤3 p99 ≤127 min 3 max 100"));
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(format_ns(12.0), "12 ns");
        assert_eq!(format_ns(1.5e3), "1.500 µs");
        assert_eq!(format_ns(2.5e6), "2.500 ms");
        assert_eq!(format_ns(3.25e9), "3.250 s");
    }
}
