//! Minimal JSON string/number rendering.
//!
//! `fosm-obs` is intentionally dependency-free (even of the vendored
//! serde shims), so manifest emission hand-rolls the tiny JSON subset
//! it needs: escaped strings, `u64` integers, and finite `f64`s.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out`. Non-finite values (which
/// JSON cannot represent) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip rendering, and always
        // includes a decimal point or exponent — valid JSON either way.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
        assert_eq!(lit("ünïcøde"), "\"ünïcøde\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        let mut out = String::new();
        push_f64(&mut out, 2.5);
        out.push(' ');
        push_f64(&mut out, 3.0);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.5 3.0 null");
    }
}
