//! Minimal JSON string/number rendering.
//!
//! `fosm-obs` is intentionally dependency-free (even of the vendored
//! serde shims), so manifest emission hand-rolls the tiny JSON subset
//! it needs: escaped strings, `u64` integers, and finite `f64`s.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_literal(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` as a JSON number to `out`. Non-finite values (which
/// JSON cannot represent) become `null`.
pub fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // `{:?}` is Rust's shortest round-trip rendering, and always
        // includes a decimal point or exponent — valid JSON either way.
        out.push_str(&format!("{v:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &str) -> String {
        let mut out = String::new();
        push_str_literal(&mut out, s);
        out
    }

    #[test]
    fn escapes_specials() {
        assert_eq!(lit("plain"), "\"plain\"");
        assert_eq!(lit("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(lit("line\nbreak\ttab"), "\"line\\nbreak\\ttab\"");
        assert_eq!(lit("\u{1}"), "\"\\u0001\"");
        assert_eq!(lit("ünïcøde"), "\"ünïcøde\"");
    }

    #[test]
    fn numbers_round_trip_and_nonfinite_is_null() {
        let mut out = String::new();
        push_f64(&mut out, 2.5);
        out.push(' ');
        push_f64(&mut out, 3.0);
        out.push(' ');
        push_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.5 3.0 null");
    }

    #[test]
    fn every_control_char_is_escaped() {
        for code in 0u32..0x20 {
            let c = char::from_u32(code).unwrap();
            let rendered = lit(&c.to_string());
            // No raw control byte may survive into the literal.
            assert!(
                rendered.chars().all(|r| r as u32 >= 0x20),
                "U+{code:04X} leaked raw into {rendered:?}"
            );
            let back: String = serde_json::from_str(&rendered)
                .unwrap_or_else(|e| panic!("U+{code:04X} rendered invalid JSON {rendered:?}: {e}"));
            assert_eq!(back, c.to_string());
        }
    }

    #[test]
    fn nonfinite_variants_all_null() {
        for v in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut out = String::new();
            push_f64(&mut out, v);
            assert_eq!(out, "null");
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn hostile_string() -> impl Strategy<Value = String> {
            // Bias towards the troublesome region: controls, quotes,
            // backslashes, plus a unicode spread.
            prop::collection::vec(
                prop_oneof![
                    0u32..0x20,
                    Just('"' as u32),
                    Just('\\' as u32),
                    0x20u32..0x7f,
                    0xa0u32..0x2500,
                    Just(0x1f600), // outside the BMP
                ],
                0..48,
            )
            .prop_map(|codes| codes.into_iter().filter_map(char::from_u32).collect())
        }

        proptest! {
            /// Any string renders as a JSON literal that `serde_json`
            /// parses back to the original.
            #[test]
            fn string_literals_round_trip(s in hostile_string()) {
                let rendered = lit(&s);
                let back: String = serde_json::from_str(&rendered).map_err(|e| {
                    TestCaseError::fail(
                        format!("{s:?} rendered invalid JSON {rendered:?}: {e}"),
                    )
                })?;
                prop_assert_eq!(back, s);
            }

            /// Any `f64` renders as a valid JSON token: a number that
            /// parses back exactly, or `null` for non-finite values.
            #[test]
            fn floats_render_valid_json(
                v in prop_oneof![
                    -1.0e300f64..1.0e300,
                    Just(f64::NAN),
                    Just(f64::INFINITY),
                    Just(f64::NEG_INFINITY),
                    Just(-0.0f64),
                    Just(f64::MIN_POSITIVE),
                ],
            ) {
                let mut out = String::new();
                push_f64(&mut out, v);
                if v.is_finite() {
                    let back: f64 = serde_json::from_str(&out).map_err(|e| {
                        TestCaseError::fail(
                            format!("{v:?} rendered invalid JSON {out:?}: {e}"),
                        )
                    })?;
                    prop_assert_eq!(back, v);
                } else {
                    prop_assert_eq!(out.as_str(), "null");
                }
            }
        }
    }
}
