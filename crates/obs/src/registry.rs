//! The metric registry: named counters, gauges, metadata, and
//! aggregated span timings.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::hist::{Histogram, HistogramSnapshot};
use crate::span::SpanGuard;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Completed executions of this path.
    pub count: u64,
    /// Total wall-clock nanoseconds across all executions.
    pub total_ns: u64,
}

impl SpanStat {
    /// Mean nanoseconds per execution (0.0 before any completed).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

/// An immutable copy of a registry's contents, taken by
/// [`Registry::snapshot`]. `BTreeMap` keeps every view sorted by
/// name, so emitted manifests are stable run to run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Monotonic counter totals.
    pub counters: BTreeMap<String, u64>,
    /// Last-written gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Run metadata (binary arguments, seed, thread count, …).
    pub meta: BTreeMap<String, String>,
    /// Aggregated span timings keyed by `/`-joined path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Histogram snapshots keyed by name.
    pub hists: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.meta.is_empty()
            && self.spans.is_empty()
            && self.hists.is_empty()
    }
}

/// A set of named metrics. Most code uses the process-wide
/// [`Registry::global`] through the crate-level free functions; tests
/// and embedders can keep private instances.
///
/// All methods take `&self` and are safe to call from any thread;
/// aggregation is a short critical section per call, which is why
/// instrumented crates flush *aggregated* stats at run boundaries
/// instead of counting per instruction here.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    meta: Mutex<BTreeMap<String, String>>,
    spans: Mutex<BTreeMap<String, SpanStat>>,
    hists: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub const fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            meta: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            hists: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-wide registry.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    /// Adds `delta` to counter `name` (creating it at zero).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut counters = self.counters.lock().expect("obs counters lock");
        match counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Current value of counter `name` (0 if never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .lock()
            .expect("obs counters lock")
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.gauges
            .lock()
            .expect("obs gauges lock")
            .insert(name.to_string(), value);
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .lock()
            .expect("obs gauges lock")
            .get(name)
            .copied()
    }

    /// Records run metadata `name = value` (last write wins).
    pub fn meta_set(&self, name: &str, value: impl std::fmt::Display) {
        self.meta
            .lock()
            .expect("obs meta lock")
            .insert(name.to_string(), value.to_string());
    }

    /// Opens a span named `name`, nested under any span already open
    /// on this thread. Dropping the guard records the elapsed time.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        SpanGuard::begin(self, name)
    }

    /// Folds `elapsed_ns` into the aggregate for span `path`.
    /// (Normally called by [`SpanGuard`]'s `Drop`.)
    pub fn record_span(&self, path: &str, elapsed_ns: u64) {
        let mut spans = self.spans.lock().expect("obs spans lock");
        let stat = spans.entry(path.to_string()).or_default();
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed_ns);
    }

    /// The histogram named `name`, created empty on first use. The
    /// returned handle records lock-free, so hot loops should fetch it
    /// once instead of calling [`hist_record`](Self::hist_record) per
    /// observation.
    pub fn hist(&self, name: &str) -> Arc<Histogram> {
        let mut hists = self.hists.lock().expect("obs hists lock");
        Arc::clone(hists.entry(name.to_string()).or_default())
    }

    /// Records one observation into histogram `name` (creating it).
    pub fn hist_record(&self, name: &str, value: u64) {
        self.hist(name).record(value);
    }

    /// Snapshot of histogram `name`, or `None` if never recorded to.
    pub fn hist_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.hists
            .lock()
            .expect("obs hists lock")
            .get(name)
            .map(|h| h.snapshot())
    }

    /// Folds a snapshot of another registry into this one: counters
    /// span stats, and histograms accumulate, gauges and metadata take
    /// the snapshot's values (last write wins). A daemon uses this to
    /// aggregate finished per-request registries into its process-wide
    /// totals.
    pub fn absorb(&self, snap: &Snapshot) {
        {
            let mut hists = self.hists.lock().expect("obs hists lock");
            for (name, incoming) in &snap.hists {
                hists.entry(name.clone()).or_default().absorb(incoming);
            }
        }
        {
            let mut counters = self.counters.lock().expect("obs counters lock");
            for (name, delta) in &snap.counters {
                let slot = counters.entry(name.clone()).or_insert(0);
                *slot = slot.saturating_add(*delta);
            }
        }
        {
            let mut spans = self.spans.lock().expect("obs spans lock");
            for (path, stat) in &snap.spans {
                let slot = spans.entry(path.clone()).or_default();
                slot.count += stat.count;
                slot.total_ns = slot.total_ns.saturating_add(stat.total_ns);
            }
        }
        {
            let mut gauges = self.gauges.lock().expect("obs gauges lock");
            for (name, value) in &snap.gauges {
                gauges.insert(name.clone(), *value);
            }
        }
        let mut meta = self.meta.lock().expect("obs meta lock");
        for (name, value) in &snap.meta {
            meta.insert(name.clone(), value.clone());
        }
    }

    /// Copies the current contents out for emission or inspection.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self.counters.lock().expect("obs counters lock").clone(),
            gauges: self.gauges.lock().expect("obs gauges lock").clone(),
            meta: self.meta.lock().expect("obs meta lock").clone(),
            spans: self.spans.lock().expect("obs spans lock").clone(),
            hists: self
                .hists
                .lock()
                .expect("obs hists lock")
                .iter()
                .map(|(name, h)| (name.clone(), h.snapshot()))
                .collect(),
        }
    }

    /// Clears every table (used by tests sharing the global registry).
    pub fn reset(&self) {
        self.counters.lock().expect("obs counters lock").clear();
        self.gauges.lock().expect("obs gauges lock").clear();
        self.meta.lock().expect("obs meta lock").clear();
        self.spans.lock().expect("obs spans lock").clear();
        self.hists.lock().expect("obs hists lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        r.counter_add("a", u64::MAX);
        assert_eq!(r.counter("a"), u64::MAX);
    }

    #[test]
    fn gauges_overwrite() {
        let r = Registry::new();
        assert_eq!(r.gauge("g"), None);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        assert_eq!(r.gauge("g"), Some(2.5));
    }

    #[test]
    fn meta_renders_via_display() {
        let r = Registry::new();
        r.meta_set("threads", 8);
        r.meta_set("bench", "gzip");
        let snap = r.snapshot();
        assert_eq!(snap.meta["threads"], "8");
        assert_eq!(snap.meta["bench"], "gzip");
    }

    #[test]
    fn snapshot_is_detached() {
        let r = Registry::new();
        r.counter_add("a", 1);
        let snap = r.snapshot();
        r.counter_add("a", 1);
        assert_eq!(snap.counters["a"], 1);
        assert_eq!(r.counter("a"), 2);
    }

    #[test]
    fn reset_empties_everything() {
        let r = Registry::new();
        r.counter_add("a", 1);
        r.gauge_set("g", 0.0);
        r.meta_set("m", "v");
        r.record_span("s", 10);
        r.hist_record("h", 5);
        assert!(!r.snapshot().is_empty());
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn hists_record_and_snapshot() {
        let r = Registry::new();
        assert_eq!(r.hist_snapshot("lat"), None);
        r.hist_record("lat", 100);
        let handle = r.hist("lat");
        handle.record(200);
        let snap = r.hist_snapshot("lat").expect("recorded");
        assert_eq!(snap.count, 2);
        assert_eq!(snap.min(), 100);
        assert_eq!(snap.max, 200);
        assert_eq!(r.snapshot().hists["lat"], snap);
    }

    #[test]
    fn absorb_merges_hists() {
        let daemon = Registry::new();
        daemon.hist_record("lat", 1);
        let request = Registry::new();
        request.hist_record("lat", 1 << 20);
        request.hist_record("other", 7);
        daemon.absorb(&request.snapshot());
        let lat = daemon.hist_snapshot("lat").expect("merged");
        assert_eq!(lat.count, 2);
        assert_eq!(lat.max, 1 << 20);
        assert_eq!(daemon.hist_snapshot("other").expect("created").count, 1);
    }

    #[test]
    fn span_stat_mean() {
        let mut s = SpanStat::default();
        assert_eq!(s.mean_ns(), 0.0);
        s.count = 4;
        s.total_ns = 100;
        assert!((s.mean_ns() - 25.0).abs() < 1e-12);
    }
}
