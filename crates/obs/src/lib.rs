//! `fosm-obs` — zero-dependency structured observability.
//!
//! Every other crate in the workspace produces *results* (reports,
//! profiles, figures); this crate is where their *run metrics* go:
//! what was executed, how long each phase took, and how often each
//! cache, predictor, or memo table hit. It deliberately depends on
//! nothing — not even the vendored serde shims — so it can sit at the
//! bottom of the dependency graph and be instrumented into every
//! crate without cycles.
//!
//! Four primitives, all aggregated in a [`Registry`]:
//!
//! * **Counters** — named monotonic `u64` totals
//!   ([`Registry::counter_add`]). Naming scheme:
//!   `component.object.event`, e.g. `cache.l1d.misses`,
//!   `store.trace.hits`, `sim.retired`.
//! * **Gauges** — named `f64` point-in-time values
//!   ([`Registry::gauge_set`]), e.g. `report.wall_s`.
//! * **Histograms** — log2-bucketed value distributions
//!   ([`Registry::hist_record`]), e.g. `serve.total_us.profile`.
//!   Recording is lock-free relaxed atomics; see [`hist`] for the
//!   bucket layout and quantile error bound.
//! * **Spans** — hierarchical wall-clock timings ([`Registry::span`]).
//!   A span guard pushes its name onto a thread-local stack; nested
//!   guards produce `/`-joined paths (`report.table1/simulate`), and
//!   repeated executions of the same path aggregate into one
//!   `{count, total_ns}` entry.
//!
//! At the end of a run, [`emit`] assembles a [`Manifest`] (binary
//! name + registry snapshot) and hands it to the process-wide
//! [`Sink`]:
//!
//! * [`Sink::Noop`] (the default) — drop everything. The hot paths
//!   only touch local stats structs and flush into the registry at
//!   run boundaries, so the cost of the whole layer under the no-op
//!   sink is a handful of map inserts per *run*, not per instruction.
//! * [`Sink::Human`] — aligned key/value lines on stderr
//!   (`FOSM_METRICS=human`).
//! * [`Sink::Json`] — a single-line JSON run manifest on stderr
//!   (`FOSM_METRICS=json`), or to a file
//!   (`FOSM_METRICS=json:<path>`, or the figure binaries'
//!   `--metrics <path>` flag).
//!
//! Metrics never touch **stdout**: figure output stays byte-identical
//! at any thread count and under any sink.
//!
//! Beyond the aggregate registry, the [`event`] module adds *typed
//! miss-event tracing* — a bounded buffer of per-event records
//! (mispredicts, I-misses, long D-misses, interval boundaries) the
//! detailed simulator fills when `FOSM_TRACE`/`--trace` is set, and
//! [`chrome`] exports as Perfetto-loadable Chrome trace-event JSON.
//! Like the sinks, tracing is strictly opt-in: disabled, it costs one
//! atomic load per simulator run.
//!
//! # Examples
//!
//! ```
//! use fosm_obs::Registry;
//!
//! let r = Registry::new();
//! {
//!     let _outer = r.span("sweep");
//!     let _inner = r.span("resolve");
//!     r.counter_add("iw.instructions", 50_000);
//! }
//! let snap = r.snapshot();
//! assert_eq!(snap.counters["iw.instructions"], 50_000);
//! assert_eq!(snap.spans["sweep/resolve"].count, 1);
//! ```

#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod hist;
pub mod json;
mod manifest;
mod registry;
mod scope;
mod sink;
mod span;

pub use event::{EventKind, TraceEvent, Tracer, TracerStats};
pub use hist::{Histogram, HistogramSnapshot};
pub use manifest::Manifest;
pub use registry::{Registry, Snapshot, SpanStat};
pub use scope::{scoped_registry, RegistryScope};
pub use sink::{set_sink, sink, Sink};
pub use span::{AdoptGuard, SpanGuard};

/// The process-wide registry the free functions below write to when no
/// [`scoped_registry`] override is installed on the calling thread.
pub fn global() -> &'static Registry {
    Registry::global()
}

/// Adds `delta` to counter `name` in the current thread's registry
/// (the innermost [`scoped_registry`], or the global one).
pub fn counter_add(name: &str, delta: u64) {
    match scope::current() {
        Some(r) => r.counter_add(name, delta),
        None => Registry::global().counter_add(name, delta),
    }
}

/// Sets gauge `name` to `value` in the current thread's registry.
pub fn gauge_set(name: &str, value: f64) {
    match scope::current() {
        Some(r) => r.gauge_set(name, value),
        None => Registry::global().gauge_set(name, value),
    }
}

/// Records one observation into histogram `name` in the current
/// thread's registry. Hot loops recording into one histogram should
/// instead hold the handle from [`Registry::hist`] to skip the
/// per-call name lookup.
pub fn hist_record(name: &str, value: u64) {
    match scope::current() {
        Some(r) => r.hist_record(name, value),
        None => Registry::global().hist_record(name, value),
    }
}

/// Records run metadata (config, seed, …) in the current thread's
/// registry.
pub fn meta_set(name: &str, value: impl std::fmt::Display) {
    match scope::current() {
        Some(r) => r.meta_set(name, value),
        None => Registry::global().meta_set(name, value),
    }
}

/// Opens a span on the current thread's registry; the returned guard
/// records the elapsed wall-clock time when dropped. Under a
/// [`scoped_registry`] the guard shares ownership of the scoped
/// registry, so it stays valid even if the scope is popped first.
pub fn span(name: &str) -> SpanGuard<'static> {
    match scope::current() {
        Some(r) => SpanGuard::begin_shared(r, name),
        None => Registry::global().span(name),
    }
}

/// The `/`-joined path of the spans open on the current thread, or
/// `None` outside any span. See [`adopt_span_parent`].
pub fn current_span_path() -> Option<String> {
    span::current_path()
}

/// Roots this thread's span stack under `parent` while the returned
/// guard lives, so spans opened on a worker thread aggregate under the
/// fan-out site's path (e.g. `report.table1/simulate`) instead of at
/// top level. The guard records no time of its own.
pub fn adopt_span_parent(parent: &str) -> AdoptGuard {
    span::adopt(parent)
}

/// The process-wide miss-event tracer (disabled unless `FOSM_TRACE`
/// is set or [`Tracer::enable_to`] was called). The simulator checks
/// `tracer().enabled()` once per run and flushes its run-local event
/// batch here.
pub fn tracer() -> &'static Tracer {
    Tracer::global()
}

/// Emits the global registry as a run manifest through the
/// process-wide sink. Call once, at the end of `main`.
///
/// Under [`Sink::Noop`] this returns immediately without even
/// snapshotting the registry. Emission failures (e.g. an unwritable
/// `--metrics` path) are reported on stderr, never panicked on.
pub fn emit(binary: &str) {
    let sink = sink();
    if sink == Sink::Noop {
        return;
    }
    let manifest = Manifest::new(binary, Registry::global().snapshot());
    if let Err(e) = sink.emit(&manifest) {
        eprintln!("fosm-obs: could not emit metrics: {e}");
    }
}

/// Emits an explicit registry (e.g. one request's scoped registry in a
/// long-running daemon) as a run manifest through the process-wide
/// sink. Like [`emit`], a no-op under [`Sink::Noop`].
pub fn emit_registry(binary: &str, registry: &Registry) {
    let sink = sink();
    if sink == Sink::Noop {
        return;
    }
    let manifest = Manifest::new(binary, registry.snapshot());
    if let Err(e) = sink.emit(&manifest) {
        eprintln!("fosm-obs: could not emit metrics: {e}");
    }
}
