//! Hierarchical wall-clock spans.
//!
//! A [`SpanGuard`] is an RAII timer: creating it pushes its name onto
//! a thread-local path stack, dropping it pops the stack and folds the
//! elapsed time into the owning [`Registry`] under the `/`-joined
//! path of every span open on this thread at creation time.
//!
//! The stack is per *thread*, so worker threads (e.g. the bench
//! harness's `par_map` fan-out) start their own roots: a `simulate`
//! span opened on a worker records as `simulate`, not under the main
//! thread's current phase. This keeps span paths scheduling-
//! independent at the cost of flattening cross-thread nesting.
//!
//! Guards are expected to drop on the thread that created them and in
//! LIFO order (the natural shape of scoped RAII usage). A leaked
//! guard leaks its stack entry for the remainder of that thread.

use std::cell::RefCell;
use std::time::Instant;

use crate::registry::Registry;

thread_local! {
    /// Names of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its elapsed wall-clock time on drop.
#[derive(Debug)]
#[must_use = "a span guard records time when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    registry: &'a Registry,
    /// Full `/`-joined path, resolved at creation.
    path: String,
    /// Stack depth to restore on drop (robust to a leaked inner guard).
    depth: usize,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn begin(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            stack.push(name.to_string());
            (stack.join("/"), depth)
        });
        SpanGuard {
            registry,
            path,
            depth,
            start: Instant::now(),
        }
    }

    /// The `/`-joined path this guard will record under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| stack.borrow_mut().truncate(self.depth));
        self.registry.record_span(&self.path, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_paths_join_with_slash() {
        let r = Registry::new();
        {
            let outer = r.span("outer");
            assert_eq!(outer.path(), "outer");
            let inner = r.span("inner");
            assert_eq!(inner.path(), "outer/inner");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 1);
    }

    #[test]
    fn sequential_spans_of_same_name_aggregate() {
        let r = Registry::new();
        for _ in 0..3 {
            let _s = r.span("step");
        }
        assert_eq!(r.snapshot().spans["step"].count, 3);
    }

    #[test]
    fn stack_recovers_after_guard_drops() {
        let r = Registry::new();
        {
            let _a = r.span("a");
        }
        {
            let b = r.span("b");
            // "a" closed; "b" is a fresh root, not "a/b".
            assert_eq!(b.path(), "b");
        }
    }

    #[test]
    fn distinct_registries_share_the_thread_stack() {
        // The path stack is thread-local and registry-agnostic; each
        // guard still records into the registry that opened it.
        let r1 = Registry::new();
        let r2 = Registry::new();
        {
            let _a = r1.span("a");
            let b = r2.span("b");
            assert_eq!(b.path(), "a/b");
        }
        assert_eq!(r1.snapshot().spans["a"].count, 1);
        assert_eq!(r2.snapshot().spans["a/b"].count, 1);
        assert!(!r1.snapshot().spans.contains_key("a/b"));
    }
}
