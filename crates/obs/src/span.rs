//! Hierarchical wall-clock spans.
//!
//! A [`SpanGuard`] is an RAII timer: creating it pushes its name onto
//! a thread-local path stack, dropping it pops the stack and folds the
//! elapsed time into the owning [`Registry`] under the `/`-joined
//! path of every span open on this thread at creation time.
//!
//! The stack is per *thread*, so worker threads (e.g. the bench
//! harness's `par_map` fan-out) would start their own roots: a
//! `simulate` span opened on a worker records as `simulate`, not under
//! the main thread's current phase. Fan-out code fixes that by
//! capturing [`current_path`] on the spawning thread and opening an
//! [`AdoptGuard`] on each worker: the parent path becomes the worker
//! stack's root (without recording any time itself), so worker spans
//! aggregate as `report.table1/simulate` regardless of which thread
//! ran them. Paths stay scheduling-independent because the adopted
//! prefix comes from program structure, not thread identity.
//!
//! Guards are expected to drop on the thread that created them and in
//! LIFO order (the natural shape of scoped RAII usage). A leaked
//! guard leaks its stack entry for the remainder of that thread.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Instant;

use crate::registry::Registry;

thread_local! {
    /// Names of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The registry a span guard records into: either a plain borrow (the
/// global registry, or a caller-owned instance) or a shared handle to
/// a request-scoped registry (see [`crate::scoped_registry`]) that
/// must outlive the guard even if the scope is popped first.
#[derive(Debug)]
enum Owner<'a> {
    Borrowed(&'a Registry),
    Shared(Arc<Registry>),
}

impl Owner<'_> {
    fn registry(&self) -> &Registry {
        match self {
            Owner::Borrowed(r) => r,
            Owner::Shared(r) => r,
        }
    }
}

/// An open span; records its elapsed wall-clock time on drop.
#[derive(Debug)]
#[must_use = "a span guard records time when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard<'a> {
    registry: Owner<'a>,
    /// Full `/`-joined path, resolved at creation.
    path: String,
    /// Stack depth to restore on drop (robust to a leaked inner guard).
    depth: usize,
    start: Instant,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn begin(registry: &'a Registry, name: &str) -> SpanGuard<'a> {
        SpanGuard::begin_owner(Owner::Borrowed(registry), name)
    }

    /// Begins a span recording into a shared (request-scoped)
    /// registry; the guard keeps the registry alive on its own.
    pub(crate) fn begin_shared(registry: Arc<Registry>, name: &str) -> SpanGuard<'static> {
        SpanGuard::begin_owner(Owner::Shared(registry), name)
    }

    fn begin_owner(registry: Owner<'a>, name: &str) -> SpanGuard<'a> {
        let (path, depth) = SPAN_STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let depth = stack.len();
            stack.push(name.to_string());
            (stack.join("/"), depth)
        });
        SpanGuard {
            registry,
            path,
            depth,
            start: Instant::now(),
        }
    }

    /// The `/`-joined path this guard will record under.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let elapsed_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| stack.borrow_mut().truncate(self.depth));
        self.registry.registry().record_span(&self.path, elapsed_ns);
    }
}

/// The `/`-joined path of the spans currently open on this thread, or
/// `None` outside any span. Capture this before spawning workers and
/// hand it to [`adopt`] inside each of them.
pub fn current_path() -> Option<String> {
    SPAN_STACK.with(|stack| {
        let stack = stack.borrow();
        if stack.is_empty() {
            None
        } else {
            Some(stack.join("/"))
        }
    })
}

/// Roots this thread's span stack under `parent` for the guard's
/// lifetime. Unlike [`SpanGuard`] it records no time of its own — it
/// only prefixes the paths of spans opened while it is alive.
#[derive(Debug)]
#[must_use = "an adopt guard prefixes span paths only while it is alive"]
pub struct AdoptGuard {
    /// Stack depth to restore on drop.
    depth: usize,
}

/// Adopts `parent` (an already-`/`-joined path) as this thread's span
/// root. Intended for worker threads, whose stacks are empty; on a
/// thread with open spans the parent path nests under them.
pub fn adopt(parent: &str) -> AdoptGuard {
    let depth = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let depth = stack.len();
        stack.push(parent.to_string());
        depth
    });
    AdoptGuard { depth }
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| stack.borrow_mut().truncate(self.depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_paths_join_with_slash() {
        let r = Registry::new();
        {
            let outer = r.span("outer");
            assert_eq!(outer.path(), "outer");
            let inner = r.span("inner");
            assert_eq!(inner.path(), "outer/inner");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["outer/inner"].count, 1);
    }

    #[test]
    fn sequential_spans_of_same_name_aggregate() {
        let r = Registry::new();
        for _ in 0..3 {
            let _s = r.span("step");
        }
        assert_eq!(r.snapshot().spans["step"].count, 3);
    }

    #[test]
    fn stack_recovers_after_guard_drops() {
        let r = Registry::new();
        {
            let _a = r.span("a");
        }
        {
            let b = r.span("b");
            // "a" closed; "b" is a fresh root, not "a/b".
            assert_eq!(b.path(), "b");
        }
    }

    #[test]
    fn adopted_parent_prefixes_worker_spans() {
        let r = Registry::new();
        let parent = {
            let _outer = r.span("sweep");
            current_path().expect("inside a span")
        };
        assert_eq!(parent, "sweep");
        assert_eq!(current_path(), None);

        // Simulate a worker thread: empty stack, adopt, open spans.
        std::thread::scope(|scope| {
            scope.spawn(|| {
                let _adopt = adopt(&parent);
                let _inner = r.span("simulate");
            });
        });
        let snap = r.snapshot();
        assert_eq!(snap.spans["sweep/simulate"].count, 1);
        // Only the original guard recorded "sweep"; the adopt guard
        // itself added nothing.
        assert_eq!(snap.spans["sweep"].count, 1);
    }

    #[test]
    fn adopt_guard_restores_the_stack() {
        let r = Registry::new();
        {
            let _adopt = adopt("phase");
            let s = r.span("work");
            assert_eq!(s.path(), "phase/work");
        }
        // After the guard drops, new spans root at top level again.
        let s = r.span("work");
        assert_eq!(s.path(), "work");
    }

    #[test]
    fn distinct_registries_share_the_thread_stack() {
        // The path stack is thread-local and registry-agnostic; each
        // guard still records into the registry that opened it.
        let r1 = Registry::new();
        let r2 = Registry::new();
        {
            let _a = r1.span("a");
            let b = r2.span("b");
            assert_eq!(b.path(), "a/b");
        }
        assert_eq!(r1.snapshot().spans["a"].count, 1);
        assert_eq!(r2.snapshot().spans["a/b"].count, 1);
        assert!(!r1.snapshot().spans.contains_key("a/b"));
    }
}
