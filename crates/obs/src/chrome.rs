//! Chrome trace-event / Perfetto JSON export.
//!
//! Renders a slice of [`TraceEvent`]s as the Trace Event Format JSON
//! object understood by `chrome://tracing` and [Perfetto]
//! (<https://ui.perfetto.dev>): one complete (`"ph":"X"`) event per
//! miss event, laid out on one track per event class, with metadata
//! (`"ph":"M"`) events naming the process and tracks. Simulated
//! cycles map to the format's microsecond timestamps 1:1, so a
//! 400-cycle memory miss renders as a 400 "µs" slice — the viewer's
//! time axis reads directly in cycles.
//!
//! The export is **deterministic**: events are sorted by
//! [`TraceEvent::sort_key`] (cycle onset, extent, instruction, track)
//! and no wall-clock or thread-identity data is emitted, so the same
//! simulation produces byte-identical files at any `--threads` count.
//! Dropped-event accounting from the bounded buffer lands in
//! `otherData` so a truncated trace is never mistaken for a complete
//! one.
//!
//! [Perfetto]: https://perfetto.dev

use std::path::Path;

use crate::event::{EventKind, TraceEvent};
use crate::json;

/// Human track label per event class.
fn track_name(kind: EventKind) -> &'static str {
    match kind {
        EventKind::BranchMispredict => "branch mispredicts",
        EventKind::ICacheMiss => "I-cache misses",
        EventKind::LongDCacheMiss => "long D-cache misses",
        EventKind::IntervalBoundary => "intervals",
    }
}

fn push_meta(out: &mut String, tid: u64, name: &str, value: &str) {
    out.push_str(&format!("{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":"));
    json::push_str_literal(out, name);
    out.push_str(",\"args\":{\"name\":");
    json::push_str_literal(out, value);
    out.push_str("}}");
}

fn push_event(out: &mut String, e: &TraceEvent) {
    out.push_str("{\"name\":");
    json::push_str_literal(out, e.kind.name());
    out.push_str(&format!(
        ",\"cat\":\"miss-event\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{}",
        e.kind.track(),
        e.start,
        e.extent()
    ));
    out.push_str(&format!(",\"args\":{{\"inst\":{}", e.inst));
    if e.delta != 0 {
        out.push_str(&format!(",\"delta\":{}", e.delta));
    }
    if e.predicted.is_finite() {
        out.push_str(",\"predicted\":");
        json::push_f64(out, e.predicted);
    }
    out.push_str("}}");
}

/// Renders `events` (plus drop accounting) as a Chrome trace-event
/// JSON document. The input order is irrelevant; the output is sorted
/// and deterministic.
pub fn export(events: &[TraceEvent], dropped: u64) -> String {
    let mut sorted: Vec<&TraceEvent> = events.iter().collect();
    sorted.sort_by_key(|e| e.sort_key());

    let mut out = String::with_capacity(128 + 128 * sorted.len());
    out.push_str("{\"traceEvents\":[\n");
    push_meta(
        &mut out,
        0,
        "process_name",
        "fosm detailed simulator (1 cycle = 1us)",
    );
    for kind in EventKind::ALL {
        out.push_str(",\n");
        push_meta(&mut out, kind.track(), "thread_name", track_name(kind));
        out.push_str(",\n");
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":0,\"tid\":{},\"name\":\"thread_sort_index\",\"args\":{{\"sort_index\":{}}}}}",
            kind.track(),
            kind.track()
        ));
    }
    for e in &sorted {
        out.push_str(",\n");
        push_event(&mut out, e);
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\",\"otherData\":{");
    out.push_str(&format!(
        "\"tool\":\"fosm\",\"time_unit\":\"cycles\",\"events\":\"{}\",\"dropped\":\"{dropped}\"",
        sorted.len()
    ));
    out.push_str("}}\n");
    out
}

/// Writes [`export`]'s output to `path`.
///
/// # Errors
///
/// Propagates the I/O error when `path` is unwritable.
pub fn write_to(path: &Path, events: &[TraceEvent], dropped: u64) -> std::io::Result<()> {
    std::fs::write(path, export(events, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::new(EventKind::LongDCacheMiss, 50, 200, 600, 400).annotate(231.0),
            TraceEvent::new(EventKind::BranchMispredict, 10, 40, 63, 0),
            TraceEvent::new(EventKind::IntervalBoundary, 10, 0, 40, 0),
        ]
    }

    #[test]
    fn export_is_sorted_and_input_order_independent() {
        let mut events = sample();
        let a = export(&events, 0);
        events.reverse();
        let b = export(&events, 0);
        assert_eq!(a, b);
        // Branch event (ts 40) precedes the D-miss (ts 200).
        let branch = a.find("branch_mispredict").unwrap();
        let dmiss = a.find("long_dcache_miss").unwrap();
        assert!(branch < dmiss);
    }

    #[test]
    fn export_carries_args_and_drop_accounting() {
        let out = export(&sample(), 7);
        assert!(out.contains("\"ts\":200,\"dur\":400"));
        assert!(out.contains("\"delta\":400"));
        assert!(out.contains("\"predicted\":231.0"));
        assert!(out.contains("\"dropped\":\"7\""));
        assert!(out.contains("\"events\":\"3\""));
        // Un-annotated events (NaN) omit the predicted arg entirely.
        assert_eq!(out.matches("predicted").count(), 1);
    }

    #[test]
    fn export_names_all_tracks() {
        let out = export(&[], 0);
        for kind in EventKind::ALL {
            assert!(out.contains(track_name(kind)), "missing track {kind:?}");
        }
        assert!(out.contains("process_name"));
    }

    #[test]
    fn export_parses_as_json() {
        // The vendored serde_json shim is a dev-dependency here; use it
        // to assert the document is well-formed.
        let out = export(&sample(), 1);
        let value: serde::Value = serde_json::from_str(&out).expect("valid JSON");
        let events = match value.get("traceEvents").expect("traceEvents") {
            serde::Value::Seq(seq) => seq,
            other => panic!("traceEvents is not an array: {other:?}"),
        };
        // 1 process meta + 4x2 track metas + 3 events.
        assert_eq!(events.len(), 12);
        assert_eq!(
            value.get("otherData").and_then(|d| d.get("dropped")),
            Some(&serde::Value::Str("1".into()))
        );
    }
}
