//! Request-scoped metric registries for long-lived worker threads.
//!
//! A one-shot binary has exactly one run in flight, so every crate can
//! write to the process-global [`Registry`] and the manifest emitted
//! at the end of `main` describes that run. A long-running daemon
//! breaks that model: many requests execute concurrently on persistent
//! worker threads, and interleaving them through one global registry
//! would mix their counters and span timings into a single corrupted
//! manifest.
//!
//! [`scoped_registry`] fixes this with a *thread-local override*:
//! while the returned guard is alive, every crate-level free function
//! ([`crate::counter_add`], [`crate::span`], …) called **on this
//! thread** records into the scoped registry instead of the global
//! one. A request handler installs a fresh registry at the top of its
//! job, runs arbitrary instrumented library code, and ends up with a
//! manifest containing exactly its own activity; the server then folds
//! the request registry into the global one with
//! [`Registry::absorb`], so process-wide aggregates still accumulate.
//!
//! Scopes nest (a stack, innermost wins) and are strictly
//! thread-local: worker threads never see each other's scopes, and a
//! thread with no scope installed falls back to the global registry,
//! so existing one-shot binaries are unaffected.

use std::cell::RefCell;
use std::sync::Arc;

use crate::registry::Registry;

thread_local! {
    /// The registries scoped onto this thread, innermost last.
    static SCOPED: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// Routes this thread's crate-level metric calls into `registry`
/// while the returned guard is alive.
pub fn scoped_registry(registry: Arc<Registry>) -> RegistryScope {
    let depth = SCOPED.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(registry);
        stack.len() - 1
    });
    RegistryScope { depth }
}

/// The registry currently scoped onto this thread, if any.
pub(crate) fn current() -> Option<Arc<Registry>> {
    SCOPED.with(|stack| stack.borrow().last().cloned())
}

/// Guard returned by [`scoped_registry`]; restores the previous
/// routing (outer scope or the global registry) on drop.
#[derive(Debug)]
#[must_use = "the registry scope only routes metrics while the guard is alive"]
pub struct RegistryScope {
    /// Stack depth to restore on drop (robust to a leaked inner scope).
    depth: usize,
}

impl Drop for RegistryScope {
    fn drop(&mut self) {
        SCOPED.with(|stack| stack.borrow_mut().truncate(self.depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_routes_free_functions_and_restores() {
        let request = Arc::new(Registry::new());
        let global_before = Registry::global().counter("scope.test.routed");
        {
            let _scope = scoped_registry(Arc::clone(&request));
            crate::counter_add("scope.test.routed", 3);
            let _span = crate::span("scope.test.work");
        }
        assert_eq!(request.counter("scope.test.routed"), 3);
        assert_eq!(request.snapshot().spans["scope.test.work"].count, 1);
        // Global untouched while scoped; writes after the guard drops
        // go global again.
        assert_eq!(
            Registry::global().counter("scope.test.routed"),
            global_before
        );
        crate::counter_add("scope.test.routed", 1);
        assert_eq!(
            Registry::global().counter("scope.test.routed"),
            global_before + 1
        );
        // Clean up the global counter we just bumped? Counters are
        // monotonic; tests only assert deltas, so leaving it is fine.
    }

    #[test]
    fn scope_routes_hist_record() {
        let request = Arc::new(Registry::new());
        {
            let _scope = scoped_registry(Arc::clone(&request));
            crate::hist_record("scope.test.lat_us", 42);
        }
        let snap = request.hist_snapshot("scope.test.lat_us").expect("scoped");
        assert_eq!(snap.count, 1);
        assert_eq!(snap.max, 42);
        assert_eq!(Registry::global().hist_snapshot("scope.test.lat_us"), None);
    }

    #[test]
    fn scopes_nest_innermost_wins() {
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        let _outer_scope = scoped_registry(Arc::clone(&outer));
        crate::counter_add("n", 1);
        {
            let _inner_scope = scoped_registry(Arc::clone(&inner));
            crate::counter_add("n", 10);
        }
        crate::counter_add("n", 100);
        assert_eq!(outer.counter("n"), 101);
        assert_eq!(inner.counter("n"), 10);
    }

    #[test]
    fn scopes_are_thread_local() {
        let mine = Arc::new(Registry::new());
        let _scope = scoped_registry(Arc::clone(&mine));
        std::thread::scope(|s| {
            s.spawn(|| {
                // The spawned thread has no scope: current() is None.
                assert!(current().is_none());
            });
        });
        assert!(current().is_some());
    }

    #[test]
    fn span_guard_keeps_scoped_registry_alive() {
        // The guard may outlive the scope that selected the registry;
        // the recording must still land in the scoped registry.
        let request = Arc::new(Registry::new());
        let span = {
            let _scope = scoped_registry(Arc::clone(&request));
            crate::span("outlives.scope")
        };
        drop(span);
        assert_eq!(request.snapshot().spans["outlives.scope"].count, 1);
    }

    #[test]
    fn two_overlapping_requests_do_not_interleave() {
        // Regression test for the serve daemon: two requests running
        // concurrently on different worker threads, each under its own
        // scoped registry, must end up with disjoint manifests even
        // though both run the same instrumented code paths.
        let a = Arc::new(Registry::new());
        let b = Arc::new(Registry::new());
        let barrier = std::sync::Barrier::new(2);
        let run = |registry: &Arc<Registry>, tag: u64| {
            let _scope = scoped_registry(Arc::clone(registry));
            let _root = crate::span("request");
            barrier.wait(); // both requests are now mid-flight
            crate::counter_add("request.tag", tag);
            {
                let _inner = crate::span("profile");
                crate::counter_add("profile.probes", tag);
            }
            barrier.wait(); // hold both open until each has written
        };
        std::thread::scope(|s| {
            s.spawn(|| run(&a, 1));
            s.spawn(|| run(&b, 100));
        });
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_eq!(sa.counters["request.tag"], 1);
        assert_eq!(sb.counters["request.tag"], 100);
        assert_eq!(sa.counters["profile.probes"], 1);
        assert_eq!(sb.counters["profile.probes"], 100);
        assert_eq!(sa.spans["request/profile"].count, 1);
        assert_eq!(sb.spans["request/profile"].count, 1);
    }

    #[test]
    fn absorb_merges_request_registry_into_aggregate() {
        let aggregate = Registry::new();
        let request = Registry::new();
        request.counter_add("serve.requests", 1);
        request.record_span("request/profile", 500);
        request.gauge_set("g", 2.0);
        aggregate.counter_add("serve.requests", 4);
        aggregate.record_span("request/profile", 100);
        aggregate.absorb(&request.snapshot());
        let snap = aggregate.snapshot();
        assert_eq!(snap.counters["serve.requests"], 5);
        assert_eq!(snap.spans["request/profile"].count, 2);
        assert_eq!(snap.spans["request/profile"].total_ns, 600);
        assert_eq!(snap.gauges["g"], 2.0);
    }
}
