//! Property test: the incremental Pareto frontier equals a brute-force
//! O(n²) oracle on random point sets.

use fosm_explore::grid::ConfigPoint;
use fosm_explore::pareto::{DesignPoint, ParetoFrontier};
use proptest::prelude::*;

fn point(id: u32, ipc: f64, cost: f64) -> DesignPoint {
    DesignPoint {
        config: ConfigPoint {
            width: 4,
            win_size: 48,
            rob_size: 128,
            pipe_depth: 5,
            l2_latency: 8,
            mem_latency: 200,
        },
        // Smuggle the arrival index through the workload tag so the
        // oracle can express "keep the first of exact ties".
        workload: id,
        variant: 0,
        ipc,
        cost,
    }
}

/// Brute force: point `i` survives iff no other point weakly dominates
/// it, where exact (ipc, cost) ties are broken in favor of the earlier
/// arrival. Result sorted by cost, matching the frontier's order.
fn oracle(points: &[DesignPoint]) -> Vec<DesignPoint> {
    let mut kept: Vec<DesignPoint> = points
        .iter()
        .enumerate()
        .filter(|&(i, p)| {
            points.iter().enumerate().all(|(j, q)| {
                if i == j {
                    return true;
                }
                let strictly_better =
                    (q.cost < p.cost && q.ipc >= p.ipc) || (q.cost <= p.cost && q.ipc > p.ipc);
                let earlier_twin = q.cost == p.cost && q.ipc == p.ipc && j < i;
                !(strictly_better || earlier_twin)
            })
        })
        .map(|(_, p)| *p)
        .collect();
    kept.sort_by(|a, b| a.cost.total_cmp(&b.cost));
    kept
}

fn points_strategy() -> impl Strategy<Value = Vec<DesignPoint>> {
    // A coarse value lattice makes ties and exact duplicates common —
    // the cases where incremental maintenance is easiest to get wrong.
    prop::collection::vec((0u32..8, 0u32..8), 0..60).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (ipc, cost))| point(i as u32, ipc as f64 / 2.0 + 0.5, cost as f64 * 3.0))
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn incremental_frontier_matches_the_oracle(points in points_strategy()) {
        let mut frontier = ParetoFrontier::new();
        for &p in &points {
            frontier.offer(p);
        }
        let expected = oracle(&points);
        prop_assert_eq!(frontier.points(), expected.as_slice());
    }

    #[test]
    fn frontier_is_invariant_under_dominated_insertions(points in points_strategy()) {
        let mut frontier = ParetoFrontier::new();
        for &p in &points {
            frontier.offer(p);
        }
        let snapshot = frontier.clone();
        // Re-offering every original point must change nothing: each is
        // either on the frontier (an exact tie, first kept) or
        // dominated by it.
        for &p in &points {
            prop_assert!(!frontier.offer(p));
        }
        prop_assert_eq!(frontier, snapshot);
    }
}
