//! Grid specification: the cross-product of design axes to sweep.
//!
//! A sweep has two kinds of axes:
//!
//! * **Machine axes** ([`MachineGrid`]) — width, window, ROB, pipeline
//!   depth, and the two miss latencies. These only change model
//!   *parameters*, so one program profile serves the whole grid.
//! * **Hardware axes** ([`HardwareAxes`]) — I/D-cache geometry and the
//!   branch predictor. These change the *miss counts*, so every
//!   combination needs its own functional profile (collected once,
//!   outside the hot loop).
//!
//! Validation happens **once**, up front, over the whole cross-product
//! (`validate` checks the extreme combinations, which bound every
//! interior point) — the evaluation loop itself is infallible.

use fosm_branch::PredictorConfig;
use fosm_cache::{CacheConfig, Replacement};
use serde::{Deserialize, Serialize};

/// A malformed grid, reported before any evaluation starts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GridError {
    /// An axis has no values.
    EmptyAxis(&'static str),
    /// An axis contains a zero where the model needs a positive value.
    ZeroValue(&'static str),
    /// Some `(win_size, rob_size)` combination has `win > rob`.
    WindowExceedsRob {
        /// The largest window in the grid.
        win: u32,
        /// The smallest ROB in the grid.
        rob: u32,
    },
    /// Some `(l2, mem)` combination has `mem <= l2`.
    MemNotBeyondL2 {
        /// The largest L2 latency in the grid.
        l2: u32,
        /// The smallest memory latency in the grid.
        mem: u32,
    },
    /// A cache geometry is not realizable (bad set count / line size).
    BadGeometry(String),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::EmptyAxis(axis) => write!(f, "axis `{axis}` is empty"),
            GridError::ZeroValue(axis) => write!(f, "axis `{axis}` contains a zero"),
            GridError::WindowExceedsRob { win, rob } => {
                write!(f, "window {win} exceeds ROB {rob} for some grid point")
            }
            GridError::MemNotBeyondL2 { l2, mem } => {
                write!(
                    f,
                    "memory latency {mem} is not beyond L2 latency {l2} for some grid point"
                )
            }
            GridError::BadGeometry(why) => write!(f, "bad cache geometry: {why}"),
        }
    }
}

impl std::error::Error for GridError {}

/// The model-parameter axes of a sweep.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MachineGrid {
    /// Fetch/dispatch/issue/retire widths.
    pub widths: Vec<u32>,
    /// Issue-window sizes.
    pub win_sizes: Vec<u32>,
    /// Reorder-buffer sizes.
    pub rob_sizes: Vec<u32>,
    /// Front-end pipeline depths.
    pub pipe_depths: Vec<u32>,
    /// L2 access latencies.
    pub l2_latencies: Vec<u32>,
    /// Main-memory latencies.
    pub mem_latencies: Vec<u32>,
}

impl MachineGrid {
    /// A moderate default sweep around the paper's baseline: 1152
    /// machine configurations per hardware variant.
    pub fn baseline_sweep() -> Self {
        MachineGrid {
            widths: vec![2, 4, 6, 8],
            win_sizes: vec![16, 32, 48, 64],
            rob_sizes: vec![128, 256],
            pipe_depths: vec![3, 5, 8, 12, 16, 20],
            l2_latencies: vec![8, 12],
            mem_latencies: vec![100, 200, 400],
        }
    }

    /// Number of machine configurations in the grid.
    pub fn len(&self) -> u64 {
        self.widths.len() as u64
            * self.win_sizes.len() as u64
            * self.rob_sizes.len() as u64
            * self.pipe_depths.len() as u64
            * self.l2_latencies.len() as u64
            * self.mem_latencies.len() as u64
    }

    /// Whether the grid has no configurations at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks every cross-product combination once, so the evaluation
    /// loop can be infallible. Because parameter validity is monotone
    /// in each axis, checking the extremes (`max(win)` vs `min(rob)`,
    /// `max(l2)` vs `min(mem)`) covers all interior points.
    pub fn validate(&self) -> Result<(), GridError> {
        let axes: [(&'static str, &[u32]); 6] = [
            ("widths", &self.widths),
            ("windows", &self.win_sizes),
            ("robs", &self.rob_sizes),
            ("depths", &self.pipe_depths),
            ("l2", &self.l2_latencies),
            ("mem", &self.mem_latencies),
        ];
        for (name, values) in axes {
            if values.is_empty() {
                return Err(GridError::EmptyAxis(name));
            }
            if values.contains(&0) {
                return Err(GridError::ZeroValue(name));
            }
        }
        let win = *self.win_sizes.iter().max().expect("checked non-empty");
        let rob = *self.rob_sizes.iter().min().expect("checked non-empty");
        if win > rob {
            return Err(GridError::WindowExceedsRob { win, rob });
        }
        let l2 = *self.l2_latencies.iter().max().expect("checked non-empty");
        let mem = *self.mem_latencies.iter().min().expect("checked non-empty");
        if mem <= l2 {
            return Err(GridError::MemNotBeyondL2 { l2, mem });
        }
        Ok(())
    }
}

/// One machine configuration drawn from a [`MachineGrid`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigPoint {
    /// Issue width.
    pub width: u32,
    /// Issue-window entries.
    pub win_size: u32,
    /// Reorder-buffer entries.
    pub rob_size: u32,
    /// Front-end pipeline depth.
    pub pipe_depth: u32,
    /// L2 access latency.
    pub l2_latency: u32,
    /// Main-memory latency.
    pub mem_latency: u32,
}

/// A cache geometry axis value: `size:assoc:line`, e.g. `8k:4:64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheGeometry {
    /// The L1 baseline geometry (4 KiB, 4-way, 128 B lines).
    pub fn l1_baseline() -> Self {
        let c = CacheConfig::l1_baseline();
        CacheGeometry {
            size_bytes: c.size_bytes(),
            assoc: c.assoc(),
            line_bytes: c.line_bytes(),
        }
    }

    /// Parses `size:assoc:line` where size takes an optional `k`/`K`
    /// suffix: `8k:4:64` is 8 KiB, 4-way, 64-byte lines.
    pub fn parse(s: &str) -> Result<Self, GridError> {
        let mut parts = s.split(':');
        let (size, assoc, line) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(size), Some(assoc), Some(line), None) => (size, assoc, line),
            _ => {
                return Err(GridError::BadGeometry(format!(
                    "`{s}` is not size:assoc:line"
                )))
            }
        };
        let size_bytes = match size.strip_suffix(['k', 'K']) {
            Some(kb) => kb
                .parse::<u64>()
                .map(|kb| kb * 1024)
                .map_err(|e| GridError::BadGeometry(format!("size `{size}`: {e}"))),
            None => size
                .parse::<u64>()
                .map_err(|e| GridError::BadGeometry(format!("size `{size}`: {e}"))),
        }?;
        let assoc = assoc
            .parse::<u32>()
            .map_err(|e| GridError::BadGeometry(format!("assoc `{assoc}`: {e}")))?;
        let line_bytes = line
            .parse::<u32>()
            .map_err(|e| GridError::BadGeometry(format!("line `{line}`: {e}")))?;
        let geometry = CacheGeometry {
            size_bytes,
            assoc,
            line_bytes,
        };
        geometry.to_config()?;
        Ok(geometry)
    }

    /// Realizes the geometry as a simulator cache config (LRU).
    pub fn to_config(&self) -> Result<CacheConfig, GridError> {
        CacheConfig::new(
            self.size_bytes,
            self.assoc,
            self.line_bytes,
            Replacement::Lru,
        )
        .map_err(|e| GridError::BadGeometry(e.to_string()))
    }

    /// Capacity in KiB, for the area proxy and for labels.
    pub fn kib(&self) -> f64 {
        self.size_bytes as f64 / 1024.0
    }
}

impl std::fmt::Display for CacheGeometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.size_bytes.is_multiple_of(1024) {
            write!(
                f,
                "{}k:{}:{}",
                self.size_bytes / 1024,
                self.assoc,
                self.line_bytes
            )
        } else {
            write!(f, "{}:{}:{}", self.size_bytes, self.assoc, self.line_bytes)
        }
    }
}

/// The profile-level axes: every combination re-profiles the workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HardwareAxes {
    /// L1 instruction-cache geometries.
    pub icaches: Vec<CacheGeometry>,
    /// L1 data-cache geometries.
    pub dcaches: Vec<CacheGeometry>,
    /// Branch-predictor configurations.
    pub predictors: Vec<PredictorConfig>,
}

impl HardwareAxes {
    /// The baseline machine only: one variant, no re-profiling cost.
    pub fn baseline_only() -> Self {
        HardwareAxes {
            icaches: vec![CacheGeometry::l1_baseline()],
            dcaches: vec![CacheGeometry::l1_baseline()],
            predictors: vec![PredictorConfig::baseline()],
        }
    }

    /// Number of hardware variants (profiles per workload).
    pub fn len(&self) -> usize {
        self.icaches.len() * self.dcaches.len() * self.predictors.len()
    }

    /// Whether there are no variants.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One-shot validation: non-empty axes, realizable geometries.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.icaches.is_empty() {
            return Err(GridError::EmptyAxis("icache"));
        }
        if self.dcaches.is_empty() {
            return Err(GridError::EmptyAxis("dcache"));
        }
        if self.predictors.is_empty() {
            return Err(GridError::EmptyAxis("predictors"));
        }
        for g in self.icaches.iter().chain(&self.dcaches) {
            g.to_config()?;
        }
        Ok(())
    }

    /// All variants in deterministic (icache-major, predictor-minor)
    /// order.
    pub fn variants(&self) -> Vec<HardwareVariant> {
        let mut out = Vec::with_capacity(self.len());
        for &icache in &self.icaches {
            for &dcache in &self.dcaches {
                for &predictor in &self.predictors {
                    out.push(HardwareVariant {
                        icache,
                        dcache,
                        predictor,
                    });
                }
            }
        }
        out
    }
}

/// One point on the hardware axes: a cache/predictor combination that
/// shares a single functional profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HardwareVariant {
    /// L1 instruction-cache geometry.
    pub icache: CacheGeometry,
    /// L1 data-cache geometry.
    pub dcache: CacheGeometry,
    /// Branch predictor.
    pub predictor: PredictorConfig,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_sweep_validates_and_counts() {
        let grid = MachineGrid::baseline_sweep();
        grid.validate().unwrap();
        assert_eq!(grid.len(), 4 * 4 * 2 * 6 * 2 * 3);
    }

    #[test]
    fn validation_rejects_bad_cross_products() {
        let mut grid = MachineGrid::baseline_sweep();
        grid.rob_sizes = vec![32, 128];
        assert_eq!(
            grid.validate(),
            Err(GridError::WindowExceedsRob { win: 64, rob: 32 })
        );

        let mut grid = MachineGrid::baseline_sweep();
        grid.mem_latencies = vec![10, 200];
        assert_eq!(
            grid.validate(),
            Err(GridError::MemNotBeyondL2 { l2: 12, mem: 10 })
        );

        let mut grid = MachineGrid::baseline_sweep();
        grid.widths.clear();
        assert_eq!(grid.validate(), Err(GridError::EmptyAxis("widths")));

        let mut grid = MachineGrid::baseline_sweep();
        grid.pipe_depths = vec![0, 5];
        assert_eq!(grid.validate(), Err(GridError::ZeroValue("depths")));
    }

    #[test]
    fn geometry_parses_and_round_trips() {
        let g = CacheGeometry::parse("8k:4:64").unwrap();
        assert_eq!(g.size_bytes, 8192);
        assert_eq!(g.assoc, 4);
        assert_eq!(g.line_bytes, 64);
        assert_eq!(g.to_string(), "8k:4:64");
        assert_eq!(CacheGeometry::parse(&g.to_string()).unwrap(), g);

        assert!(CacheGeometry::parse("8k:4").is_err());
        assert!(
            CacheGeometry::parse("8k:4:63").is_err(),
            "non-power-of-two line"
        );
        assert!(CacheGeometry::parse("nope:4:64").is_err());
    }

    #[test]
    fn hardware_axes_enumerate_deterministically() {
        let axes = HardwareAxes {
            icaches: vec![
                CacheGeometry::parse("4k:4:128").unwrap(),
                CacheGeometry::parse("8k:4:128").unwrap(),
            ],
            dcaches: vec![CacheGeometry::l1_baseline()],
            predictors: vec![PredictorConfig::baseline(), PredictorConfig::Ideal],
        };
        axes.validate().unwrap();
        let variants = axes.variants();
        assert_eq!(variants.len(), 4);
        assert_eq!(variants[0].icache.size_bytes, 4096);
        assert_eq!(variants[0].predictor, PredictorConfig::baseline());
        assert_eq!(variants[1].predictor, PredictorConfig::Ideal);
        assert_eq!(variants[2].icache.size_bytes, 8192);
    }
}
