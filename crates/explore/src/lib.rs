//! # Design-space exploration for the first-order model
//!
//! The point of an *analytical* processor model (Karkhanis & Smith,
//! ISCA 2004, §7) is that it is cheap enough to sweep: where a detailed
//! simulator spends minutes per configuration, the first-order model
//! spends nanoseconds, so an entire design space — width × window ×
//! ROB × depth × latencies × cache geometry × predictor — fits in one
//! interactive command.
//!
//! This crate is the sweep engine behind `fosm explore`:
//!
//! * [`grid`] — the axes and their one-shot validation,
//! * [`engine`] — the streaming evaluator over
//!   [`fosm_core::PreparedModel`] (no allocation, no `Result` in the
//!   hot loop; ≥1M config evaluations/sec on one core),
//! * [`cost`] — the area/energy proxy that IPC is traded against,
//! * [`pareto`] — incremental Pareto-frontier extraction,
//! * [`export`] — deterministic CSV/JSON renderings.
//!
//! # Examples
//!
//! ```
//! use fosm_core::{FirstOrderModel, ProcessorParams};
//! use fosm_core::profile::ProfileCollector;
//! use fosm_explore::engine::{sweep_profile, ShardTag};
//! use fosm_explore::grid::{HardwareAxes, MachineGrid};
//! use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let params = ProcessorParams::baseline();
//! let mut trace = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
//! let profile = ProfileCollector::new(&params).collect(&mut trace, 50_000)?;
//!
//! let grid = MachineGrid::baseline_sweep();
//! grid.validate()?;
//! let variant = HardwareAxes::baseline_only().variants()[0];
//! let model = FirstOrderModel::new(params);
//! let tag = ShardTag { workload: 0, variant: 0 };
//! let shard = sweep_profile(&model, &profile, &grid, &variant, tag)?;
//! assert_eq!(shard.configs, grid.len());
//! println!("frontier: {} of {} configs", shard.frontier.len(), shard.configs);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod engine;
pub mod export;
pub mod grid;
pub mod pareto;

pub use engine::{merge_frontiers, params_of, sweep_profile, ShardResult, ShardTag};
pub use export::{
    frontier_csv, frontier_rows, parse_predictor, predictor_label, report_json, ExploreReport,
    FrontierRow, SCHEMA_VERSION,
};
pub use grid::{CacheGeometry, ConfigPoint, GridError, HardwareAxes, HardwareVariant, MachineGrid};
pub use pareto::{DesignPoint, ParetoFrontier};
