//! The area/energy proxy the Pareto frontier trades IPC against.
//!
//! This is deliberately a *proxy*, not a calibrated area model: a
//! monotone, dimensionless score in "cost units" that grows with the
//! structures known to dominate out-of-order core area and energy.
//! Relative ordering is all the frontier needs.
//!
//! ```text
//! cost = w²·WIN/64          wakeup/select CAM: width² broadcast ports
//!                           across WIN entries (Palacharla-style)
//!      + ROB/4              ROB payload SRAM
//!      + w·∆P/2             pipeline latches: width lanes × depth stages
//!      + I$KiB + D$KiB      L1 capacities in KiB
//!      + entries/1024       predictor state
//! ```
//!
//! The latency axes (`l2`, `mem`) are free: they describe the memory
//! system the core sits in, not the core. Two configs differing only in
//! latency tie on cost, so only the better-IPC one can reach the
//! frontier.

use fosm_branch::PredictorConfig;

use crate::grid::{ConfigPoint, HardwareVariant};

/// State entries a predictor configuration implies, for the cost proxy.
pub fn predictor_entries(predictor: PredictorConfig) -> u64 {
    match predictor {
        PredictorConfig::Ideal | PredictorConfig::AlwaysTaken | PredictorConfig::NeverTaken => 0,
        PredictorConfig::Gshare { bits } | PredictorConfig::Bimodal { bits } => 1u64 << bits,
        PredictorConfig::TwoLevel {
            pc_bits,
            history_bits,
        } => (1u64 << pc_bits) + (1u64 << history_bits),
        // Selector plus two component tables.
        PredictorConfig::Tournament { bits } => 3 * (1u64 << bits),
        // One weight vector (history + bias) per table entry.
        PredictorConfig::Perceptron { bits, history } => (1u64 << bits) * (history as u64 + 1),
    }
}

/// The core-structure share of the proxy: depends only on the machine
/// axes, recomputed per config in the hot loop (~6 flops).
#[inline]
pub fn machine_cost(config: &ConfigPoint) -> f64 {
    let w = config.width as f64;
    w * w * config.win_size as f64 / 64.0
        + config.rob_size as f64 / 4.0
        + w * config.pipe_depth as f64 / 2.0
}

/// The hardware-variant share of the proxy: fixed per profile, resolved
/// once outside the hot loop.
pub fn hardware_cost(variant: &HardwareVariant) -> f64 {
    variant.icache.kib()
        + variant.dcache.kib()
        + predictor_entries(variant.predictor) as f64 / 1024.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::CacheGeometry;

    fn point(width: u32, win: u32, rob: u32, depth: u32) -> ConfigPoint {
        ConfigPoint {
            width,
            win_size: win,
            rob_size: rob,
            pipe_depth: depth,
            l2_latency: 8,
            mem_latency: 200,
        }
    }

    #[test]
    fn cost_grows_with_every_core_structure() {
        let base = machine_cost(&point(4, 48, 128, 5));
        assert!(machine_cost(&point(8, 48, 128, 5)) > base);
        assert!(machine_cost(&point(4, 96, 128, 5)) > base);
        assert!(machine_cost(&point(4, 48, 256, 5)) > base);
        assert!(machine_cost(&point(4, 48, 128, 20)) > base);
    }

    #[test]
    fn latency_axes_are_cost_free() {
        let a = machine_cost(&point(4, 48, 128, 5));
        let b = machine_cost(&ConfigPoint {
            l2_latency: 30,
            mem_latency: 400,
            ..point(4, 48, 128, 5)
        });
        assert_eq!(a.to_bits(), b.to_bits());
    }

    #[test]
    fn predictor_entries_match_table_shapes() {
        assert_eq!(predictor_entries(PredictorConfig::Ideal), 0);
        assert_eq!(
            predictor_entries(PredictorConfig::Gshare { bits: 13 }),
            8192
        );
        assert_eq!(
            predictor_entries(PredictorConfig::TwoLevel {
                pc_bits: 10,
                history_bits: 8
            }),
            1024 + 256
        );
        assert_eq!(
            predictor_entries(PredictorConfig::Tournament { bits: 12 }),
            3 * 4096
        );
        assert_eq!(
            predictor_entries(PredictorConfig::Perceptron {
                bits: 8,
                history: 15
            }),
            256 * 16
        );
    }

    #[test]
    fn hardware_cost_counts_caches_in_kib() {
        let variant = HardwareVariant {
            icache: CacheGeometry::parse("8k:4:64").unwrap(),
            dcache: CacheGeometry::parse("16k:4:64").unwrap(),
            predictor: PredictorConfig::Gshare { bits: 13 },
        };
        assert!((hardware_cost(&variant) - (8.0 + 16.0 + 8.0)).abs() < 1e-12);
    }
}
