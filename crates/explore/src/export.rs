//! Frontier export: deterministic CSV and JSON renderings.
//!
//! Floats are rendered with Rust's shortest-roundtrip `Display`, so a
//! byte-equal report means bit-equal results — the determinism test
//! compares `--threads 1` against `--threads 8` output directly.

use fosm_branch::PredictorConfig;
use serde::{Deserialize, Serialize};

use crate::grid::{GridError, HardwareVariant};
use crate::pareto::DesignPoint;

/// Schema version of the JSON report.
pub const SCHEMA_VERSION: u32 = 1;

/// A compact, stable label for a predictor axis value; parseable back
/// via [`parse_predictor`].
pub fn predictor_label(predictor: PredictorConfig) -> String {
    match predictor {
        PredictorConfig::Ideal => "ideal".into(),
        PredictorConfig::AlwaysTaken => "always".into(),
        PredictorConfig::NeverTaken => "never".into(),
        PredictorConfig::Gshare { bits } => format!("gshare:{bits}"),
        PredictorConfig::Bimodal { bits } => format!("bimodal:{bits}"),
        PredictorConfig::TwoLevel {
            pc_bits,
            history_bits,
        } => format!("twolevel:{pc_bits}:{history_bits}"),
        PredictorConfig::Tournament { bits } => format!("tournament:{bits}"),
        PredictorConfig::Perceptron { bits, history } => format!("perceptron:{bits}:{history}"),
    }
}

/// Parses a predictor axis value produced by [`predictor_label`].
pub fn parse_predictor(s: &str) -> Result<PredictorConfig, GridError> {
    let bad = || GridError::BadGeometry(format!("unknown predictor `{s}`"));
    let mut parts = s.split(':');
    let kind = parts.next().ok_or_else(bad)?;
    let mut num = || -> Result<u32, GridError> {
        parts
            .next()
            .ok_or_else(bad)?
            .parse::<u32>()
            .map_err(|_| bad())
    };
    let config = match kind {
        "ideal" => PredictorConfig::Ideal,
        "always" => PredictorConfig::AlwaysTaken,
        "never" => PredictorConfig::NeverTaken,
        "gshare" => PredictorConfig::Gshare { bits: num()? },
        "bimodal" => PredictorConfig::Bimodal { bits: num()? },
        "twolevel" => PredictorConfig::TwoLevel {
            pc_bits: num()?,
            history_bits: num()?,
        },
        "tournament" => PredictorConfig::Tournament { bits: num()? },
        "perceptron" => PredictorConfig::Perceptron {
            bits: num()?,
            history: num()?,
        },
        _ => return Err(bad()),
    };
    if parts.next().is_some() {
        return Err(bad());
    }
    Ok(config)
}

/// One fully-labelled frontier row, ready for serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierRow {
    /// Workload name.
    pub workload: String,
    /// I-cache geometry label (`size:assoc:line`).
    pub icache: String,
    /// D-cache geometry label.
    pub dcache: String,
    /// Predictor label ([`predictor_label`]).
    pub predictor: String,
    /// Issue width.
    pub width: u32,
    /// Issue-window entries.
    pub window: u32,
    /// Reorder-buffer entries.
    pub rob: u32,
    /// Front-end pipeline depth.
    pub depth: u32,
    /// L2 access latency.
    pub l2: u32,
    /// Main-memory latency.
    pub mem: u32,
    /// Predicted instructions per cycle.
    pub ipc: f64,
    /// Area/energy proxy.
    pub cost: f64,
}

/// The JSON report: counts plus the labelled frontier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExploreReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Total machine configurations evaluated across all shards.
    pub configs: u64,
    /// Workloads swept, in shard order.
    pub workloads: Vec<String>,
    /// Hardware variants swept, in shard order.
    pub variants: Vec<String>,
    /// The global Pareto frontier, sorted by increasing cost.
    pub frontier: Vec<FrontierRow>,
}

fn row(point: &DesignPoint, workloads: &[String], variants: &[HardwareVariant]) -> FrontierRow {
    let variant = &variants[point.variant as usize];
    FrontierRow {
        workload: workloads[point.workload as usize].clone(),
        icache: variant.icache.to_string(),
        dcache: variant.dcache.to_string(),
        predictor: predictor_label(variant.predictor),
        width: point.config.width,
        window: point.config.win_size,
        rob: point.config.rob_size,
        depth: point.config.pipe_depth,
        l2: point.config.l2_latency,
        mem: point.config.mem_latency,
        ipc: point.ipc,
        cost: point.cost,
    }
}

/// Labels design points (a whole frontier, or a `corners` subset) for
/// export.
pub fn frontier_rows(
    points: &[DesignPoint],
    workloads: &[String],
    variants: &[HardwareVariant],
) -> Vec<FrontierRow> {
    points.iter().map(|p| row(p, workloads, variants)).collect()
}

/// Renders the frontier as CSV (header + one row per point).
pub fn frontier_csv(rows: &[FrontierRow]) -> String {
    let mut out =
        String::from("workload,icache,dcache,predictor,width,window,rob,depth,l2,mem,ipc,cost\n");
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{},{},{},{},{},{},{},{},{}\n",
            r.workload,
            r.icache,
            r.dcache,
            r.predictor,
            r.width,
            r.window,
            r.rob,
            r.depth,
            r.l2,
            r.mem,
            r.ipc,
            r.cost
        ));
    }
    out
}

/// Renders the full report as pretty JSON.
pub fn report_json(report: &ExploreReport) -> String {
    serde_json::to_string_pretty(report).expect("report serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::{CacheGeometry, ConfigPoint};
    use crate::pareto::ParetoFrontier;

    #[test]
    fn predictor_labels_round_trip() {
        let all = [
            PredictorConfig::Ideal,
            PredictorConfig::AlwaysTaken,
            PredictorConfig::NeverTaken,
            PredictorConfig::Gshare { bits: 13 },
            PredictorConfig::Bimodal { bits: 10 },
            PredictorConfig::TwoLevel {
                pc_bits: 10,
                history_bits: 8,
            },
            PredictorConfig::Tournament { bits: 12 },
            PredictorConfig::Perceptron {
                bits: 8,
                history: 15,
            },
        ];
        for p in all {
            assert_eq!(parse_predictor(&predictor_label(p)).unwrap(), p);
        }
        assert!(parse_predictor("gshare").is_err());
        assert!(parse_predictor("gshare:13:9").is_err());
        assert!(parse_predictor("magic:3").is_err());
    }

    #[test]
    fn csv_is_deterministic_and_headered() {
        let mut frontier = ParetoFrontier::new();
        frontier.offer(DesignPoint {
            config: ConfigPoint {
                width: 4,
                win_size: 48,
                rob_size: 128,
                pipe_depth: 5,
                l2_latency: 8,
                mem_latency: 200,
            },
            variant: 0,
            workload: 0,
            ipc: 1.5,
            cost: 60.25,
        });
        let variants = vec![HardwareVariant {
            icache: CacheGeometry::l1_baseline(),
            dcache: CacheGeometry::l1_baseline(),
            predictor: PredictorConfig::baseline(),
        }];
        let rows = frontier_rows(frontier.points(), &["gzip".into()], &variants);
        let csv = frontier_csv(&rows);
        assert_eq!(
            csv,
            "workload,icache,dcache,predictor,width,window,rob,depth,l2,mem,ipc,cost\n\
             gzip,4k:4:128,4k:4:128,gshare:13,4,48,128,5,8,200,1.5,60.25\n"
        );
        let json = report_json(&ExploreReport {
            schema_version: SCHEMA_VERSION,
            configs: 1,
            workloads: vec!["gzip".into()],
            variants: vec!["4k:4:128/4k:4:128/gshare:13".into()],
            frontier: rows,
        });
        assert!(json.contains("\"schema_version\": 1"));
        assert!(json.contains("\"ipc\": 1.5"));
    }
}
