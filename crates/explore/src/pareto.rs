//! Incremental Pareto-frontier extraction: maximize IPC, minimize the
//! area/energy proxy.
//!
//! The frontier is kept sorted by cost with IPC strictly increasing
//! along it, so an [`offer`](ParetoFrontier::offer) is a binary search
//! plus (rarely) a splice — `O(log F)` for the millions of dominated
//! points, amortized `O(F)` only when the frontier actually changes.
//! Exactly-equal points keep the first arrival, which makes sweep
//! results independent of how workload shards are interleaved.

use serde::{Deserialize, Serialize};

use crate::grid::ConfigPoint;

/// One evaluated design: a machine config, the hardware variant and
/// workload it was evaluated against, and its (IPC, cost) coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The machine configuration.
    pub config: ConfigPoint,
    /// Index into the sweep's hardware-variant list.
    pub variant: u32,
    /// Index into the sweep's workload list.
    pub workload: u32,
    /// Instructions per cycle predicted by the model.
    pub ipc: f64,
    /// Area/energy proxy ([`crate::cost`]).
    pub cost: f64,
}

/// The non-dominated set under (IPC ↑, cost ↓), built incrementally.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoFrontier {
    /// Invariant: sorted by strictly increasing cost AND strictly
    /// increasing IPC (any violation would mean a dominated point).
    points: Vec<DesignPoint>,
}

impl ParetoFrontier {
    /// An empty frontier.
    pub fn new() -> Self {
        ParetoFrontier::default()
    }

    /// Offers a point; returns `true` if it joined the frontier
    /// (evicting any points it dominates), `false` if it was dominated.
    ///
    /// Dominance is weak: a point is rejected if some existing point
    /// has `cost <=` and `ipc >=` it. An exact (cost, ipc) tie is a
    /// rejection — the first arrival stays.
    pub fn offer(&mut self, point: DesignPoint) -> bool {
        if !(point.ipc.is_finite() && point.cost.is_finite()) {
            return false;
        }
        // First index with cost strictly greater than the candidate's.
        let hi = self.points.partition_point(|q| q.cost <= point.cost);
        // IPC increases along the frontier, so points[hi-1] holds the
        // best IPC among everything at least as cheap.
        if hi > 0 && self.points[hi - 1].ipc >= point.ipc {
            return false;
        }
        // The candidate dominates: equal-cost points with lower IPC
        // (a suffix of [..hi]) and costlier points with no more IPC
        // (a prefix of [hi..]).
        let lo = self.points[..hi].partition_point(|q| q.cost < point.cost);
        let end = hi + self.points[hi..].partition_point(|q| q.ipc <= point.ipc);
        self.points.splice(lo..end, std::iter::once(point));
        true
    }

    /// The frontier, sorted by increasing cost (and thus IPC).
    pub fn points(&self) -> &[DesignPoint] {
        &self.points
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `n` spread-out frontier points (always including both extremes
    /// when `n >= 2`) — the corner points `--sim-check` re-simulates.
    pub fn corners(&self, n: usize) -> Vec<DesignPoint> {
        if self.points.is_empty() || n == 0 {
            return Vec::new();
        }
        if n >= self.points.len() {
            return self.points.clone();
        }
        let mut out = Vec::with_capacity(n);
        let last = (self.points.len() - 1) as f64;
        for k in 0..n {
            let idx = if n == 1 {
                0
            } else {
                (last * k as f64 / (n - 1) as f64).round() as usize
            };
            let p = self.points[idx];
            if out.last() != Some(&p) {
                out.push(p);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(ipc: f64, cost: f64) -> DesignPoint {
        DesignPoint {
            config: ConfigPoint {
                width: 4,
                win_size: 48,
                rob_size: 128,
                pipe_depth: 5,
                l2_latency: 8,
                mem_latency: 200,
            },
            variant: 0,
            workload: 0,
            ipc,
            cost,
        }
    }

    #[test]
    fn keeps_only_non_dominated_points() {
        let mut f = ParetoFrontier::new();
        assert!(f.offer(pt(1.0, 10.0)));
        assert!(f.offer(pt(2.0, 20.0)));
        // Dominated: worse IPC at higher cost.
        assert!(!f.offer(pt(0.5, 15.0)));
        // Dominates the cost-20 point: same IPC, cheaper.
        assert!(f.offer(pt(2.0, 12.0)));
        let ipcs: Vec<f64> = f.points().iter().map(|p| p.ipc).collect();
        assert_eq!(ipcs, vec![1.0, 2.0]);
        let costs: Vec<f64> = f.points().iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![10.0, 12.0]);
    }

    #[test]
    fn exact_ties_keep_the_first_arrival() {
        let mut f = ParetoFrontier::new();
        let first = DesignPoint {
            workload: 7,
            ..pt(1.5, 10.0)
        };
        assert!(f.offer(first));
        assert!(!f.offer(pt(1.5, 10.0)));
        assert_eq!(f.points()[0].workload, 7);
    }

    #[test]
    fn non_finite_points_are_rejected() {
        let mut f = ParetoFrontier::new();
        assert!(!f.offer(pt(f64::NAN, 1.0)));
        assert!(!f.offer(pt(1.0, f64::INFINITY)));
        assert!(f.is_empty());
    }

    #[test]
    fn a_sweeping_point_evicts_a_whole_range() {
        let mut f = ParetoFrontier::new();
        for (ipc, cost) in [(1.0, 10.0), (2.0, 20.0), (3.0, 30.0), (4.0, 40.0)] {
            assert!(f.offer(pt(ipc, cost)));
        }
        // Beats everything but the cost-10 point.
        assert!(f.offer(pt(4.5, 15.0)));
        let costs: Vec<f64> = f.points().iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![10.0, 15.0]);
    }

    #[test]
    fn corners_span_the_frontier() {
        let mut f = ParetoFrontier::new();
        for i in 1..=9 {
            assert!(f.offer(pt(i as f64, 10.0 * i as f64)));
        }
        let corners = f.corners(4);
        assert_eq!(corners.first().unwrap().cost, 10.0);
        assert_eq!(corners.last().unwrap().cost, 90.0);
        assert_eq!(corners.len(), 4);
        assert_eq!(f.corners(100).len(), 9);
        assert!(f.corners(0).is_empty());
    }
}
