//! The streaming evaluator: millions of configs through the batched
//! model with no per-config allocation and no `Result` in the hot path.
//!
//! Axis ordering is chosen so the expensive derived state is reused
//! across the cheap axes. A [`StructuralContext`] costs two transient
//! walks (microseconds); [`PreparedModel::evaluate_at`] costs ~20 flops
//! (tens of nanoseconds). So `(width, win)` — the only axes the walks
//! depend on — sit outermost, and one context serves the whole
//! `rob × l2 × mem × depth` inner block.

use fosm_core::profile::ProgramProfile;
use fosm_core::{FirstOrderModel, ModelError, PreparedModel, ProcessorParams, StructuralContext};

use crate::cost::{hardware_cost, machine_cost};
use crate::grid::{ConfigPoint, HardwareVariant, MachineGrid};
use crate::pareto::{DesignPoint, ParetoFrontier};

/// Identifies which (workload, hardware-variant) pair a shard's points
/// belong to, so frontier entries can be labelled after the sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardTag {
    /// Index into the sweep's workload list.
    pub workload: u32,
    /// Index into the sweep's hardware-variant list.
    pub variant: u32,
}

/// The result of sweeping one profile: configs evaluated, the shard's
/// local frontier, and the single best-IPC point (for reports).
#[derive(Debug, Clone)]
pub struct ShardResult {
    /// Which (workload, variant) pair this shard covered.
    pub tag: ShardTag,
    /// Machine configurations evaluated.
    pub configs: u64,
    /// The shard-local Pareto frontier.
    pub frontier: ParetoFrontier,
    /// The best-IPC point regardless of cost.
    pub best_ipc: Option<DesignPoint>,
}

/// Prepares `model` for `profile` and streams the whole `grid` through
/// the batched evaluator into a shard-local frontier.
///
/// The grid must already be validated ([`MachineGrid::validate`]); the
/// sweep itself cannot fail. `variant` only contributes its fixed cost
/// share — the profile is assumed to have been collected with that
/// hardware.
pub fn sweep_profile(
    model: &FirstOrderModel,
    profile: &ProgramProfile,
    grid: &MachineGrid,
    variant: &HardwareVariant,
    tag: ShardTag,
) -> Result<ShardResult, ModelError> {
    let prepared = model.prepare(profile)?;
    let base_cost = hardware_cost(variant);
    let _span = fosm_obs::span("explore.sweep");
    let mut frontier = ParetoFrontier::new();
    let mut best_ipc: Option<DesignPoint> = None;
    let mut configs = 0u64;
    for &width in &grid.widths {
        for &win_size in &grid.win_sizes {
            let ctx = prepared.structural(width, win_size);
            for &rob_size in &grid.rob_sizes {
                for &l2_latency in &grid.l2_latencies {
                    for &mem_latency in &grid.mem_latencies {
                        for &pipe_depth in &grid.pipe_depths {
                            let point = evaluate_point(
                                &prepared,
                                &ctx,
                                ConfigPoint {
                                    width,
                                    win_size,
                                    rob_size,
                                    pipe_depth,
                                    l2_latency,
                                    mem_latency,
                                },
                                base_cost,
                                tag,
                            );
                            configs += 1;
                            frontier.offer(point);
                            match best_ipc {
                                Some(best) if best.ipc >= point.ipc => {}
                                _ => best_ipc = Some(point),
                            }
                        }
                    }
                }
            }
        }
    }
    fosm_obs::counter_add("explore.configs", configs);
    Ok(ShardResult {
        tag,
        configs,
        frontier,
        best_ipc,
    })
}

#[inline]
fn evaluate_point(
    prepared: &PreparedModel,
    ctx: &StructuralContext,
    config: ConfigPoint,
    base_cost: f64,
    tag: ShardTag,
) -> DesignPoint {
    let estimate = prepared.evaluate_at(
        ctx,
        config.rob_size,
        config.pipe_depth,
        config.l2_latency,
        config.mem_latency,
    );
    DesignPoint {
        config,
        variant: tag.variant,
        workload: tag.workload,
        ipc: 1.0 / estimate.total_cpi(),
        cost: base_cost + machine_cost(&config),
    }
}

/// Merges shard-local frontiers into one global frontier.
///
/// Offering in shard order keeps the result deterministic: ties keep
/// the first arrival, and the shard list's order is fixed by the
/// sweep's (workload, variant) enumeration, not by thread scheduling.
pub fn merge_frontiers(shards: &[ShardResult]) -> ParetoFrontier {
    let mut global = ParetoFrontier::new();
    for shard in shards {
        for &point in shard.frontier.points() {
            global.offer(point);
        }
    }
    fosm_obs::gauge_set("explore.frontier_size", global.len() as f64);
    global
}

/// The [`ProcessorParams`] a design point corresponds to, for
/// re-evaluation through the scalar model or the simulator.
pub fn params_of(config: &ConfigPoint) -> ProcessorParams {
    ProcessorParams {
        width: config.width,
        win_size: config.win_size,
        rob_size: config.rob_size,
        pipe_depth: config.pipe_depth,
        l2_latency: config.l2_latency,
        mem_latency: config.mem_latency,
        ..ProcessorParams::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grid::HardwareAxes;
    use fosm_core::profile::ProfileCollector;
    use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

    fn gzip_profile() -> ProgramProfile {
        let params = ProcessorParams::baseline();
        let mut trace = WorkloadGenerator::new(&BenchmarkSpec::gzip(), 42);
        ProfileCollector::new(&params)
            .collect(&mut trace, 50_000)
            .unwrap()
    }

    #[test]
    fn sweep_covers_the_grid_and_matches_scalar_at_every_frontier_point() {
        let grid = MachineGrid::baseline_sweep();
        grid.validate().unwrap();
        let profile = gzip_profile();
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let variant = HardwareAxes::baseline_only().variants()[0];
        let tag = ShardTag {
            workload: 0,
            variant: 0,
        };
        let shard = sweep_profile(&model, &profile, &grid, &variant, tag).unwrap();
        assert_eq!(shard.configs, grid.len());
        assert!(!shard.frontier.is_empty());
        assert!(shard.best_ipc.is_some());

        // Every frontier point must reproduce bit-identically through
        // the scalar reference path.
        for point in shard.frontier.points() {
            let params = params_of(&point.config);
            let scalar = FirstOrderModel::new(params).evaluate(&profile).unwrap();
            let scalar_ipc = 1.0 / scalar.total_cpi();
            assert_eq!(scalar_ipc.to_bits(), point.ipc.to_bits());
        }
    }

    #[test]
    fn frontier_ipc_never_exceeds_the_best_and_grows_with_cost() {
        let grid = MachineGrid::baseline_sweep();
        let profile = gzip_profile();
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let variant = HardwareAxes::baseline_only().variants()[0];
        let shard = sweep_profile(
            &model,
            &profile,
            &grid,
            &variant,
            ShardTag {
                workload: 0,
                variant: 0,
            },
        )
        .unwrap();
        let best = shard.best_ipc.unwrap();
        let points = shard.frontier.points();
        for pair in points.windows(2) {
            assert!(pair[0].cost < pair[1].cost);
            assert!(pair[0].ipc < pair[1].ipc);
        }
        assert_eq!(
            points.last().unwrap().ipc.to_bits(),
            best.ipc.to_bits(),
            "the costliest frontier point is the best-IPC design"
        );
    }

    #[test]
    fn merge_is_order_deterministic() {
        let grid = MachineGrid::baseline_sweep();
        let profile = gzip_profile();
        let model = FirstOrderModel::new(ProcessorParams::baseline());
        let variant = HardwareAxes::baseline_only().variants()[0];
        let mk = |workload| {
            sweep_profile(
                &model,
                &profile,
                &grid,
                &variant,
                ShardTag {
                    workload,
                    variant: 0,
                },
            )
            .unwrap()
        };
        let shards = vec![mk(0), mk(1)];
        let merged = merge_frontiers(&shards);
        // Identical shards: every tie keeps workload 0.
        assert!(merged.points().iter().all(|p| p.workload == 0));
    }
}
