//! Property-based tests for the branch predictors.

use fosm_branch::{
    Bimodal, Gshare, Ideal, MispredictStats, Predictor, PredictorConfig, SaturatingCounter,
    Tournament, TwoLevelLocal,
};
use proptest::prelude::*;

fn outcome_stream() -> impl Strategy<Value = Vec<(u64, bool)>> {
    prop::collection::vec((0u64..0x1000, any::<bool>()), 1..400)
}

proptest! {
    /// observe() is exactly predict-then-update for table predictors.
    #[test]
    fn observe_is_predict_then_update(stream in outcome_stream()) {
        let mut a = Gshare::new(10);
        let mut b = Gshare::new(10);
        for &(pc, taken) in &stream {
            let expected = b.predict(pc) == taken;
            b.update(pc, taken);
            prop_assert_eq!(a.observe(pc, taken), expected);
        }
    }

    /// Saturating counters never leave their 2-bit domain.
    #[test]
    fn counter_stays_in_domain(updates in prop::collection::vec(any::<bool>(), 0..100)) {
        let mut c = SaturatingCounter::weakly_not_taken();
        for t in updates {
            c.train(t);
            prop_assert!(c.state() <= 3);
        }
    }

    /// Every predictor is deterministic: the same stream gives the same
    /// accuracy.
    #[test]
    fn predictors_are_deterministic(stream in outcome_stream()) {
        for cfg in [
            PredictorConfig::Gshare { bits: 8 },
            PredictorConfig::Bimodal { bits: 8 },
            PredictorConfig::TwoLevel { pc_bits: 6, history_bits: 8 },
            PredictorConfig::Tournament { bits: 8 },
        ] {
            let mut x = cfg.build();
            let mut y = cfg.build();
            for &(pc, taken) in &stream {
                prop_assert_eq!(x.observe(pc, taken), y.observe(pc, taken));
            }
        }
    }

    /// The ideal predictor never mispredicts, on any stream.
    #[test]
    fn ideal_is_perfect(stream in outcome_stream()) {
        let mut p = Ideal::new();
        for (pc, taken) in stream {
            prop_assert!(p.observe(pc, taken));
        }
    }

    /// On a constant-direction branch every warmed-up table predictor
    /// converges to perfect prediction.
    #[test]
    fn constant_branches_become_perfect(taken in any::<bool>(), pc in 0u64..0x4000) {
        let mut predictors: Vec<Box<dyn Predictor>> = vec![
            Box::new(Gshare::new(12)),
            Box::new(Bimodal::new(12)),
            Box::new(TwoLevelLocal::new(8, 10)),
            Box::new(Tournament::new(12)),
        ];
        for p in &mut predictors {
            for _ in 0..64 {
                p.observe(pc, taken);
            }
            prop_assert!(p.observe(pc, taken), "{} failed after warm-up", p.name());
        }
    }

    /// Misprediction statistics are internally consistent.
    #[test]
    fn stats_invariants(outcomes in prop::collection::vec(any::<bool>(), 1..300)) {
        let mut s = MispredictStats::new();
        for (i, correct) in outcomes.iter().enumerate() {
            s.record(*correct, i as u64 * 3);
        }
        prop_assert!(s.mispredicts() <= s.branches());
        prop_assert!((0.0..=1.0).contains(&s.rate()));
        prop_assert_eq!(s.positions().len() as u64, s.mispredicts());
        if s.mispredicts() > 0 {
            let burst = s.mean_burst_length(10);
            prop_assert!(burst >= 1.0);
            prop_assert!(burst <= s.mispredicts() as f64);
        }
    }
}
