//! Perceptron branch predictor (Jiménez & Lin, HPCA 2001).
//!
//! The first neural predictor: each branch hashes to a weight vector;
//! the prediction is the sign of the dot product of the weights with
//! the global history (±1 per bit). Perceptrons exploit much longer
//! histories than two-bit-counter tables of the same budget, at the
//! cost of only learning linearly separable branch functions.

use crate::Predictor;

/// A perceptron predictor with a PC-indexed table of weight vectors
/// over an `history_len`-bit global history.
///
/// # Examples
///
/// ```
/// use fosm_branch::{Perceptron, Predictor};
///
/// let mut p = Perceptron::new(9, 16);
/// // Alternating branch: linearly separable on one history bit.
/// for _ in 0..128 {
///     p.observe(0x40, true);
///     p.observe(0x40, false);
/// }
/// let mut correct = 0;
/// for i in 0..100u64 {
///     if p.observe(0x40, i % 2 == 0) {
///         correct += 1;
///     }
/// }
/// assert!(correct > 90);
/// ```
#[derive(Debug, Clone)]
pub struct Perceptron {
    /// `weights[slot]` = bias weight followed by one weight per history bit.
    weights: Vec<Vec<i16>>,
    history: u64,
    history_len: u32,
    index_bits: u32,
    threshold: i32,
}

impl Perceptron {
    /// Creates a perceptron predictor with `2^index_bits` weight
    /// vectors over `history_len` history bits.
    ///
    /// The training threshold uses the authors' empirically-optimal
    /// `⌊1.93·h + 14⌋`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index_bits <= 24` and `1 <= history_len <= 62`.
    pub fn new(index_bits: u32, history_len: u32) -> Self {
        assert!(
            (1..=24).contains(&index_bits),
            "index bits must be in 1..=24, got {index_bits}"
        );
        assert!(
            (1..=62).contains(&history_len),
            "history length must be in 1..=62, got {history_len}"
        );
        Perceptron {
            weights: vec![vec![0; history_len as usize + 1]; 1 << index_bits],
            history: 0,
            history_len,
            index_bits,
            threshold: (1.93 * history_len as f64 + 14.0) as i32,
        }
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        (((pc >> 2) ^ (pc >> (2 + self.index_bits))) & ((1u64 << self.index_bits) - 1)) as usize
    }

    /// The dot product of the slot's weights with the current history.
    fn output(&self, pc: u64) -> i32 {
        let w = &self.weights[self.slot(pc)];
        let mut y = w[0] as i32; // bias
        for bit in 0..self.history_len {
            let x = if self.history >> bit & 1 == 1 { 1 } else { -1 };
            y += w[bit as usize + 1] as i32 * x;
        }
        y
    }
}

impl Predictor for Perceptron {
    fn predict(&self, pc: u64) -> bool {
        self.output(pc) >= 0
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let y = self.output(pc);
        let predicted = y >= 0;
        let t: i32 = if taken { 1 } else { -1 };
        // Train on mispredictions or low-confidence outputs.
        if predicted != taken || y.abs() <= self.threshold {
            let slot = self.slot(pc);
            let history = self.history;
            let w = &mut self.weights[slot];
            w[0] = (w[0] as i32 + t).clamp(-128, 127) as i16;
            for bit in 0..self.history_len {
                let x: i32 = if history >> bit & 1 == 1 { 1 } else { -1 };
                let idx = bit as usize + 1;
                w[idx] = (w[idx] as i32 + t * x).clamp(-128, 127) as i16;
            }
        }
        self.history = ((self.history << 1) | taken as u64) & ((1u64 << self.history_len) - 1);
    }

    fn name(&self) -> String {
        format!("perceptron-{}x{}", self.index_bits, self.history_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_biased_branches() {
        let mut p = Perceptron::new(8, 12);
        for _ in 0..64 {
            p.observe(0x100, true);
        }
        let correct = (0..100).filter(|_| p.observe(0x100, true)).count();
        assert!(correct >= 99, "got {correct}");
    }

    #[test]
    fn learns_long_period_patterns_counters_cannot() {
        // Period-7 loop pattern: TTTTTTN. A perceptron with >=7 history
        // bits separates it linearly (the 7th-ago outcome predicts).
        let mut p = Perceptron::new(8, 16);
        let mut correct = 0;
        let n = 2000u64;
        for i in 0..n {
            if p.observe(0x200, i % 7 != 6) {
                correct += 1;
            }
        }
        assert!(
            correct as f64 / n as f64 > 0.9,
            "accuracy {}",
            correct as f64 / n as f64
        );
    }

    #[test]
    fn weights_stay_saturated_not_overflowing() {
        let mut p = Perceptron::new(4, 8);
        for _ in 0..100_000 {
            p.observe(0x10, true);
        }
        for w in &p.weights[p.slot(0x10)] {
            assert!((-128..=127).contains(&(*w as i32)));
        }
        assert!(p.predict(0x10));
    }

    #[test]
    fn name_and_validation() {
        assert_eq!(Perceptron::new(9, 16).name(), "perceptron-9x16");
    }

    #[test]
    #[should_panic(expected = "history length")]
    fn rejects_oversized_history() {
        let _ = Perceptron::new(8, 63);
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn rejects_zero_index_bits() {
        let _ = Perceptron::new(0, 8);
    }
}
