//! Two-level local-history predictor (Yeh & Patt PAg-style).

use crate::{Predictor, SaturatingCounter};

/// A two-level predictor with per-branch local histories.
///
/// The first level is a PC-indexed table of local history registers;
/// each history indexes a shared pattern table of two-bit counters.
/// Local predictors excel at branches with short periodic patterns
/// (loop-closing branches with fixed trip counts).
///
/// # Examples
///
/// ```
/// use fosm_branch::{Predictor, TwoLevelLocal};
///
/// let mut p = TwoLevelLocal::new(10, 10);
/// // Loop with trip count 4: T T T N repeating.
/// let mut correct = 0;
/// for i in 0..400u64 {
///     if p.observe(0x80, i % 4 != 3) {
///         correct += 1;
///     }
/// }
/// assert!(correct > 350);
/// ```
#[derive(Debug, Clone)]
pub struct TwoLevelLocal {
    histories: Vec<u64>,
    pattern: Vec<SaturatingCounter>,
    history_bits: u32,
    pc_bits: u32,
}

impl TwoLevelLocal {
    /// Creates a predictor with `2^pc_bits` local history registers of
    /// `history_bits` bits each, over a `2^history_bits`-entry pattern
    /// table.
    ///
    /// # Panics
    ///
    /// Panics unless both bit widths are in `1..=24`.
    pub fn new(pc_bits: u32, history_bits: u32) -> Self {
        assert!(
            (1..=24).contains(&pc_bits),
            "pc bits must be in 1..=24, got {pc_bits}"
        );
        assert!(
            (1..=24).contains(&history_bits),
            "history bits must be in 1..=24, got {history_bits}"
        );
        TwoLevelLocal {
            histories: vec![0; 1 << pc_bits],
            pattern: vec![SaturatingCounter::default(); 1 << history_bits],
            history_bits,
            pc_bits,
        }
    }

    #[inline]
    fn history_slot(&self, pc: u64) -> usize {
        let mask = (1u64 << self.pc_bits) - 1;
        ((pc >> 2) & mask) as usize
    }

    #[inline]
    fn pattern_index(&self, history: u64) -> usize {
        (history & ((1u64 << self.history_bits) - 1)) as usize
    }
}

impl Predictor for TwoLevelLocal {
    fn predict(&self, pc: u64) -> bool {
        let h = self.histories[self.history_slot(pc)];
        self.pattern[self.pattern_index(h)].predict_taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.history_slot(pc);
        let h = self.histories[slot];
        let idx = self.pattern_index(h);
        self.pattern[idx].train(taken);
        self.histories[slot] = ((h << 1) | taken as u64) & ((1u64 << self.history_bits) - 1);
    }

    fn name(&self) -> String {
        format!("two-level-{}x{}", self.pc_bits, self.history_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_fixed_trip_count_loop() {
        let mut p = TwoLevelLocal::new(8, 12);
        let mut correct = 0;
        let n = 1000u64;
        for i in 0..n {
            // trip count 7: taken 6 times, then not taken
            if p.observe(0x100, i % 7 != 6) {
                correct += 1;
            }
        }
        assert!(correct as f64 / n as f64 > 0.9, "got {correct}/{n}");
    }

    #[test]
    fn distinct_pcs_have_distinct_histories() {
        let mut p = TwoLevelLocal::new(8, 8);
        // Train PC A always-taken, PC B always-not-taken, interleaved.
        for _ in 0..100 {
            p.observe(0x100, true);
            p.observe(0x200, false);
        }
        assert!(p.predict(0x100));
        assert!(!p.predict(0x200));
    }

    #[test]
    #[should_panic(expected = "history bits")]
    fn rejects_zero_history_bits() {
        let _ = TwoLevelLocal::new(8, 0);
    }

    #[test]
    fn name_encodes_geometry() {
        assert_eq!(TwoLevelLocal::new(10, 12).name(), "two-level-10x12");
    }
}
