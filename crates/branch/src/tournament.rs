//! Tournament (hybrid) predictor.

use crate::{Bimodal, Gshare, Predictor, SaturatingCounter};

/// A tournament predictor choosing per-branch between a global (gshare)
/// and a local (bimodal) component, Alpha-21264-style.
///
/// A PC-indexed table of two-bit choosers is trained toward whichever
/// component was correct when they disagree.
///
/// # Examples
///
/// ```
/// use fosm_branch::{Predictor, Tournament};
///
/// let mut p = Tournament::new(12);
/// for _ in 0..64 {
///     p.observe(0x10, true);
/// }
/// assert!(p.predict(0x10));
/// ```
#[derive(Debug, Clone)]
pub struct Tournament {
    global: Gshare,
    local: Bimodal,
    chooser: Vec<SaturatingCounter>,
    index_bits: u32,
}

impl Tournament {
    /// Creates a tournament predictor whose components and chooser all
    /// use `2^index_bits` entries.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index_bits <= 30` (propagated from the
    /// component constructors).
    pub fn new(index_bits: u32) -> Self {
        Tournament {
            global: Gshare::new(index_bits),
            local: Bimodal::new(index_bits),
            // weakly_taken state 2 = "prefer global", matching hardware
            // that defaults to the usually-stronger component.
            chooser: vec![SaturatingCounter::weakly_taken(); 1 << index_bits],
            index_bits,
        }
    }

    #[inline]
    fn chooser_index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((pc >> 2) & mask) as usize
    }

    /// Whether the chooser currently prefers the global component for `pc`.
    pub fn prefers_global(&self, pc: u64) -> bool {
        self.chooser[self.chooser_index(pc)].predict_taken()
    }
}

impl Predictor for Tournament {
    fn predict(&self, pc: u64) -> bool {
        if self.prefers_global(pc) {
            self.global.predict(pc)
        } else {
            self.local.predict(pc)
        }
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let g = self.global.predict(pc);
        let l = self.local.predict(pc);
        // Train the chooser only on disagreement: toward global when
        // global alone was right, toward local when local alone was.
        if g != l {
            let idx = self.chooser_index(pc);
            self.chooser[idx].train(g == taken);
        }
        self.global.update(pc, taken);
        self.local.update(pc, taken);
    }

    fn name(&self) -> String {
        format!("tournament-{}", self.index_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_or_beats_the_better_component_on_mixed_workload() {
        // Branch A: alternating (gshare-friendly). Branch B: biased
        // (both handle it). The tournament should do well on both.
        let mut t = Tournament::new(12);
        let mut correct = 0;
        let n = 2000u64;
        for i in 0..n {
            if t.observe(0x100, i % 2 == 0) {
                correct += 1;
            }
            if t.observe(0x200, true) {
                correct += 1;
            }
        }
        let rate = correct as f64 / (2 * n) as f64;
        assert!(rate > 0.9, "tournament accuracy {rate}");
    }

    #[test]
    fn chooser_moves_toward_correct_component() {
        let mut t = Tournament::new(10);
        // Period-2 pattern: gshare learns it, bimodal cannot. The
        // chooser should end up preferring global.
        for i in 0..500u64 {
            t.observe(0x300, i % 2 == 0);
        }
        assert!(t.prefers_global(0x300));
    }

    #[test]
    fn name_encodes_geometry() {
        assert_eq!(Tournament::new(10).name(), "tournament-10");
    }
}
