//! Branch-predictor simulators for the first-order superscalar model.
//!
//! The analytical model consumes branch *misprediction statistics*
//! gathered from functional simulation: the misprediction rate, the
//! distribution of distances between mispredictions (used by the
//! issue-width trend study, paper §6.2), and misprediction burst sizes
//! (paper eq. 3). This crate provides the predictors themselves and the
//! statistics collector:
//!
//! * [`Gshare`] — the paper's 8K-entry gshare baseline,
//! * [`Bimodal`], [`TwoLevelLocal`], [`Tournament`] — classic
//!   alternatives for sensitivity studies,
//! * [`AlwaysTaken`], [`Ideal`] — degenerate predictors for bounding
//!   experiments ("everything ideal except …"),
//! * [`MispredictStats`] — rates, inter-misprediction distances, bursts.
//!
//! # Examples
//!
//! ```
//! use fosm_branch::{Gshare, Predictor};
//!
//! let mut p = Gshare::new(13); // 8K entries, as in the paper
//! // A strongly-biased branch becomes predictable once the global
//! // history register has saturated (one cold entry per history bit).
//! for _ in 0..64 {
//!     p.observe(0x400, true);
//! }
//! assert!(p.observe(0x400, true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counters;
mod gshare;
mod ideal;
mod perceptron;
mod predictor;
mod stats;
mod tournament;
mod twolevel;

pub use config::PredictorConfig;
pub use counters::SaturatingCounter;
pub use gshare::{Bimodal, Gshare};
pub use ideal::{AlwaysTaken, Ideal, NeverTaken};
pub use perceptron::Perceptron;
pub use predictor::Predictor;
pub use stats::MispredictStats;
pub use tournament::Tournament;
pub use twolevel::TwoLevelLocal;
