//! Saturating two-bit counters, the storage cell of classic predictors.

use serde::{Deserialize, Serialize};

/// A two-bit saturating counter.
///
/// States 0–1 predict not-taken, 2–3 predict taken. Training moves the
/// counter one step toward the observed direction, saturating at the
/// ends — the hysteresis that makes loop-closing branches predictable.
///
/// # Examples
///
/// ```
/// use fosm_branch::SaturatingCounter;
///
/// let mut c = SaturatingCounter::weakly_not_taken();
/// assert!(!c.predict_taken());
/// c.train(true);
/// assert!(c.predict_taken()); // 1 -> 2 crosses the threshold
/// c.train(true);
/// c.train(false);
/// assert!(c.predict_taken()); // 3 -> 2 keeps predicting taken
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SaturatingCounter(u8);

impl SaturatingCounter {
    /// Counter initialized to state 1 (weakly not-taken), the common
    /// cold-start choice.
    pub fn weakly_not_taken() -> Self {
        SaturatingCounter(1)
    }

    /// Counter initialized to state 2 (weakly taken).
    pub fn weakly_taken() -> Self {
        SaturatingCounter(2)
    }

    /// Current prediction: `true` in states 2 and 3.
    #[inline]
    pub fn predict_taken(self) -> bool {
        self.0 >= 2
    }

    /// Moves one step toward `taken`, saturating at 0 and 3.
    #[inline]
    pub fn train(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// The raw state in `0..=3`.
    pub fn state(self) -> u8 {
        self.0
    }
}

impl Default for SaturatingCounter {
    fn default() -> Self {
        SaturatingCounter::weakly_not_taken()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_at_both_ends() {
        let mut c = SaturatingCounter::weakly_not_taken();
        for _ in 0..10 {
            c.train(true);
        }
        assert_eq!(c.state(), 3);
        for _ in 0..10 {
            c.train(false);
        }
        assert_eq!(c.state(), 0);
    }

    #[test]
    fn hysteresis_survives_single_anomaly() {
        let mut c = SaturatingCounter::weakly_not_taken();
        c.train(true);
        c.train(true); // state 3
        c.train(false); // state 2: still predicts taken
        assert!(c.predict_taken());
    }

    #[test]
    fn initial_states() {
        assert!(!SaturatingCounter::weakly_not_taken().predict_taken());
        assert!(SaturatingCounter::weakly_taken().predict_taken());
        assert_eq!(SaturatingCounter::default().state(), 1);
    }
}
