//! Declarative predictor configuration.

use serde::{Deserialize, Serialize};

use crate::{
    AlwaysTaken, Bimodal, Gshare, Ideal, NeverTaken, Perceptron, Predictor, Tournament,
    TwoLevelLocal,
};

/// Which branch predictor a simulation or profile collection uses.
///
/// A `PredictorConfig` is a cheap, serializable description;
/// [`build`](PredictorConfig::build) instantiates the (stateful)
/// predictor.
///
/// # Examples
///
/// ```
/// use fosm_branch::PredictorConfig;
///
/// let p = PredictorConfig::Gshare { bits: 13 }.build();
/// assert_eq!(p.name(), "gshare-13");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PredictorConfig {
    /// Perfect prediction (the "ideal branch predictor" simulations).
    Ideal,
    /// gshare with `2^bits` counters (the paper's baseline is 13 bits —
    /// an 8K-entry table).
    Gshare {
        /// Index bits.
        bits: u32,
    },
    /// Bimodal (PC-indexed) with `2^bits` counters.
    Bimodal {
        /// Index bits.
        bits: u32,
    },
    /// Two-level local predictor.
    TwoLevel {
        /// PC-index bits of the history table.
        pc_bits: u32,
        /// History length / pattern-table index bits.
        history_bits: u32,
    },
    /// Tournament of gshare and bimodal.
    Tournament {
        /// Index bits shared by components and chooser.
        bits: u32,
    },
    /// Perceptron predictor (Jiménez & Lin).
    Perceptron {
        /// Index bits of the weight table.
        bits: u32,
        /// Global history length in bits.
        history: u32,
    },
    /// Static always-taken.
    AlwaysTaken,
    /// Static never-taken.
    NeverTaken,
}

impl PredictorConfig {
    /// Instantiates the configured predictor.
    pub fn build(self) -> Box<dyn Predictor> {
        match self {
            PredictorConfig::Ideal => Box::new(Ideal::new()),
            PredictorConfig::Gshare { bits } => Box::new(Gshare::new(bits)),
            PredictorConfig::Bimodal { bits } => Box::new(Bimodal::new(bits)),
            PredictorConfig::TwoLevel {
                pc_bits,
                history_bits,
            } => Box::new(TwoLevelLocal::new(pc_bits, history_bits)),
            PredictorConfig::Tournament { bits } => Box::new(Tournament::new(bits)),
            PredictorConfig::Perceptron { bits, history } => {
                Box::new(Perceptron::new(bits, history))
            }
            PredictorConfig::AlwaysTaken => Box::new(AlwaysTaken::new()),
            PredictorConfig::NeverTaken => Box::new(NeverTaken::new()),
        }
    }

    /// `true` if this is the perfect predictor.
    pub fn is_ideal(self) -> bool {
        self == PredictorConfig::Ideal
    }

    /// The paper's baseline: 8K-entry gshare.
    pub fn baseline() -> Self {
        PredictorConfig::Gshare { bits: 13 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_variant_builds_and_names_itself() {
        for cfg in [
            PredictorConfig::Ideal,
            PredictorConfig::Gshare { bits: 13 },
            PredictorConfig::Bimodal { bits: 12 },
            PredictorConfig::TwoLevel {
                pc_bits: 10,
                history_bits: 10,
            },
            PredictorConfig::Tournament { bits: 12 },
            PredictorConfig::Perceptron {
                bits: 9,
                history: 16,
            },
            PredictorConfig::AlwaysTaken,
            PredictorConfig::NeverTaken,
        ] {
            assert!(!cfg.build().name().is_empty());
        }
    }

    #[test]
    fn baseline_is_8k_gshare() {
        assert_eq!(
            PredictorConfig::baseline(),
            PredictorConfig::Gshare { bits: 13 }
        );
        assert!(!PredictorConfig::baseline().is_ideal());
        assert!(PredictorConfig::Ideal.is_ideal());
    }
}
