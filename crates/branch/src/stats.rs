//! Misprediction statistics.

use serde::{Deserialize, Serialize};

/// Misprediction statistics collected during functional simulation.
///
/// Beyond the raw misprediction rate, the collector records the dynamic
/// instruction position of every misprediction, from which it derives:
///
/// * the mean number of instructions between mispredictions — the
///   x-axis of the paper's issue-width study (Fig. 18),
/// * misprediction *burst* sizes (mispredictions whose resolving
///   branches are close together serialize into one long stall;
///   paper eq. 3 divides the drain+ramp penalty by the burst length).
///
/// # Examples
///
/// ```
/// use fosm_branch::MispredictStats;
///
/// let mut s = MispredictStats::new();
/// s.record(true, 0);
/// s.record(false, 100);
/// s.record(true, 200);
/// assert_eq!(s.branches(), 3);
/// assert_eq!(s.mispredicts(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct MispredictStats {
    branches: u64,
    mispredicts: u64,
    instructions: u64,
    mispredict_positions: Vec<u64>,
}

impl MispredictStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        MispredictStats::default()
    }

    /// Records one conditional branch outcome.
    ///
    /// `correct` is whether the predictor was right; `inst_index` is the
    /// dynamic instruction index of the branch (must be non-decreasing
    /// across calls).
    ///
    /// # Panics
    ///
    /// Panics if `inst_index` goes backwards for a misprediction.
    pub fn record(&mut self, correct: bool, inst_index: u64) {
        self.branches += 1;
        self.instructions = self.instructions.max(inst_index + 1);
        if !correct {
            if let Some(&last) = self.mispredict_positions.last() {
                assert!(
                    inst_index >= last,
                    "misprediction positions must be non-decreasing"
                );
            }
            self.mispredicts += 1;
            self.mispredict_positions.push(inst_index);
        }
    }

    /// Informs the collector of the total trace length, so
    /// [`instructions_between_mispredicts`](Self::instructions_between_mispredicts)
    /// uses the true denominator even if the trace ends after the last
    /// branch.
    pub fn set_total_instructions(&mut self, n: u64) {
        self.instructions = self.instructions.max(n);
    }

    /// Conditional branches observed.
    pub fn branches(&self) -> u64 {
        self.branches
    }

    /// Mispredicted conditional branches.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate in `[0, 1]`; 0.0 with no branches.
    pub fn rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }

    /// Mean dynamic instructions between consecutive mispredictions
    /// (total instructions / mispredictions). `f64::INFINITY` when no
    /// branch mispredicted.
    pub fn instructions_between_mispredicts(&self) -> f64 {
        if self.mispredicts == 0 {
            f64::INFINITY
        } else {
            self.instructions as f64 / self.mispredicts as f64
        }
    }

    /// Dynamic instruction positions of every misprediction.
    pub fn positions(&self) -> &[u64] {
        &self.mispredict_positions
    }

    /// Flushes lookup/mispredict totals into an observability
    /// registry as `<prefix>.lookups` / `<prefix>.mispredicts`.
    ///
    /// Called once per finished run; the per-branch hot path only
    /// touches this struct's local counters.
    pub fn observe_into(&self, registry: &fosm_obs::Registry, prefix: &str) {
        registry.counter_add(&format!("{prefix}.lookups"), self.branches);
        registry.counter_add(&format!("{prefix}.mispredicts"), self.mispredicts);
    }

    /// Mean burst length: consecutive mispredictions within
    /// `threshold` instructions of their *predecessor* count as one
    /// burst (the `n` of paper eq. 3). Returns 0.0 with no
    /// mispredictions.
    pub fn mean_burst_length(&self, threshold: u64) -> f64 {
        let mut bursts = 0u64;
        let mut prev: Option<u64> = None;
        for &pos in &self.mispredict_positions {
            match prev {
                Some(p) if pos - p <= threshold => {}
                _ => bursts += 1,
            }
            prev = Some(pos);
        }
        if bursts == 0 {
            0.0
        } else {
            self.mispredicts as f64 / bursts as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_distance() {
        let mut s = MispredictStats::new();
        for i in 0..10u64 {
            // every 5th branch mispredicts; branches 100 apart
            s.record(i % 5 != 0, i * 100);
        }
        s.set_total_instructions(1000);
        assert_eq!(s.branches(), 10);
        assert_eq!(s.mispredicts(), 2);
        assert!((s.rate() - 0.2).abs() < 1e-12);
        assert!((s.instructions_between_mispredicts() - 500.0).abs() < 1e-12);
    }

    #[test]
    fn no_mispredicts_distance_is_infinite() {
        let mut s = MispredictStats::new();
        s.record(true, 0);
        assert_eq!(s.instructions_between_mispredicts(), f64::INFINITY);
        assert_eq!(s.rate(), 0.0);
        assert_eq!(s.mean_burst_length(10), 0.0);
    }

    #[test]
    fn burst_lengths_group_close_mispredicts() {
        let mut s = MispredictStats::new();
        // Two bursts: {0, 5, 10} and {1000}.
        for pos in [0u64, 5, 10, 1000] {
            s.record(false, pos);
        }
        assert!((s.mean_burst_length(20) - 2.0).abs() < 1e-12); // 4 mispredicts / 2 bursts
                                                                // Tiny threshold: every misprediction is its own burst.
        assert!((s.mean_burst_length(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn out_of_order_positions_rejected() {
        let mut s = MispredictStats::new();
        s.record(false, 100);
        s.record(false, 50);
    }
}
