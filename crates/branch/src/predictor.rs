//! The predictor interface.

/// A conditional-branch direction predictor.
///
/// Predictors are driven from a resolved trace: for each dynamic
/// conditional branch the caller knows the true direction and asks the
/// predictor whether it *would have* predicted correctly, via
/// [`observe`](Predictor::observe). The split
/// [`predict`](Predictor::predict)/[`update`](Predictor::update) pair is
/// also available for callers that need to act on the prediction before
/// resolution (e.g. the detailed simulator's fetch stage).
///
/// The trait is object-safe; heterogeneous predictor studies can use
/// `Box<dyn Predictor>`.
pub trait Predictor {
    /// Predicts the direction of the branch at `pc` (`true` = taken)
    /// without updating any state.
    fn predict(&self, pc: u64) -> bool;

    /// Trains the predictor with the resolved direction of the branch
    /// at `pc`, updating pattern tables and histories.
    fn update(&mut self, pc: u64, taken: bool);

    /// Predicts, trains, and reports whether the prediction was correct.
    ///
    /// Degenerate predictors (e.g. [`Ideal`](crate::Ideal)) override
    /// this to bypass the predict/update mechanics.
    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        let predicted = self.predict(pc);
        self.update(pc, taken);
        predicted == taken
    }

    /// A short human-readable name for reports ("gshare-13", …).
    fn name(&self) -> String;
}

impl<P: Predictor + ?Sized> Predictor for Box<P> {
    fn predict(&self, pc: u64) -> bool {
        (**self).predict(pc)
    }

    fn update(&mut self, pc: u64, taken: bool) {
        (**self).update(pc, taken)
    }

    fn observe(&mut self, pc: u64, taken: bool) -> bool {
        (**self).observe(pc, taken)
    }

    fn name(&self) -> String {
        (**self).name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gshare;

    #[test]
    fn boxed_predictor_forwards() {
        let mut p: Box<dyn Predictor> = Box::new(Gshare::new(4));
        let _ = p.predict(0);
        p.update(0, true);
        let _ = p.observe(0, true);
        assert!(p.name().contains("gshare"));
    }
}
