//! Degenerate predictors for bounding experiments.

use crate::Predictor;

/// A perfect predictor: every observation is correct.
///
/// Used for the paper's "everything ideal except …" simulations, where
/// branch mispredictions are switched off entirely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ideal;

impl Ideal {
    /// Creates an ideal predictor.
    pub fn new() -> Self {
        Ideal
    }
}

impl Predictor for Ideal {
    fn predict(&self, _pc: u64) -> bool {
        // Unknowable without the outcome; observe() is what matters.
        true
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn observe(&mut self, _pc: u64, _taken: bool) -> bool {
        true
    }

    fn name(&self) -> String {
        "ideal".to_string()
    }
}

/// A static predictor that always guesses taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AlwaysTaken;

impl AlwaysTaken {
    /// Creates an always-taken predictor.
    pub fn new() -> Self {
        AlwaysTaken
    }
}

impl Predictor for AlwaysTaken {
    fn predict(&self, _pc: u64) -> bool {
        true
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> String {
        "always-taken".to_string()
    }
}

/// A static predictor that always guesses not-taken.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NeverTaken;

impl NeverTaken {
    /// Creates a never-taken predictor.
    pub fn new() -> Self {
        NeverTaken
    }
}

impl Predictor for NeverTaken {
    fn predict(&self, _pc: u64) -> bool {
        false
    }

    fn update(&mut self, _pc: u64, _taken: bool) {}

    fn name(&self) -> String {
        "never-taken".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_always_correct() {
        let mut p = Ideal::new();
        assert!(p.observe(0x0, true));
        assert!(p.observe(0x0, false));
    }

    #[test]
    fn static_predictors_score_by_direction() {
        let mut t = AlwaysTaken::new();
        assert!(t.observe(0, true));
        assert!(!t.observe(0, false));
        let mut n = NeverTaken::new();
        assert!(!n.observe(0, true));
        assert!(n.observe(0, false));
    }

    #[test]
    fn names() {
        assert_eq!(Ideal::new().name(), "ideal");
        assert_eq!(AlwaysTaken::new().name(), "always-taken");
        assert_eq!(NeverTaken::new().name(), "never-taken");
    }
}
