//! gshare and bimodal pattern-history predictors.

use crate::{Predictor, SaturatingCounter};

/// The gshare global-history predictor (McFarling), the paper's baseline
/// at 13 index bits (8K two-bit counters ≈ "8K gShare").
///
/// The pattern table is indexed by `pc ⊕ global_history`; the global
/// history register shifts in each resolved direction.
///
/// # Examples
///
/// ```
/// use fosm_branch::{Gshare, Predictor};
///
/// let mut p = Gshare::new(13);
/// // Alternating branch: gshare learns the pattern via history.
/// let mut correct = 0;
/// for i in 0..200u64 {
///     if p.observe(0x40, i % 2 == 0) {
///         correct += 1;
///     }
/// }
/// assert!(correct > 150);
/// ```
#[derive(Debug, Clone)]
pub struct Gshare {
    table: Vec<SaturatingCounter>,
    history: u64,
    index_bits: u32,
}

impl Gshare {
    /// Creates a gshare predictor with `2^index_bits` counters and an
    /// `index_bits`-wide global history register.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index_bits <= 30`.
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&index_bits),
            "gshare index bits must be in 1..=30, got {index_bits}"
        );
        Gshare {
            table: vec![SaturatingCounter::default(); 1 << index_bits],
            history: 0,
            index_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Number of two-bit counters in the pattern table.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }
}

impl Predictor for Gshare {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
        let mask = (1u64 << self.index_bits) - 1;
        self.history = ((self.history << 1) | taken as u64) & mask;
    }

    fn name(&self) -> String {
        format!("gshare-{}", self.index_bits)
    }
}

/// A bimodal (PC-indexed) predictor: one two-bit counter per table slot,
/// no history. The classic baseline gshare is compared against.
#[derive(Debug, Clone)]
pub struct Bimodal {
    table: Vec<SaturatingCounter>,
    index_bits: u32,
}

impl Bimodal {
    /// Creates a bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= index_bits <= 30`.
    pub fn new(index_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&index_bits),
            "bimodal index bits must be in 1..=30, got {index_bits}"
        );
        Bimodal {
            table: vec![SaturatingCounter::default(); 1 << index_bits],
            index_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u64) -> usize {
        let mask = (1u64 << self.index_bits) - 1;
        ((pc >> 2) & mask) as usize
    }
}

impl Predictor for Bimodal {
    fn predict(&self, pc: u64) -> bool {
        self.table[self.index(pc)].predict_taken()
    }

    fn update(&mut self, pc: u64, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].train(taken);
    }

    fn name(&self) -> String {
        format!("bimodal-{}", self.index_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_biased_branch() {
        let mut p = Gshare::new(10);
        let mut correct = 0;
        // Warm-up: the history register shifts in 1s, walking the index
        // through ~history-width distinct cold entries before settling.
        for _ in 0..100 {
            p.observe(0x1000, true);
        }
        for _ in 0..100 {
            if p.observe(0x1000, true) {
                correct += 1;
            }
        }
        assert_eq!(correct, 100, "warmed-up biased branch must be perfect");
    }

    #[test]
    fn gshare_learns_history_pattern_bimodal_cannot() {
        // Period-2 pattern at a single PC.
        let mut g = Gshare::new(10);
        let mut b = Bimodal::new(10);
        let (mut gc, mut bc) = (0, 0);
        for i in 0..400u64 {
            let taken = i % 2 == 0;
            if g.observe(0x2000, taken) {
                gc += 1;
            }
            if b.observe(0x2000, taken) {
                bc += 1;
            }
        }
        assert!(gc > 350, "gshare should learn alternation, got {gc}");
        assert!(bc < 300, "bimodal cannot learn alternation, got {bc}");
    }

    #[test]
    fn random_branches_mispredict_about_half_the_time() {
        let mut p = Gshare::new(13);
        // Deterministic pseudo-random direction stream.
        let mut x = 0x12345678u64;
        let mut correct = 0;
        let n = 10_000;
        for _ in 0..n {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if p.observe(0x3000 + (x & 0xfc), x & 1 == 1) {
                correct += 1;
            }
        }
        let rate = correct as f64 / n as f64;
        assert!(
            (0.4..0.6).contains(&rate),
            "accuracy on noise should be ~0.5, got {rate}"
        );
    }

    #[test]
    fn table_size_matches_bits() {
        assert_eq!(Gshare::new(13).table_size(), 8192);
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn gshare_rejects_zero_bits() {
        let _ = Gshare::new(0);
    }

    #[test]
    #[should_panic(expected = "index bits")]
    fn bimodal_rejects_huge_bits() {
        let _ = Bimodal::new(31);
    }

    #[test]
    fn names_encode_geometry() {
        assert_eq!(Gshare::new(13).name(), "gshare-13");
        assert_eq!(Bimodal::new(12).name(), "bimodal-12");
    }
}
