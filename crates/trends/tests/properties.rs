//! Property-based tests for the trend studies.

use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_trends::issue_width::IssueWidthStudy;
use fosm_trends::pipeline::PipelineStudy;
use proptest::prelude::*;

fn iw_strategy() -> impl Strategy<Value = IwCharacteristic> {
    (0.8f64..2.0, 0.25f64..0.85, 1.0f64..2.2)
        .prop_map(|(a, b, l)| IwCharacteristic::new(PowerLaw::new(a, b).unwrap(), l).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// IPC decreases monotonically with pipeline depth, for any
    /// characteristic and misprediction density.
    #[test]
    fn ipc_monotone_in_depth(
        iw in iw_strategy(),
        misp in 0.001f64..0.05,
        width in prop::sample::select(vec![2u32, 3, 4, 8]),
    ) {
        let mut study = PipelineStudy::paper();
        study.iw = iw;
        study.mispredict_rate = misp / study.branch_fraction;
        let mut prev = f64::INFINITY;
        for depth in [1u32, 3, 8, 20, 50, 100] {
            let ipc = study.ipc(width, depth).unwrap();
            prop_assert!(ipc <= prev + 1e-12, "depth {depth}: {ipc} > {prev}");
            prop_assert!(ipc > 0.0 && ipc <= width as f64 + 1e-9);
            prev = ipc;
        }
    }

    /// The optimal depth exists within the sweep and is stable under
    /// re-evaluation.
    #[test]
    fn optimal_depth_is_deterministic(iw in iw_strategy()) {
        let mut study = PipelineStudy::paper();
        study.iw = iw;
        let a = study.optimal_depth(4, 1..=120).unwrap();
        let b = study.optimal_depth(4, 1..=120).unwrap();
        prop_assert_eq!(a, b);
        prop_assert!((1..=120).contains(&a));
    }

    /// Higher misprediction densities push the optimum to shallower
    /// pipelines (or leave it unchanged).
    #[test]
    fn more_mispredicts_mean_shallower_optima(iw in iw_strategy()) {
        let mut clean = PipelineStudy::paper();
        clean.iw = iw;
        clean.mispredict_rate = 0.01;
        let mut dirty = clean.clone();
        dirty.mispredict_rate = 0.10;
        let d_clean = clean.optimal_depth(4, 1..=150).unwrap();
        let d_dirty = dirty.optimal_depth(4, 1..=150).unwrap();
        prop_assert!(d_dirty <= d_clean, "dirty {d_dirty} vs clean {d_clean}");
    }

    /// Epoch accounting: issued instructions match the requested
    /// distance and the near-max fraction is a probability.
    #[test]
    fn epoch_accounting(iw in iw_strategy(), distance in 50.0f64..5000.0) {
        let study = IssueWidthStudy::paper(iw);
        let e = study.epoch(4, distance).unwrap();
        prop_assert!((e.instructions - distance).abs() < 5.0);
        prop_assert!((0.0..=1.0).contains(&e.fraction_near_max));
        prop_assert!(!e.rates.is_empty());
    }

    /// The near-max fraction grows with distance.
    #[test]
    fn fraction_monotone_in_distance(iw in iw_strategy()) {
        let study = IssueWidthStudy::paper(iw);
        let short = study.epoch(4, 100.0).unwrap().fraction_near_max;
        let long = study.epoch(4, 5_000.0).unwrap().fraction_near_max;
        prop_assert!(long + 1e-9 >= short, "long {long} vs short {short}");
    }
}
