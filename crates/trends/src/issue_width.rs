//! Issue-width study (paper §6.2, Fig. 18–19).

use fosm_core::transient::dispatch_epoch;
use fosm_core::ModelError;
use fosm_depgraph::IwCharacteristic;
use serde::{Deserialize, Serialize};

/// The issue-width study of paper §6.2: how good must branch prediction
/// be (measured as instructions between mispredictions) for a machine
/// to spend a given fraction of its time issuing near its full width?
///
/// "Close to the implemented issue width" means within 12.5% of it, as
/// in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IssueWidthStudy {
    /// The IW characteristic assumed for the workload.
    pub iw: IwCharacteristic,
    /// Issue-window size (large enough not to be the limiter).
    pub win_size: u32,
    /// Front-end pipeline depth ∆P.
    pub pipe_depth: u32,
    /// "Close" threshold as a fraction of the issue width (paper: 0.125).
    pub closeness: f64,
}

/// The issue-rate timeline between two mispredictions, and summary
/// time-at-peak statistics (one curve of the paper's Fig. 19).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpochProfile {
    /// Issue rate per cycle from one misprediction's resolution to the
    /// next misprediction's resolution.
    pub rates: Vec<f64>,
    /// Useful instructions issued over the epoch.
    pub instructions: f64,
    /// Fraction of epoch cycles spent within the closeness threshold of
    /// the full issue width.
    pub fraction_near_max: f64,
}

impl IssueWidthStudy {
    /// The paper's configuration: ∆P = 5, "close" = within 12.5%.
    pub fn paper(iw: IwCharacteristic) -> Self {
        IssueWidthStudy {
            iw,
            win_size: 1024,
            pipe_depth: 5,
            closeness: 0.125,
        }
    }

    /// Walks one inter-misprediction epoch of `distance` useful
    /// instructions on a `width`-wide machine (Fig. 19).
    ///
    /// After the previous misprediction resolves, the pipeline refills
    /// for ∆P dead cycles; dispatch then inserts `width` instructions
    /// per cycle while issue follows the IW characteristic. Once all
    /// `distance` instructions have been dispatched (the next
    /// mispredicted branch has entered the window), dispatch stops and
    /// the window drains — so short distances cut the ramp off early,
    /// exactly as in the paper's figure where a width-8 machine barely
    /// exceeds 6 IPC before the next flush.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] for a zero width or a
    /// non-positive distance.
    pub fn epoch(&self, width: u32, distance: f64) -> Result<EpochProfile, ModelError> {
        if width == 0 {
            return Err(ModelError::InvalidParams("width must be non-zero".into()));
        }
        if distance <= 0.0 || distance.is_nan() {
            return Err(ModelError::InvalidParams(format!(
                "distance {distance} must be positive"
            )));
        }
        // The walk itself lives beside the drain/ramp walks in
        // `fosm_core::transient`, shared with the explore engine's
        // batched evaluation path.
        let walk = dispatch_epoch(&self.iw, width, self.win_size, self.pipe_depth, distance);
        let threshold = (1.0 - self.closeness) * width as f64;
        let near = walk.rates.iter().filter(|&&r| r >= threshold).count();
        Ok(EpochProfile {
            fraction_near_max: near as f64 / walk.rates.len() as f64,
            instructions: walk.issued,
            rates: walk.rates,
        })
    }

    /// Fig. 18: the number of instructions between mispredictions
    /// needed to spend `fraction` of the time within the closeness
    /// threshold of the full width (found by bisection over
    /// [`epoch`](Self::epoch)).
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if `fraction` is not in `(0, 1)`,
    /// the width is zero, or the machine cannot reach the threshold at
    /// all (its steady rate is below it — e.g. the window is too small
    /// to saturate the width).
    pub fn distance_for_fraction(&self, width: u32, fraction: f64) -> Result<f64, ModelError> {
        if width == 0 {
            return Err(ModelError::InvalidParams("width must be non-zero".into()));
        }
        if !(0.0 < fraction && fraction < 1.0) {
            return Err(ModelError::InvalidParams(format!(
                "fraction {fraction} must be in (0, 1)"
            )));
        }
        let steady = self.iw.steady_state_ipc(self.win_size, width);
        let threshold = (1.0 - self.closeness) * width as f64;
        if steady < threshold {
            return Err(ModelError::InvalidParams(format!(
                "steady-state rate {steady:.2} never reaches the near-max threshold {threshold:.2}"
            )));
        }

        // Grow until the fraction is reached, then bisect.
        let mut lo = width as f64;
        let mut hi = lo;
        for _ in 0..64 {
            if self.epoch(width, hi)?.fraction_near_max >= fraction {
                break;
            }
            lo = hi;
            hi *= 2.0;
        }
        for _ in 0..64 {
            let mid = 0.5 * (lo + hi);
            if self.epoch(width, mid)?.fraction_near_max >= fraction {
                hi = mid;
            } else {
                lo = mid;
            }
            if hi - lo < 1.0 {
                break;
            }
        }
        Ok(hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fosm_depgraph::PowerLaw;

    fn study() -> IssueWidthStudy {
        IssueWidthStudy::paper(IwCharacteristic::new(PowerLaw::square_root(), 1.0).unwrap())
    }

    #[test]
    fn epoch_shape_matches_fig19() {
        let s = study();
        let e = s.epoch(4, 200.0).unwrap();
        // Starts with the dead refill (zeros).
        assert_eq!(e.rates[0], 0.0);
        // Issues (nearly) all useful instructions of the epoch.
        assert!(
            (e.instructions - 200.0).abs() < 4.5,
            "issued {}",
            e.instructions
        );
        // Gets essentially to full width somewhere in the middle (the
        // occupancy approaches its fixed point asymptotically).
        assert!(e.rates.iter().any(|&r| r > 3.9));
        assert!(e.fraction_near_max > 0.0 && e.fraction_near_max < 1.0);
    }

    #[test]
    fn short_epochs_cut_the_ramp_off_early() {
        // Fig. 19: with the paper's inter-misprediction distances, a
        // width-8 machine barely exceeds 6 issues per cycle.
        let s = study();
        let e = s.epoch(8, 120.0).unwrap();
        let peak = e.rates.iter().fold(0.0f64, |a, &b| a.max(b));
        assert!(peak < 8.0, "peak {peak} should not reach the full width");
        assert!(peak > 3.0, "peak {peak} should still ramp substantially");
    }

    #[test]
    fn doubling_width_requires_quadrupling_distance() {
        // The paper's headline conclusion (Fig. 18): same time-at-peak
        // fraction at 2x width needs ~4x instructions between
        // mispredictions (for the square-root characteristic).
        let s = study();
        for fraction in [0.2, 0.4] {
            let d4 = s.distance_for_fraction(4, fraction).unwrap();
            let d8 = s.distance_for_fraction(8, fraction).unwrap();
            let ratio = d8 / d4;
            assert!(
                (2.5..=6.0).contains(&ratio),
                "fraction {fraction}: d4 {d4:.0}, d8 {d8:.0}, ratio {ratio} should be ≈4"
            );
        }
    }

    #[test]
    fn distance_increases_with_target_fraction() {
        let s = study();
        let lo = s.distance_for_fraction(4, 0.2).unwrap();
        let hi = s.distance_for_fraction(4, 0.7).unwrap();
        assert!(hi > 2.0 * lo, "lo {lo}, hi {hi}");
    }

    #[test]
    fn forward_and_inverse_agree() {
        let s = study();
        for target in [0.3, 0.5] {
            let d = s.distance_for_fraction(4, target).unwrap();
            let f = s.epoch(4, d).unwrap().fraction_near_max;
            assert!(
                (f - target).abs() < 0.05,
                "target {target}: round-trip fraction {f} at distance {d:.0}"
            );
        }
    }

    #[test]
    fn longer_epochs_spend_more_time_at_peak() {
        let s = study();
        let short = s.epoch(8, 600.0).unwrap();
        let long = s.epoch(8, 6000.0).unwrap();
        assert!(long.fraction_near_max > short.fraction_near_max);
    }

    #[test]
    fn unsaturable_machine_is_rejected() {
        // Window of 4 can never feed a width-8 machine near its peak.
        let mut s = study();
        s.win_size = 4;
        assert!(s.distance_for_fraction(8, 0.5).is_err());
    }

    #[test]
    fn invalid_inputs_rejected() {
        let s = study();
        assert!(s.epoch(0, 100.0).is_err());
        assert!(s.epoch(4, 0.0).is_err());
        assert!(s.distance_for_fraction(4, 0.0).is_err());
        assert!(s.distance_for_fraction(4, 1.0).is_err());
        assert!(s.distance_for_fraction(0, 0.5).is_err());
    }
}
