//! Pipeline-depth study (paper §6.1, Fig. 17).

use fosm_core::branch::BurstAssumption;
use fosm_core::{ModelError, StructuralContext};
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use serde::{Deserialize, Serialize};

/// One point of a depth sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DepthPoint {
    /// Front-end pipeline depth in stages.
    pub depth: u32,
    /// Model IPC at that depth.
    pub ipc: f64,
    /// Clock frequency in GHz implied by the circuit parameters.
    pub frequency_ghz: f64,
    /// Absolute performance in billions of instructions per second.
    pub bips: f64,
}

/// The pipeline-depth study of paper §6.1.
///
/// Branch mispredictions are the limiter: the study assumes a fixed
/// misprediction density (the paper: one in five instructions is a
/// branch, 5% of branches mispredict) and asks how IPC and absolute
/// performance change as the front end deepens. Absolute performance
/// uses the paper's circuit numbers (from Sprangle & Carmean): total
/// front-end logic depth of 8200 ps and 90 ps of flip-flop overhead
/// per stage, so an `n`-stage pipeline clocks at `8200/n + 90` ps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineStudy {
    /// The IW characteristic assumed for the workload.
    pub iw: IwCharacteristic,
    /// Issue-window size.
    pub win_size: u32,
    /// ROB size (structural only; penalties here are branch-driven).
    pub rob_size: u32,
    /// Fraction of instructions that are conditional branches.
    pub branch_fraction: f64,
    /// Fraction of branches that mispredict.
    pub mispredict_rate: f64,
    /// Total front-end logic delay, in picoseconds.
    pub logic_delay_ps: f64,
    /// Per-stage flip-flop/latch overhead, in picoseconds.
    pub ff_overhead_ps: f64,
    /// Burst assumption for the misprediction penalty.
    pub burst: BurstAssumption,
}

impl PipelineStudy {
    /// The paper's configuration: square-root IW characteristic, 1-in-5
    /// branches, 5% misprediction rate, 8200 ps logic, 90 ps overhead.
    pub fn paper() -> Self {
        PipelineStudy {
            iw: IwCharacteristic::new(PowerLaw::square_root(), 1.0)
                .expect("square-root law is valid"),
            win_size: 256,
            rob_size: 512,
            branch_fraction: 0.2,
            mispredict_rate: 0.05,
            logic_delay_ps: 8200.0,
            ff_overhead_ps: 90.0,
            burst: BurstAssumption::Isolated,
        }
    }

    /// Mispredictions per instruction assumed by the study.
    pub fn mispredicts_per_inst(&self) -> f64 {
        self.branch_fraction * self.mispredict_rate
    }

    /// Clock frequency in GHz of an `n`-stage front end.
    pub fn frequency_ghz(&self, depth: u32) -> f64 {
        1000.0 / (self.logic_delay_ps / depth as f64 + self.ff_overhead_ps)
    }

    /// Model IPC at one (width, depth) point.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if width or depth is zero.
    pub fn ipc(&self, width: u32, depth: u32) -> Result<f64, ModelError> {
        if width == 0 || depth == 0 {
            return Err(ModelError::InvalidParams(
                "width and depth must be non-zero".into(),
            ));
        }
        let ctx = StructuralContext::walk(&self.iw, width, self.win_size);
        Ok(self.ipc_at(&ctx, depth))
    }

    /// The study's CPI recipe on a prepared structural context — the
    /// same drain/ramp/steady-state quantities the explore engine
    /// batches, so the study and the sweep share one evaluation path.
    fn ipc_at(&self, ctx: &StructuralContext, depth: u32) -> f64 {
        let steady = ctx.steady_ipc();
        let penalty = ctx.branch_penalty(depth, self.burst);
        let cpi = 1.0 / steady + self.mispredicts_per_inst() * penalty;
        1.0 / cpi
    }

    /// Sweeps depths for one width (one curve of Fig. 17a/b). The
    /// structural walk happens once; the depth axis reuses it.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if width or any depth is zero.
    pub fn sweep(
        &self,
        width: u32,
        depths: impl IntoIterator<Item = u32>,
    ) -> Result<Vec<DepthPoint>, ModelError> {
        if width == 0 {
            return Err(ModelError::InvalidParams(
                "width and depth must be non-zero".into(),
            ));
        }
        let ctx = StructuralContext::walk(&self.iw, width, self.win_size);
        depths
            .into_iter()
            .map(|depth| {
                if depth == 0 {
                    return Err(ModelError::InvalidParams(
                        "width and depth must be non-zero".into(),
                    ));
                }
                let ipc = self.ipc_at(&ctx, depth);
                let frequency_ghz = self.frequency_ghz(depth);
                Ok(DepthPoint {
                    depth,
                    ipc,
                    frequency_ghz,
                    bips: ipc * frequency_ghz,
                })
            })
            .collect()
    }

    /// The depth maximizing absolute performance (BIPS) for a width.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidParams`] if the depth range is empty or
    /// contains zero.
    pub fn optimal_depth(
        &self,
        width: u32,
        depths: impl IntoIterator<Item = u32>,
    ) -> Result<u32, ModelError> {
        let series = self.sweep(width, depths)?;
        series
            .iter()
            .max_by(|a, b| a.bips.total_cmp(&b.bips))
            .map(|p| p.depth)
            .ok_or_else(|| ModelError::InvalidParams("empty depth range".into()))
    }

    /// Per-misprediction penalty at one (width, depth) point — exposes
    /// the drain/ramp/refill decomposition for reporting.
    pub fn penalty_parts(&self, width: u32, depth: u32) -> (f64, f64, f64) {
        let ctx = StructuralContext::walk(&self.iw, width, self.win_size);
        (ctx.win_drain(), depth as f64, ctx.ramp_up())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_decreases_with_depth() {
        let s = PipelineStudy::paper();
        let series = s.sweep(4, [1, 5, 20, 50, 100]).unwrap();
        for pair in series.windows(2) {
            assert!(pair[1].ipc < pair[0].ipc, "{pair:?}");
        }
    }

    #[test]
    fn wider_issue_advantage_shrinks_with_depth() {
        // Fig. 17a: as the front end deepens, the IPC advantage of
        // wider issue diminishes (relatively).
        let s = PipelineStudy::paper();
        let shallow8 = s.ipc(8, 2).unwrap() / s.ipc(2, 2).unwrap();
        let deep8 = s.ipc(8, 80).unwrap() / s.ipc(2, 80).unwrap();
        assert!(
            deep8 < shallow8,
            "width-8 advantage should shrink: shallow {shallow8}, deep {deep8}"
        );
    }

    #[test]
    fn optimal_depth_matches_sprangle_carmean_at_width_3() {
        // Paper: "for the issue width 3 curve we get the same result as
        // reported in [4], the optimal pipeline depth is around 55".
        let s = PipelineStudy::paper();
        let best = s.optimal_depth(3, 1..=120).unwrap();
        assert!(
            (40..=70).contains(&best),
            "optimal depth {best}, expected ≈55"
        );
    }

    #[test]
    fn wider_machines_prefer_shorter_pipelines() {
        // Paper: "the optimal pipeline depth for wider issue-width
        // moves towards shorter front-end pipeline depth".
        let s = PipelineStudy::paper();
        let d2 = s.optimal_depth(2, 1..=140).unwrap();
        let d8 = s.optimal_depth(8, 1..=140).unwrap();
        assert!(
            d8 < d2,
            "width 8 optimum {d8} should be below width 2 optimum {d2}"
        );
    }

    #[test]
    fn frequency_follows_the_circuit_model() {
        let s = PipelineStudy::paper();
        // 1 stage: 8290 ps -> ~0.121 GHz; 82 stages: 190 ps -> ~5.3 GHz.
        assert!((s.frequency_ghz(1) - 1000.0 / 8290.0).abs() < 1e-9);
        assert!(s.frequency_ghz(82) > 5.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let s = PipelineStudy::paper();
        assert!(s.ipc(0, 5).is_err());
        assert!(s.ipc(4, 0).is_err());
        assert!(s.optimal_depth(4, std::iter::empty()).is_err());
    }

    #[test]
    fn bips_is_ipc_times_frequency() {
        let s = PipelineStudy::paper();
        let pt = &s.sweep(4, [10]).unwrap()[0];
        assert!((pt.bips - pt.ipc * pt.frequency_ghz).abs() < 1e-12);
    }

    #[test]
    fn penalty_parts_scale_with_depth_only_in_the_middle() {
        let s = PipelineStudy::paper();
        let (d1, p1, r1) = s.penalty_parts(4, 5);
        let (d2, p2, r2) = s.penalty_parts(4, 50);
        assert_eq!(d1, d2);
        assert_eq!(r1, r2);
        assert!((p2 - p1 - 45.0).abs() < 1e-9);
    }
}
