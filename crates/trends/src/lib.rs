//! Microarchitecture trend studies built on the first-order model
//! (paper §6).
//!
//! The paper closes by using the model for two forward-looking
//! analyses, both reproduced here:
//!
//! * [`pipeline`] — the effect of front-end pipeline depth on IPC and
//!   absolute performance (Fig. 17a/b), recovering the classic optimal
//!   pipeline-depth results of Hartstein & Puzak and Sprangle &
//!   Carmean: ≈55 front-end stages at issue width 3 with the paper's
//!   circuit parameters, with the optimum moving to shorter pipelines
//!   as the machine widens.
//! * [`issue_width`] — the branch-prediction requirements of wider
//!   issue (Fig. 18/19): keeping the same fraction of time near peak
//!   issue rate when the width doubles requires the distance between
//!   mispredictions to roughly *quadruple*.
//!
//! # Examples
//!
//! ```
//! use fosm_trends::pipeline::PipelineStudy;
//!
//! let study = PipelineStudy::paper();
//! let series = study.sweep(3, 1..=80)?;
//! let best = study.optimal_depth(3, 1..=80)?;
//! // Sprangle & Carmean's optimum: ~55 front-end stages at width 3.
//! assert!((40..=70).contains(&best));
//! assert!(series.len() == 80);
//! # Ok::<(), fosm_core::ModelError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod issue_width;
pub mod pipeline;
