//! Determinism gate: figure output must be byte-identical at any
//! thread count.
//!
//! The figure binaries fan work out across worker threads (see
//! `fosm_bench::par`) but print serially in benchmark order, and all
//! observability output is routed to stderr or a file — so stdout is
//! required to be a pure function of the configuration. These tests
//! run representative binaries at `--threads 1` and `--threads 8` and
//! fail on the first differing byte.

use std::process::{Command, Output};

/// Short trace so the gate stays fast; determinism does not depend on
/// trace length.
const TRACE_LEN: &str = "8000";

fn run(exe: &str, extra: &[&str]) -> Output {
    let out = Command::new(exe)
        .args(extra)
        .env_remove("FOSM_THREADS")
        .env_remove("FOSM_METRICS")
        .env_remove("FOSM_TRACE")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{exe} {extra:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn assert_thread_invariant(exe: &str) {
    let serial = run(exe, &[TRACE_LEN, "--threads", "1"]);
    let parallel = run(exe, &[TRACE_LEN, "--threads", "8"]);
    assert!(
        serial.stdout == parallel.stdout,
        "{exe}: stdout differs between --threads 1 and --threads 8\n\
         --- threads=1 ---\n{}\n--- threads=8 ---\n{}",
        String::from_utf8_lossy(&serial.stdout),
        String::from_utf8_lossy(&parallel.stdout)
    );
    assert!(!serial.stdout.is_empty(), "{exe}: produced no output");
}

#[test]
fn fig15_stdout_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_fig15"));
}

#[test]
fn report_stdout_is_thread_invariant() {
    assert_thread_invariant(env!("CARGO_BIN_EXE_report"));
}

/// `--trace <path>` must write byte-identical Chrome trace-event JSON
/// at any thread count: events are recorded once per unique simulation
/// (the artifact store publishes a racing duplicate's events exactly
/// once) and the exporter sorts by cycle extent, so neither scheduling
/// nor thread identity can leak into the file.
#[test]
fn trace_files_are_thread_invariant() {
    let exe = env!("CARGO_BIN_EXE_fig15");
    let dir = std::env::temp_dir().join(format!("fosm-trace-det-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path_1 = dir.join("threads1.trace.json");
    let path_8 = dir.join("threads8.trace.json");

    let serial = run(
        exe,
        &[
            TRACE_LEN,
            "--threads",
            "1",
            "--trace",
            path_1.to_str().unwrap(),
        ],
    );
    let parallel = run(
        exe,
        &[
            TRACE_LEN,
            "--threads",
            "8",
            "--trace",
            path_8.to_str().unwrap(),
        ],
    );
    assert_eq!(
        serial.stdout, parallel.stdout,
        "--trace changed stdout across thread counts"
    );

    let a = std::fs::read(&path_1).expect("trace written at --threads 1");
    let b = std::fs::read(&path_8).expect("trace written at --threads 8");
    assert!(!a.is_empty(), "trace file is empty");
    assert!(
        a == b,
        "trace files differ between --threads 1 ({} bytes) and --threads 8 ({} bytes)",
        a.len(),
        b.len()
    );
    let text = String::from_utf8(a).expect("trace is UTF-8");
    assert!(text.starts_with("{\"traceEvents\":["), "not a Chrome trace");
    assert!(text.contains("\"ph\":\"X\""), "no complete events recorded");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `--metrics <path>` must leave stdout untouched and write exactly
/// one line of valid JSON with the manifest schema marker.
#[test]
fn metrics_flag_keeps_stdout_clean_and_writes_json() {
    let exe = env!("CARGO_BIN_EXE_fig15");
    let dir = std::env::temp_dir().join(format!("fosm-determinism-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let manifest_path = dir.join("fig15.metrics.json");
    let manifest_arg = manifest_path.to_str().expect("utf-8 temp path");

    let plain = run(exe, &[TRACE_LEN, "--threads", "2"]);
    let with_metrics = run(
        exe,
        &[TRACE_LEN, "--threads", "2", "--metrics", manifest_arg],
    );
    assert_eq!(
        plain.stdout, with_metrics.stdout,
        "--metrics changed stdout"
    );

    let body = std::fs::read_to_string(&manifest_path).expect("manifest written");
    assert_eq!(body.trim_end().lines().count(), 1, "one JSON line");
    let value: serde::Value = serde_json::from_str(body.trim_end()).expect("valid JSON");
    let serde::Value::Map(map) = value else {
        panic!("manifest is not a JSON object: {body}");
    };
    let keys: Vec<&str> = map.iter().map(|(k, _)| k.as_str()).collect();
    for expected in ["fosm_obs", "binary", "meta", "counters", "gauges", "spans"] {
        assert!(
            keys.contains(&expected),
            "manifest lacks `{expected}`: {body}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
