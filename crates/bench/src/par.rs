//! Deterministic scoped-thread fan-out for the figure binaries.
//!
//! The figure binaries are embarrassingly parallel across benchmarks
//! and machine configurations: every unit of work is a pure function
//! of `(spec, seed, trace length, config)`. [`par_map`] fans such work
//! across a scoped thread pool (`std::thread::scope`, zero extra
//! dependencies) and returns results **in input order**, so a binary's
//! output is byte-identical to the serial run regardless of thread
//! count or scheduling.
//!
//! Thread count resolution (see [`harness::run_args`]): the
//! `--threads N` CLI flag, then the `FOSM_THREADS` environment
//! variable, then [`available_threads`].
//!
//! [`harness::run_args`]: crate::harness::run_args

use std::sync::atomic::{AtomicUsize, Ordering};

use fosm_workloads::BenchmarkSpec;

use crate::harness;

/// Number of hardware threads available to this process (at least 1).
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on up to `threads` scoped worker threads.
///
/// Work is handed out through a shared atomic index (dynamic load
/// balancing — trace simulations vary widely in cost), and results are
/// reassembled in input order before returning, so the output is
/// independent of scheduling. `threads <= 1` (or a single item) runs
/// inline with no thread machinery at all.
///
/// The caller's current observability span path is adopted by every
/// worker, so spans opened inside `f` aggregate under the fan-out
/// site (`report.table1/simulate`) exactly as the inline path would,
/// at any thread count.
///
/// # Panics
///
/// Propagates the first panic raised inside `f`.
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let workers = threads.min(items.len());
    if workers <= 1 {
        return items.iter().map(f).collect();
    }

    let parent_span = fosm_obs::current_span_path();
    let next = AtomicUsize::new(0);
    let mut indexed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let _adopt = parent_span.as_deref().map(fosm_obs::adopt_span_parent);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        out.push((i, f(&items[i])));
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(results) => results,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    });
    indexed.sort_unstable_by_key(|&(i, _)| i);
    indexed.into_iter().map(|(_, r)| r).collect()
}

/// Fans `f` over the benchmark suite with the session's resolved
/// thread count, returning per-benchmark results in suite order.
///
/// This is the standard top loop of a figure binary:
///
/// ```no_run
/// use fosm_bench::{harness, par};
///
/// let n = harness::run_args().trace_len;
/// let rows = par::par_map_benchmarks(&fosm_workloads::BenchmarkSpec::all(), |spec| {
///     let trace = harness::record(spec, n);
///     trace.len()
/// });
/// ```
pub fn par_map_benchmarks<R, F>(specs: &[BenchmarkSpec], f: F) -> Vec<R>
where
    R: Send,
    F: Fn(&BenchmarkSpec) -> R + Sync,
{
    par_map(specs, harness::run_args().threads, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_at_any_thread_count() {
        let items: Vec<u64> = (0..97).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 8, 128] {
            let got = par_map(&items, threads, |&x| x * x);
            assert_eq!(got, expected, "threads={threads}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 8, |&x| x).is_empty());
        assert_eq!(par_map(&[7u32], 8, |&x| x + 1), vec![8]);
    }

    #[test]
    fn balances_uneven_work() {
        // Items with wildly different costs still come back in order.
        let items: Vec<usize> = (0..32).collect();
        let got = par_map(&items, 4, |&i| {
            let spin = if i % 7 == 0 { 200_000 } else { 10 };
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(31).wrapping_add(k);
            }
            std::hint::black_box(acc);
            i
        });
        assert_eq!(got, items);
    }

    #[test]
    fn worker_spans_nest_under_the_fanout_span() {
        // Same workload at 1 thread (inline) and many threads must
        // produce identically-pathed span aggregates.
        let items: Vec<u32> = (0..16).collect();
        for threads in [1, 6] {
            let r = fosm_obs::global();
            let before = r.snapshot().spans.get("outer.phase/work").map(|s| s.count);
            {
                let _outer = fosm_obs::span("outer.phase");
                par_map(&items, threads, |_| {
                    let _s = fosm_obs::span("work");
                });
            }
            let after = r.snapshot().spans["outer.phase/work"].count;
            assert_eq!(
                after - before.unwrap_or(0),
                items.len() as u64,
                "threads={threads}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "deliberate")]
    fn worker_panics_propagate() {
        let items: Vec<u32> = (0..8).collect();
        let _ = par_map(&items, 4, |&x| {
            if x == 5 {
                panic!("deliberate");
            }
            x
        });
    }
}
