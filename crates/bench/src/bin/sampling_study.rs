//! Methodology study: sampled profiling. Profiling 10% of a long run
//! costs 10% of the time — but does a profile built from systematic
//! samples spanning the whole run beat a contiguous prefix of the same
//! size? (Classic sampling-methodology question; both short profiles
//! pay the cache/predictor cold-start toll that full profiles
//! amortize.)

use fosm_bench::harness;
use fosm_core::profile::{ProfileCollector, SamplingPlan};
use fosm_sim::MachineConfig;
use fosm_trace::Sampler;
use fosm_workloads::{BenchmarkSpec, WorkloadGenerator};

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("sampling_study", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);

    let budget = n / 10; // profile only 10% of the instructions
    println!("Sampling study: model CPI from 10%-budget profiles ({n} insts full)");
    println!(
        "{:<8} {:>9} {:>11} {:>11} {:>11} {:>11}",
        "bench", "sim CPI", "full-trace", "contiguous", "sampled", "samp+warm"
    );
    let mut errs = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    for spec in BenchmarkSpec::all() {
        let trace = harness::record(&spec, n);
        let sim = harness::simulate(&config, &trace);
        let full = harness::estimate(&params, &harness::profile(&params, &spec.name, &trace));

        // Contiguous prefix of the same budget.
        let contiguous = {
            let mut generator = WorkloadGenerator::new(&spec, harness::SEED);
            let profile = ProfileCollector::new(&params)
                .with_name(&spec.name)
                .collect(&mut generator, budget)
                .expect("profile");
            harness::estimate(&params, &profile).total_cpi()
        };
        // Systematic samples spanning the whole run (10k of every 100k).
        let sampled = {
            let generator = WorkloadGenerator::new(&spec, harness::SEED);
            let mut sampler = Sampler::new(generator, 10_000, 100_000).expect("valid sampling");
            let profile = ProfileCollector::new(&params)
                .with_name(&spec.name)
                .collect(&mut sampler, budget)
                .expect("profile");
            harness::estimate(&params, &profile).total_cpi()
        };
        // Samples with functional warm-up: the collector streams the
        // 40k instructions before each sample through the caches and
        // predictor without counting them.
        let warmed = {
            let mut generator = WorkloadGenerator::new(&spec, harness::SEED);
            let plan = SamplingPlan {
                sample: 10_000,
                warmup: 40_000,
                period: 100_000,
            };
            let profile = ProfileCollector::new(&params)
                .with_name(&spec.name)
                .collect_sampled(&mut generator, plan, budget)
                .expect("profile");
            harness::estimate(&params, &profile).total_cpi()
        };
        println!(
            "{:<8} {:>9.3} {:>11.3} {:>11.3} {:>11.3} {:>11.3}",
            spec.name,
            sim.cpi(),
            full.total_cpi(),
            contiguous,
            sampled,
            warmed
        );
        errs[0].push((sim.cpi(), full.total_cpi()));
        errs[1].push((sim.cpi(), contiguous));
        errs[2].push((sim.cpi(), sampled));
        errs[3].push((sim.cpi(), warmed));
    }
    println!(
        "\navg |error| vs full-run simulation: full {:.1}%, contiguous-10% {:.1}%, sampled-10% {:.1}%, sampled+warm {:.1}%",
        harness::mean_abs_error_pct(&errs[0]),
        harness::mean_abs_error_pct(&errs[1]),
        harness::mean_abs_error_pct(&errs[2]),
        harness::mean_abs_error_pct(&errs[3])
    );
    println!("(short profiles pay a cache/predictor cold-start toll; functional");
    println!(" warm-up before each sample removes most of it — standard sampled-");
    println!(" simulation practice, here applied to the model's trace analysis)");
}
