//! One-shot reproduction report: runs the headline experiments and
//! emits a self-contained markdown document (to stdout) with measured
//! results next to the paper's numbers.
//!
//! ```text
//! cargo run --release -p fosm-bench --bin report -- 300000 > report.md
//! ```

use fosm_bench::store::ArtifactStore;
use fosm_bench::{harness, par};
use fosm_core::model::FirstOrderModel;
use fosm_core::transient::{ramp_up, win_drain};
use fosm_depgraph::{IwCharacteristic, PowerLaw};
use fosm_sim::MachineConfig;
use fosm_trends::issue_width::IssueWidthStudy;
use fosm_trends::pipeline::PipelineStudy;
use fosm_workloads::BenchmarkSpec;

fn main() {
    let args = harness::run_args();
    let _obs = harness::obs_session("report", &args);
    let n = args.trace_len;
    let config = MachineConfig::baseline();
    let params = harness::params_of(&config);
    let store = ArtifactStore::global();

    println!("# fosm reproduction report");
    println!();
    println!(
        "Baseline machine: {}-wide, {}-entry window, {}-entry ROB, ∆P={}, ∆I={}, ∆D={}.",
        config.width,
        config.win_size,
        config.rob_size,
        config.pipe_depth,
        config.l2_latency,
        config.mem_latency
    );
    println!(
        "Trace length: {n} instructions per benchmark, seed {}.",
        harness::SEED
    );
    println!();

    // ---- Fig. 8: transient decomposition ----
    let transient_span = fosm_obs::span("report.transient");
    let iw = IwCharacteristic::new(PowerLaw::square_root(), 1.0).expect("valid law");
    let drain = win_drain(&iw, config.width, config.win_size);
    let ramp = ramp_up(&iw, config.width, config.win_size);
    println!("## Branch misprediction transient (paper Fig. 8)");
    println!();
    println!("| quantity | paper | measured |");
    println!("|---|---|---|");
    println!("| window drain | 2.1 | {:.1} |", drain.penalty);
    println!(
        "| pipeline refill | 4.9 | {:.1} |",
        config.pipe_depth as f64
    );
    println!("| ramp-up | 2.7 | {:.1} |", ramp.penalty);
    println!(
        "| total isolated penalty | 9.7 | {:.1} |",
        drain.penalty + config.pipe_depth as f64 + ramp.penalty
    );
    println!();

    drop(transient_span);

    // ---- Table 1 + Fig. 15 in one pass ----
    let benchmarks_span = fosm_obs::span("report.benchmarks");
    println!("## Per-benchmark: IW parameters and total CPI (paper Table 1, Fig. 15)");
    println!();
    println!("| bench | α | β | L | sim CPI | model CPI | err% |");
    println!("|---|---|---|---|---|---|---|");
    // Simulation and profiling fan out across worker threads; rows
    // are then printed serially in benchmark order so the markdown is
    // byte-identical at any thread count.
    let rows = par::par_map_benchmarks(&BenchmarkSpec::all(), |spec| {
        let sim = store.simulate(&config, spec, n, harness::SEED);
        let profile = store.profile(&params, &spec.name, spec, n, harness::SEED);
        let est = harness::estimate(&params, &profile);
        (spec.clone(), sim, profile, est)
    });
    let mut pairs = Vec::new();
    let mut profiles = Vec::new();
    for (spec, sim, profile, est) in rows {
        println!(
            "| {} | {:.2} | {:.2} | {:.2} | {:.3} | {:.3} | {:+.1}% |",
            spec.name,
            profile.iw.law().alpha(),
            profile.iw.law().beta(),
            profile.iw.avg_latency(),
            sim.cpi(),
            est.total_cpi(),
            100.0 * (est.total_cpi() - sim.cpi()) / sim.cpi()
        );
        pairs.push((sim.cpi(), est.total_cpi()));
        profiles.push((spec, profile, est));
    }
    println!();
    println!(
        "Average |error| **{:.1}%** (paper: 5.8%).",
        harness::mean_abs_error_pct(&pairs)
    );
    println!();

    // ---- Fig. 16: CPI stacks ----
    println!("## CPI stacks (paper Fig. 16)");
    println!();
    println!("| bench | ideal | L1-I | L2-I | L2-D | branch |");
    println!("|---|---|---|---|---|---|");
    for (spec, _, est) in &profiles {
        println!(
            "| {} | {:.3} | {:.3} | {:.3} | {:.3} | {:.3} |",
            spec.name,
            est.steady_state_cpi,
            est.icache_l1_cpi,
            est.icache_l2_cpi,
            est.dcache_cpi,
            est.branch_cpi
        );
    }
    println!();

    drop(benchmarks_span);

    // ---- Ablation ----
    let ablation_span = fosm_obs::span("report.ablation");
    println!("## Model-refinement ablation");
    println!();
    println!("| variant | avg \\|err\\|% |");
    println!("|---|---|");
    type Refinement = fn(FirstOrderModel) -> FirstOrderModel;
    let variants: [(&str, Refinement); 3] = [
        ("paper §5 recipe", |m| m.with_paper_simplifications()),
        ("+ rob_fill estimate", |m| m.with_independent_grouping()),
        ("+ dependence-aware f_LDM (default)", |m| m),
    ];
    for (label, build) in variants {
        let mut errs = Vec::new();
        for ((_, profile, _), (sim_cpi, _)) in profiles.iter().zip(&pairs) {
            let model = build(FirstOrderModel::new(params.clone()));
            let est = model.evaluate(profile).expect("valid profile");
            errs.push((*sim_cpi, est.total_cpi()));
        }
        println!("| {label} | {:.1}% |", harness::mean_abs_error_pct(&errs));
    }
    println!();

    drop(ablation_span);

    // ---- Trends ----
    let _trends_span = fosm_obs::span("report.trends");
    println!("## Trend studies (paper §6)");
    println!();
    let study = PipelineStudy::paper();
    print!("Optimal front-end depth by issue width (paper: ≈55 at width 3):");
    for width in [2u32, 3, 4, 8] {
        let best = study.optimal_depth(width, 1..=120).expect("non-empty");
        print!(" {width}→**{best}**");
    }
    println!();
    println!();
    let iw_study = IssueWidthStudy::paper(iw);
    let d4 = iw_study.distance_for_fraction(4, 0.3).expect("reachable");
    let d8 = iw_study.distance_for_fraction(8, 0.3).expect("reachable");
    let d16 = iw_study.distance_for_fraction(16, 0.3).expect("reachable");
    println!(
        "Instructions between mispredictions for 30% time-at-peak: width 4 → {d4:.0}, \
         width 8 → {d8:.0} ({:.1}×), width 16 → {d16:.0} ({:.1}×) — the paper's \
         quadratic law (≈4× per doubling).",
        d8 / d4,
        d16 / d8
    );
    // Wall clock, thread count, and artifact-store traffic are emitted
    // through the fosm-obs sink when `_obs` drops — never to stdout, so
    // `report > report.md` stays byte-stable across runs and threads.
}
